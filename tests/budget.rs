//! Bounded-exploration integration: logical budgets (`--max-evals`)
//! truncate at the same point for any thread count and any cache state,
//! an interrupt mid-run plus a resume reproduces the uninterrupted
//! run's report byte-for-byte up to `wall_clock`, a hung candidate
//! evaluation is reclaimed by the per-candidate watchdog instead of
//! wedging the run, and a process manager's SIGTERM is the same
//! cooperative stop a Ctrl-C is — checkpoint written, valid report,
//! exit 0.

use mce_faultinject as fi;
use memory_conex::appmodel::benchmarks;
use memory_conex::budget;
use memory_conex::obs;
use memory_conex::prelude::*;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// The interrupt flag, armed faults and the observability recorder are
/// all process-global; every test here serializes on this lock.
static BUDGET_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    BUDGET_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mce_budget_it_{}_{name}", std::process::id()))
}

/// A session at fast scale.
fn session() -> ExplorationSession {
    ExplorationSession::new(benchmarks::vocoder()).preset(Preset::Fast)
}

/// Runs `session` under a fresh recorder (the `--report-out`
/// configuration: a null sink keeps the counter/gauge/histogram
/// registries live). Fresh per run — the registries are cumulative
/// process-globals, and each report must snapshot only its own run.
fn run_with_report(session: &ExplorationSession) -> SessionResult {
    obs::install(Arc::new(obs::NullSink::new()));
    let result = session.run();
    obs::uninstall();
    result.expect("exploration runs")
}

#[test]
fn max_evals_truncates_identically_across_thread_counts() {
    let _guard = lock();
    fi::disarm();
    obs::uninstall();

    // Size the budget off an unbounded run so it provably trips mid-way.
    let clean = run_with_report(&session());
    let total = clean.conex.estimated().len() as u64;
    assert!(total >= 8, "fast preset explores enough to truncate");
    let budget = total / 2;

    let serial = run_with_report(&session().max_evals(budget).threads(1));
    assert_eq!(serial.conex.stop_reason(), Some("max-evals"));
    assert!(serial.conex.is_truncated());
    assert_eq!(serial.report.status, "truncated");
    assert!(
        serial.conex.estimated().len() < clean.conex.estimated().len(),
        "the budget must actually cut the cloud short"
    );

    let parallel = run_with_report(&session().max_evals(budget).threads(8));
    assert_eq!(
        RunReport::stable_json_prefix(&serial.report.to_json()),
        RunReport::stable_json_prefix(&parallel.report.to_json()),
        "a logical budget must trip at the same candidate on 1 and 8 threads"
    );
    assert_eq!(serial.conex.estimated(), parallel.conex.estimated());
    assert_eq!(serial.conex.simulated(), parallel.conex.simulated());
}

#[test]
fn max_evals_truncates_identically_with_and_without_the_eval_cache() {
    let _guard = lock();
    fi::disarm();
    obs::uninstall();
    let spill = tmp("budget_spill.json");
    let _ = std::fs::remove_file(&spill);

    let clean = session().run().expect("unbounded run succeeds");
    let budget = (clean.conex.estimated().len() as u64) / 2;

    let uncached = session().max_evals(budget).run().unwrap();
    // Cold cache: first bounded run populates the spill.
    let cold = session()
        .max_evals(budget)
        .eval_cache_file(&spill)
        .run()
        .unwrap();
    // Warm cache: every evaluation is answered from disk, yet the
    // budget still counts it and trips at the same candidate.
    let warm = session()
        .max_evals(budget)
        .eval_cache_file(&spill)
        .run()
        .unwrap();
    assert!(warm.cache_stats.hits > 0, "warm run hits the spill");

    for (name, run) in [("cold", &cold), ("warm", &warm)] {
        assert_eq!(
            run.conex.stop_reason(),
            Some("max-evals"),
            "{name} run stops on the budget"
        );
        assert_eq!(
            uncached.conex.estimated(),
            run.conex.estimated(),
            "{name} cache state must not move the truncation point"
        );
        assert_eq!(uncached.conex.simulated(), run.conex.simulated());
        assert_eq!(
            uncached.conex.frontier_evolution(),
            run.conex.frontier_evolution()
        );
    }
    let _ = std::fs::remove_file(&spill);
}

#[test]
fn interrupt_then_resume_reproduces_the_uninterrupted_report() {
    let _guard = lock();
    fi::disarm();
    obs::uninstall();
    budget::clear_interrupt();
    let ck = tmp("budget_ck.json");
    let _ = std::fs::remove_file(&ck);

    let uninterrupted = run_with_report(&session().threads(2));

    // Trip the interrupt flag from another thread mid-run, as a real
    // Ctrl-C would. Whenever it lands — before, during or after the
    // exploration — the run must end cleanly, and a resume must
    // converge on the uninterrupted report.
    let bounded = session()
        .threads(2)
        .watch_interrupt(true)
        .checkpoint_file(&ck);
    let raiser = std::thread::spawn(|| {
        // ~60ms lands mid-Phase-I on this workload at fast scale, so the
        // resume below replays committed architectures; any other landing
        // point is handled too, just with less to replay.
        std::thread::sleep(Duration::from_millis(60));
        budget::raise_interrupt();
    });
    let first = run_with_report(&bounded);
    raiser.join().unwrap();
    budget::clear_interrupt();

    let finished = if first.conex.is_truncated() {
        assert_eq!(first.conex.stop_reason(), Some("interrupt"));
        assert_eq!(first.report.status, "truncated");
        assert!(ck.exists(), "a truncated run leaves its checkpoint");
        let resumed = run_with_report(&bounded);
        assert!(resumed.resumed);
        resumed
    } else {
        first // The flag landed after the finish line; nothing to resume.
    };

    assert!(!finished.conex.is_truncated());
    assert_eq!(finished.report.status, "complete");
    assert_eq!(
        RunReport::stable_json_prefix(&uninterrupted.report.to_json()),
        RunReport::stable_json_prefix(&finished.report.to_json()),
        "interrupt + resume must reproduce the uninterrupted report"
    );
    assert!(!ck.exists(), "a finished run removes its checkpoint");
}

#[test]
fn hung_candidate_is_reclaimed_by_the_watchdog_and_degraded() {
    let _guard = lock();
    fi::disarm();
    obs::uninstall();

    // The 5th candidate evaluation hangs until its cancel check trips;
    // without the watchdog this run would never return.
    fi::arm(vec![fi::Fault::HangAtEval { nth: 5 }]);
    obs::install(Arc::new(obs::NullSink::new()));
    let result = session()
        .threads(2)
        .candidate_timeout(Duration::from_millis(100))
        .run();
    obs::uninstall();
    fi::disarm();
    let result = result.expect("a hung evaluation degrades, not fails");

    assert!(
        !result.conex.is_truncated(),
        "a timeout degrades one candidate; it does not stop the run"
    );
    assert!(
        result
            .conex
            .degraded()
            .iter()
            .any(|d| d.reason == "timeout"),
        "the reclaimed candidate is annotated: {:?}",
        result.conex.degraded()
    );
    let doc = obs::json::parse(&result.report.to_json()).expect("report parses");
    let wall = doc.get("wall_clock").expect("wall_clock present");
    let timeouts = wall
        .get("budget")
        .and_then(|b| b.get("budget.timeouts"))
        .and_then(obs::json::Value::as_u64)
        .unwrap_or(0);
    assert!(timeouts >= 1, "budget.timeouts recorded in the report");
    assert!(
        wall.get("degraded")
            .and_then(obs::json::Value::as_array)
            .is_some_and(|d| !d.is_empty()),
        "degraded annotations land in wall_clock"
    );
}

/// SIGTERM against the real binary is a first-class "stop at a safe
/// point", exactly like SIGINT: the terminated `mce explore` writes a
/// valid (possibly truncated) report, keeps its checkpoint for the
/// resume, and exits 0 — what a process manager's stop action must see.
#[test]
fn sigterm_checkpoints_writes_a_valid_report_and_exits_zero() {
    let Some(bin) = option_env!("CARGO_BIN_EXE_mce") else {
        eprintln!("skipping: mce binary path not provided by the harness");
        return;
    };
    let dir = tmp("sigterm");
    std::fs::create_dir_all(&dir).unwrap();
    let report = dir.join("report.json");
    let ck = dir.join("ck.json");
    let mut child = std::process::Command::new(bin)
        .args(["explore", "vocoder", "--preset", "fast", "--report-out"])
        .arg(&report)
        .arg("--checkpoint")
        .arg(&ck)
        .arg("--out-dir")
        .arg(dir.join("experiments"))
        .env_remove("MCE_FAULT")
        .spawn()
        .expect("spawning the mce binary");
    std::thread::sleep(Duration::from_millis(120));
    let out = std::process::Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .output()
        .expect("kill spawns");
    assert!(out.status.success(), "sending SIGTERM failed");
    let status = child.wait().expect("child waits");
    assert_eq!(status.code(), Some(0), "SIGTERM must exit 0, not die");

    let text = std::fs::read_to_string(&report).expect("a report is written either way");
    let doc = obs::json::parse(&text).expect("the report is valid JSON");
    match doc.get("status").and_then(obs::json::Value::as_str) {
        Some("truncated") => {
            assert_eq!(
                doc.get("stop_reason").and_then(obs::json::Value::as_str),
                Some("interrupt"),
                "a SIGTERM stop is recorded as an interrupt"
            );
            assert!(ck.exists(), "an interrupted run keeps its checkpoint");
        }
        // The signal lost the race against a fast exploration; the clean
        // exit and complete report are the whole story.
        Some("complete") => {}
        other => panic!("unexpected report status {other:?} in:\n{text}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}
