//! Property tests for the canonical design-point hash: the connectivity
//! digest must be invariant under the order in which links were added to
//! the architecture, and must still distinguish genuinely different
//! channel-to-component assignments.

use memory_conex::conex::design_point::conn_digest;
use memory_conex::connlib::{Channel, ChannelId, ConnectivityArchitecture, LinkId};
use proptest::prelude::*;

/// Architecture with `assign.len()` on-chip channels over `n_links` links,
/// assigning channel `i` to logical link `assign[i]`; links are created in
/// the order given by `order`.
fn build_arch(n_links: usize, assign: &[usize], order: &[usize]) -> ConnectivityArchitecture {
    let lib = memory_conex::connlib::ConnectivityLibrary::amba();
    let components = lib.components();
    let mut arch = ConnectivityArchitecture::new(
        (0..assign.len())
            .map(|i| Channel::on_chip(format!("ch{i}")))
            .collect(),
    );
    // Create links in permuted order, remembering where each logical link
    // landed.
    let mut slot = vec![0usize; n_links];
    for &logical in order {
        let comp = components[logical % components.len()];
        slot[logical] = arch.add_link(format!("l{logical}"), comp).index();
    }
    for (ci, &l) in assign.iter().enumerate() {
        arch.assign(ChannelId::new(ci), LinkId::new(slot[l]));
    }
    arch
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The canonical connectivity digest ignores the order in which links
    /// were added to the architecture.
    #[test]
    fn conn_digest_invariant_under_link_reordering(
        n_links in 1usize..5,
        assign in proptest::collection::vec(0usize..5, 1..6),
        seed in 0u64..1_000,
    ) {
        let assign: Vec<usize> = assign.iter().map(|a| a % n_links).collect();
        let identity: Vec<usize> = (0..n_links).collect();
        // A deterministic Fisher-Yates permutation drawn from the seed.
        let mut permuted = identity.clone();
        let mut s = seed;
        for i in (1..permuted.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            permuted.swap(i, (s >> 33) as usize % (i + 1));
        }
        let a = build_arch(n_links, &assign, &identity);
        let b = build_arch(n_links, &assign, &permuted);
        prop_assert_eq!(
            conn_digest(&a),
            conn_digest(&b),
            "link creation order must not change the digest"
        );
    }

    /// Moving a channel to a link with a different component changes the
    /// digest (every logical link here instantiates a distinct component).
    #[test]
    fn conn_digest_distinguishes_different_assignments(
        n_links in 2usize..5,
        assign in proptest::collection::vec(0usize..5, 2..6),
    ) {
        let assign: Vec<usize> = assign.iter().map(|a| a % n_links).collect();
        let mut other = assign.clone();
        other[0] = (other[0] + 1) % n_links;
        let identity: Vec<usize> = (0..n_links).collect();
        let a = build_arch(n_links, &assign, &identity);
        let b = build_arch(n_links, &other, &identity);
        prop_assert_ne!(
            conn_digest(&a),
            conn_digest(&b),
            "moving a channel to another link must change the digest"
        );
    }
}
