//! Reproducibility: every stage of the stack is deterministic given the
//! workload seed, so experiments are exactly repeatable.

use memory_conex::appmodel::benchmarks;
use memory_conex::conex::MemorEx;
use memory_conex::prelude::*;

#[test]
fn traces_are_deterministic_across_runs() {
    let w = benchmarks::compress();
    let a: Vec<MemAccess> = w.trace(5_000).collect();
    let b: Vec<MemAccess> = w.trace(5_000).collect();
    assert_eq!(a, b);
}

#[test]
fn simulation_is_deterministic() {
    let w = benchmarks::li();
    let mem = MemoryArchitecture::cache_only(&w, memory_conex::memlib::CacheConfig::kilobytes(4));
    let sys = SystemConfig::with_shared_bus(&w, mem).expect("valid");
    let a = memory_conex::sim::simulate(&sys, &w, 10_000);
    let b = memory_conex::sim::simulate(&sys, &w, 10_000);
    assert_eq!(a, b);
}

#[test]
fn apex_is_deterministic() {
    let w = benchmarks::vocoder();
    let a = ApexExplorer::new(ApexConfig::preset(Preset::Fast)).explore(&w);
    let b = ApexExplorer::new(ApexConfig::preset(Preset::Fast)).explore(&w);
    assert_eq!(a.points().len(), b.points().len());
    let names = |r: &ApexResult| -> Vec<String> {
        r.selected_points()
            .map(|p| p.arch.name().to_owned())
            .collect()
    };
    assert_eq!(names(&a), names(&b));
}

#[test]
fn full_pipeline_metrics_are_reproducible() {
    let w = benchmarks::vocoder();
    let a = MemorEx::preset(Preset::Fast).run(&w).unwrap();
    let b = MemorEx::preset(Preset::Fast).run(&w).unwrap();
    let metrics = |r: &memory_conex::conex::MemorExResult| -> Vec<(u64, f64, f64)> {
        r.conex
            .simulated()
            .iter()
            .map(|p| {
                (
                    p.metrics.cost_gates,
                    p.metrics.latency_cycles,
                    p.metrics.energy_nj,
                )
            })
            .collect()
    };
    assert_eq!(metrics(&a), metrics(&b));
}

#[test]
fn parallel_and_serial_exploration_agree() {
    use memory_conex::conex::{ConexConfig, ConexExplorer};
    let w = memory_conex::appmodel::benchmarks::vocoder();
    let apex = ApexExplorer::new(ApexConfig::preset(Preset::Fast)).explore(&w);
    let mut serial_cfg = ConexConfig::preset(Preset::Fast);
    serial_cfg.threads = 1;
    let mut parallel_cfg = ConexConfig::preset(Preset::Fast);
    parallel_cfg.threads = 0; // all cores
    let serial = ConexExplorer::new(serial_cfg)
        .explore(&w, apex.selected())
        .unwrap();
    let parallel = ConexExplorer::new(parallel_cfg)
        .explore(&w, apex.selected())
        .unwrap();
    let key = |r: &ConexResult| -> Vec<(u64, u64, u64)> {
        r.simulated()
            .iter()
            .map(|p| {
                (
                    p.metrics.cost_gates,
                    p.metrics.latency_cycles.to_bits(),
                    p.metrics.energy_nj.to_bits(),
                )
            })
            .collect()
    };
    assert_eq!(key(&serial), key(&parallel));
    assert_eq!(serial.estimated().len(), parallel.estimated().len());
}

#[test]
fn different_seeds_change_traces_but_not_structure() {
    use memory_conex::appmodel::{DataStructure, WorkloadBuilder};
    let build = |seed: u64| {
        WorkloadBuilder::new("w")
            .data_structure(DataStructure::new("d", 8192, 4, AccessPattern::Random))
            .seed(seed)
            .build()
    };
    let w1 = build(1);
    let w2 = build(2);
    let t1: Vec<MemAccess> = w1.trace(1000).collect();
    let t2: Vec<MemAccess> = w2.trace(1000).collect();
    assert_ne!(t1, t2, "different seeds must differ");
    assert_eq!(w1.layout(), w2.layout(), "layout is seed-independent");
}
