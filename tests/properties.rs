//! Property-based tests over the core data structures and invariants:
//! pareto fronts, coverage metrics, reservation tables, caches, pattern
//! generators, arbitration and trace generation.

use memory_conex::appmodel::{AccessPattern, DataStructure, WorkloadBuilder};
use memory_conex::conex::{Axis, CoverageReport, Metrics, ParetoFront};
use memory_conex::connlib::{
    Arbiter, ConnComponent, ConnComponentKind, OpPattern, ReservationTable,
};
use memory_conex::memlib::{
    CacheConfig, CacheState, FifoState, ModuleModel, SelfIndirectDmaState, StreamBufferState,
};
use memory_conex::prelude::*;
use proptest::prelude::*;

fn arb_metrics() -> impl Strategy<Value = Metrics> {
    (1u64..1_000_000, 0.1f64..1000.0, 0.1f64..100.0).prop_map(|(c, l, e)| Metrics::new(c, l, e))
}

fn dominates_2d(a: &Metrics, b: &Metrics) -> bool {
    let better_somewhere = a.cost_gates < b.cost_gates || a.latency_cycles < b.latency_cycles;
    a.cost_gates <= b.cost_gates && a.latency_cycles <= b.latency_cycles && better_somewhere
}

proptest! {
    #[test]
    fn pareto_front_members_are_mutually_nondominated(
        points in proptest::collection::vec(arb_metrics(), 1..60)
    ) {
        let axes = [Axis::Cost, Axis::Latency];
        let front = ParetoFront::of(&points, &axes);
        let sel = front.select(&points);
        for a in &sel {
            for b in &sel {
                // Domination requires strictly-better somewhere, so no
                // front member may dominate any other (or itself).
                prop_assert!(!dominates_2d(a, b), "{a:?} dominates {b:?}");
            }
        }
    }

    #[test]
    fn pareto_covers_every_point(
        points in proptest::collection::vec(arb_metrics(), 1..60)
    ) {
        // Every point off the front is dominated by (or equal to) a front
        // member.
        let axes = [Axis::Cost, Axis::Latency];
        let front = ParetoFront::of(&points, &axes);
        let sel = front.select(&points);
        for p in &points {
            let covered = sel.iter().any(|f| dominates_2d(f, p) || *f == p);
            prop_assert!(covered, "{p:?} uncovered");
        }
    }

    #[test]
    fn pareto_front_sorted_by_cost(
        points in proptest::collection::vec(arb_metrics(), 1..60)
    ) {
        let front = ParetoFront::of(&points, &[Axis::Cost, Axis::Latency]);
        let sel = front.select(&points);
        for pair in sel.windows(2) {
            prop_assert!(pair[0].cost_gates <= pair[1].cost_gates);
        }
    }

    #[test]
    fn pareto_front_is_permutation_invariant(
        points in proptest::collection::vec(arb_metrics(), 1..40)
    ) {
        let axes = [Axis::Cost, Axis::Latency];
        let forward = ParetoFront::of(&points, &axes);
        let mut reversed_points = points.clone();
        reversed_points.reverse();
        let backward = ParetoFront::of(&reversed_points, &axes);
        let mut a: Vec<(u64, u64)> = forward
            .select(&points)
            .iter()
            .map(|m| (m.cost_gates, m.latency_cycles.to_bits()))
            .collect();
        let mut b: Vec<(u64, u64)> = backward
            .select(&reversed_points)
            .iter()
            .map(|m| (m.cost_gates, m.latency_cycles.to_bits()))
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn coverage_of_self_is_total(
        points in proptest::collection::vec(arb_metrics(), 1..30)
    ) {
        let r = CoverageReport::compare(&points, &points, 1e-9);
        prop_assert!((r.coverage_pct - 100.0).abs() < 1e-9);
        prop_assert_eq!(r.avg_cost_dist_pct, 0.0);
    }

    #[test]
    fn coverage_monotone_in_tolerance(
        reference in proptest::collection::vec(arb_metrics(), 1..20),
        found in proptest::collection::vec(arb_metrics(), 1..20),
        t1 in 0.001f64..0.1,
        t2 in 0.1f64..2.0,
    ) {
        let tight = CoverageReport::compare(&reference, &found, t1);
        let loose = CoverageReport::compare(&reference, &found, t2);
        prop_assert!(loose.coverage_pct >= tight.coverage_pct);
    }

    #[test]
    fn reservation_schedule_never_overlaps(
        durations in proptest::collection::vec(1u32..20, 1..50),
        gaps in proptest::collection::vec(0u64..30, 1..50),
    ) {
        let mut table = ReservationTable::new(1);
        let mut ready = 0;
        let mut scheduled: Vec<(u64, u64)> = Vec::new();
        for (d, g) in durations.iter().zip(&gaps) {
            ready += g;
            let op = OpPattern::single(0, *d);
            let t = table.schedule(&op, ready);
            prop_assert!(t >= ready);
            scheduled.push((t, t + *d as u64));
        }
        for i in 0..scheduled.len() {
            for j in (i + 1)..scheduled.len() {
                let (s1, e1) = scheduled[i];
                let (s2, e2) = scheduled[j];
                prop_assert!(e1 <= s2 || e2 <= s1, "overlap {:?} {:?}", scheduled[i], scheduled[j]);
            }
        }
    }

    #[test]
    fn cache_counts_are_consistent(
        addrs in proptest::collection::vec(0u64..16_384, 1..300),
        kib in 1u64..16,
    ) {
        let mut cache = CacheState::new(CacheConfig::kilobytes(kib));
        for (i, &a) in addrs.iter().enumerate() {
            cache.access(memory_conex::appmodel::Addr::new(a), AccessKind::Read, i as u64);
        }
        prop_assert_eq!(cache.hits() + cache.misses(), addrs.len() as u64);
        prop_assert!((0.0..=1.0).contains(&cache.miss_ratio()));
        // Immediate re-access of the last address must hit.
        let last = *addrs.last().unwrap();
        let r = cache.access(
            memory_conex::appmodel::Addr::new(last),
            AccessKind::Read,
            addrs.len() as u64,
        );
        prop_assert!(r.hit);
    }

    #[test]
    fn pattern_offsets_stay_in_footprint(
        pattern_id in 0usize..6,
        footprint_kib in 1u64..64,
        elem_pow in 0u32..4,
        n in 1usize..500,
    ) {
        use rand::SeedableRng;
        let elem = 1u64 << elem_pow; // 1..8 bytes
        let footprint = footprint_kib * 1024;
        let pattern = match pattern_id {
            0 => AccessPattern::Stream { stride: elem },
            1 => AccessPattern::SelfIndirect,
            2 => AccessPattern::Indexed { index_stride: elem },
            3 => AccessPattern::LoopNest { working_set: 256, reuse: 4 },
            4 => AccessPattern::Random,
            _ => AccessPattern::Stack,
        };
        let mut gen = pattern.generator(footprint, elem);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        for _ in 0..n {
            let off = gen.next_offset(&mut rng);
            prop_assert!(off < footprint, "{pattern}: {off} >= {footprint}");
        }
    }

    #[test]
    fn tdma_grants_land_in_the_master_slot(
        slot in 1u32..16,
        masters in 1usize..8,
        master in 0usize..8,
        now in 0u64..10_000,
    ) {
        let mut arb = Arbiter::tdma(slot, masters);
        let m = master % masters;
        let wait = arb.grant_delay(m, now, true) as u64;
        let frame = slot as u64 * masters as u64;
        let grant = (now + wait) % frame;
        let slot_start = m as u64 * slot as u64;
        prop_assert!(grant >= slot_start && grant < slot_start + slot as u64,
            "grant at {grant}, slot [{slot_start}, {})", slot_start + slot as u64);
    }

    #[test]
    fn traces_stay_inside_the_layout(
        seed in 0u64..1000,
        n in 1usize..400,
    ) {
        let w = WorkloadBuilder::new("p")
            .data_structure(DataStructure::new("a", 4096, 4, AccessPattern::Random))
            .data_structure(DataStructure::new(
                "b",
                8192,
                8,
                AccessPattern::Stream { stride: 8 },
            ))
            .seed(seed)
            .build();
        let layout = w.layout();
        let mut prev_tick = None;
        for acc in w.trace(n) {
            prop_assert!(layout[acc.ds.index()].contains(acc.addr));
            if let Some(p) = prev_tick {
                prop_assert!(acc.tick > p, "ticks must strictly increase");
            }
            prev_tick = Some(acc.tick);
        }
    }
}

/// Random access sequences for driving module models.
fn arb_accesses() -> impl Strategy<Value = Vec<(u64, bool, u64)>> {
    // (addr, is_write, tick_gap)
    proptest::collection::vec((0u64..65_536, any::<bool>(), 0u64..50), 1..300)
}

proptest! {
    #[test]
    fn fifo_occupancy_never_exceeds_capacity(
        accesses in arb_accesses(),
        entries in 1u32..16,
    ) {
        let mut fifo = FifoState::new(entries, 32);
        let mut tick = 0;
        for (addr, is_write, gap) in accesses {
            tick += gap;
            let kind = if is_write { AccessKind::Write } else { AccessKind::Read };
            let r = fifo.access(memory_conex::appmodel::Addr::new(addr), kind, tick);
            prop_assert!(fifo.occupancy() <= entries as usize);
            // A response never both demands and claims a hit.
            prop_assert!(!(r.hit && r.demand_fill_bytes > 0));
        }
    }

    #[test]
    fn dma_buffer_bounded_and_responses_sane(
        accesses in arb_accesses(),
        depth in 1u32..32,
    ) {
        let mut dma = SelfIndirectDmaState::new(depth, 8);
        let mut tick = 0;
        for (addr, is_write, gap) in accesses {
            tick += gap;
            let kind = if is_write { AccessKind::Write } else { AccessKind::Read };
            let r = dma.access(memory_conex::appmodel::Addr::new(addr), kind, tick);
            prop_assert!(dma.buffered() <= depth);
            prop_assert!(r.service_cycles > 0);
            if is_write {
                prop_assert!(r.hit, "writes are always absorbed");
            }
        }
    }

    #[test]
    fn stream_buffer_never_hits_cold(
        entries in 1u32..8,
        line in proptest::sample::select(vec![16u32, 32, 64]),
        first_addr in 0u64..4096,
    ) {
        let mut sb = StreamBufferState::new(entries, line);
        let r = sb.access(
            memory_conex::appmodel::Addr::new(first_addr),
            AccessKind::Read,
            0,
        );
        prop_assert!(!r.hit, "first access can never hit");
        prop_assert_eq!(r.demand_fill_bytes, line as u64);
    }

    #[test]
    fn module_models_are_reset_deterministic(
        accesses in arb_accesses(),
    ) {
        // Running a sequence, resetting, and running it again must produce
        // identical responses — the contract re-simulation relies on.
        let mut cache = CacheState::new(CacheConfig::kilobytes(2));
        let run = |c: &mut CacheState| -> Vec<(bool, u64)> {
            let mut tick = 0;
            accesses
                .iter()
                .map(|&(addr, is_write, gap)| {
                    tick += gap;
                    let kind = if is_write { AccessKind::Write } else { AccessKind::Read };
                    let r = c.access(memory_conex::appmodel::Addr::new(addr), kind, tick);
                    (r.hit, r.demand_fill_bytes + r.background_bytes)
                })
                .collect()
        };
        let first = run(&mut cache);
        cache.reset();
        let second = run(&mut cache);
        prop_assert_eq!(first, second);
    }

    #[test]
    fn link_transfers_complete_after_ready(
        transfers in proptest::collection::vec((0u64..40, 1u64..128), 1..100),
        ports in 1u32..4,
    ) {
        use memory_conex::connlib::LinkState;
        let mut link = LinkState::new(ConnComponent::new(ConnComponentKind::AmbaAhb), ports);
        let mut ready = 0;
        for (gap, bytes) in transfers {
            ready += gap;
            let t = link.transfer(ready, bytes, 0);
            prop_assert!(t.start >= ready, "start {} before ready {ready}", t.start);
            prop_assert!(t.complete > t.start);
        }
    }

    #[test]
    fn conn_validation_is_total(
        n_channels in 1usize..6,
        assignments in proptest::collection::vec(0usize..4, 1..6),
    ) {
        // Arbitrary (possibly bogus) assignments must yield Ok or a typed
        // error — never a panic.
        use memory_conex::connlib::{Channel, ChannelId, ConnectivityArchitecture, LinkId};
        let channels: Vec<Channel> = (0..n_channels)
            .map(|i| {
                if i % 2 == 0 {
                    Channel::on_chip(format!("c{i}"))
                } else {
                    Channel::off_chip(format!("c{i}"))
                }
            })
            .collect();
        let mut arch = ConnectivityArchitecture::new(channels);
        arch.add_link("ahb", ConnComponent::new(ConnComponentKind::AmbaAhb));
        arch.add_link("ext", ConnComponent::new(ConnComponentKind::OffChipBus));
        for (i, link) in assignments.iter().enumerate().take(n_channels) {
            arch.assign(ChannelId::new(i), LinkId::new(*link));
        }
        let _ = arch.validate(); // must not panic
    }
}
