//! Observability integration: phase spans, funnel-counter reconciliation,
//! event-stream determinism across thread counts, and bit-identical
//! exploration results with tracing on or off.

use memory_conex::appmodel::benchmarks;
use memory_conex::memlib::CacheConfig;
use memory_conex::obs;
use memory_conex::prelude::*;
use std::sync::{Arc, Mutex, PoisonError};

/// The recorder is process-global, so every test that installs a sink
/// serializes on this lock.
static RECORDER_LOCK: Mutex<()> = Mutex::new(());

/// Runs a fast ConEx exploration with a memory sink installed and returns
/// the recorded events plus the exploration result.
fn record_explore(threads: usize) -> (Vec<obs::Event>, ConexResult) {
    let _guard = RECORDER_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let sink = Arc::new(obs::MemorySink::new());
    obs::install(sink.clone());
    obs::set_level(obs::Level::Info);
    let w = benchmarks::vocoder();
    let mut cfg = ConexConfig::preset(Preset::Fast);
    cfg.threads = threads;
    let mem = vec![MemoryArchitecture::cache_only(
        &w,
        CacheConfig::kilobytes(4),
    )];
    let result = ConexExplorer::new(cfg).explore(&w, mem).unwrap();
    obs::uninstall();
    (sink.take(), result)
}

fn identities(events: &[obs::Event]) -> Vec<String> {
    events.iter().map(obs::Event::identity).collect()
}

/// The last snapshot value of a named counter.
fn final_counter(events: &[obs::Event], name: &str) -> u64 {
    events
        .iter()
        .rev()
        .find_map(|e| match &e.kind {
            obs::EventKind::Counter { name: n, value } if *n == name => Some(*value),
            _ => None,
        })
        .unwrap_or_else(|| panic!("no counter `{name}` in the event stream"))
}

#[test]
fn phase_spans_cover_the_pipeline() {
    let (events, _) = record_explore(1);
    let ids = identities(&events);
    for name in [
        "conex.explore",
        "conex.phase1",
        "conex.connectivity_exploration",
        "conex.profile",
        "conex.cluster",
        "conex.enumerate",
        "conex.estimate",
        "conex.phase2",
    ] {
        let begin = ids.iter().position(|i| i == &format!("span_begin:{name}"));
        let end = ids.iter().position(|i| i == &format!("span_end:{name}"));
        assert!(begin.is_some(), "missing span_begin:{name}");
        assert!(end.is_some(), "missing span_end:{name}");
        assert!(begin < end, "span {name} closes before it opens");
    }
}

#[test]
fn funnel_counters_reconcile() {
    let (events, result) = record_explore(1);
    let enumerated = final_counter(&events, "conex.candidates_enumerated");
    let infeasible = final_counter(&events, "conex.candidates_infeasible");
    let estimated = final_counter(&events, "conex.candidates_estimated");
    let shortlist = final_counter(&events, "conex.shortlist");
    let simulated = final_counter(&events, "conex.simulated");
    assert_eq!(
        estimated,
        enumerated - infeasible,
        "estimated must equal enumerated minus constraint-filtered"
    );
    assert_eq!(
        simulated, shortlist,
        "Phase II simulates exactly the pooled shortlist"
    );
    assert_eq!(estimated, result.estimated().len() as u64);
    assert_eq!(simulated, result.simulated().len() as u64);
    assert!(
        final_counter(&events, "sim.accesses_replayed") > 0,
        "the simulator reports replayed accesses"
    );
}

#[test]
fn deterministic_events_identical_serial_vs_parallel() {
    let (serial, _) = record_explore(1);
    let (parallel, _) = record_explore(4);
    let filter = |events: &[obs::Event]| -> Vec<String> {
        events
            .iter()
            .filter(|e| !e.schedule_dependent())
            .map(obs::Event::identity)
            .collect()
    };
    assert_eq!(
        filter(&serial),
        filter(&parallel),
        "non-timing event stream must not depend on the thread count"
    );
}

#[test]
fn worker_lanes_account_for_all_estimates() {
    let (events, _) = record_explore(4);
    let worker_items = |name: &str| -> u64 {
        events
            .iter()
            .filter_map(|e| match e.kind {
                obs::EventKind::Worker { name: n, items, .. } if n == name => Some(items),
                _ => None,
            })
            .sum()
    };
    let estimate_jobs = final_counter(&events, "conex.estimate_jobs");
    let simulate_jobs = final_counter(&events, "conex.simulate_jobs");
    assert_eq!(
        worker_items("conex.estimate"),
        estimate_jobs,
        "worker lanes must account for every unique estimation job"
    );
    assert_eq!(
        worker_items("conex.simulate"),
        simulate_jobs,
        "worker lanes must account for every unique simulation job"
    );
    // Every feasible candidate either became a unique job or was coalesced
    // into one: jobs + coalesced reconciles exactly with the funnel.
    let feasible = final_counter(&events, "conex.candidates_enumerated")
        - final_counter(&events, "conex.candidates_infeasible");
    let shortlist = final_counter(&events, "conex.shortlist");
    assert_eq!(
        estimate_jobs + simulate_jobs + final_counter(&events, "eval_cache.coalesced"),
        feasible + shortlist,
        "coalescing must account for every candidate that skipped simulation"
    );
    let lanes: Vec<u32> = events
        .iter()
        .filter_map(|e| match e.kind {
            obs::EventKind::Worker { lane, .. } => Some(lane),
            _ => None,
        })
        .collect();
    assert!(!lanes.is_empty(), "a 4-thread run must emit worker lanes");
    assert!(lanes.iter().all(|&l| l >= 1), "lane 0 is the coordinator");
}

#[test]
fn results_are_bit_identical_with_tracing_on_and_off() {
    let run = |traced: bool| -> ConexResult {
        let _guard = RECORDER_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let sink = Arc::new(obs::MemorySink::new());
        if traced {
            obs::install(sink.clone());
        } else {
            obs::uninstall();
        }
        let w = benchmarks::vocoder();
        let mem = vec![MemoryArchitecture::cache_only(
            &w,
            CacheConfig::kilobytes(4),
        )];
        let result = ConexExplorer::new(ConexConfig::preset(Preset::Fast))
            .explore(&w, mem)
            .unwrap();
        obs::uninstall();
        result
    };
    let traced = run(true);
    let untraced = run(false);
    assert_eq!(traced.estimated(), untraced.estimated());
    assert_eq!(traced.simulated(), untraced.simulated());
}

#[test]
fn report_collection_is_bit_identical_with_metrics_on_and_off() {
    // The `--report-out` path installs a NullSink so the metric registries
    // collect; that must not perturb exploration results, and the report's
    // deterministic sections must not depend on whether metrics were on.
    let run = |with_metrics: bool| -> SessionResult {
        let _guard = RECORDER_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        if with_metrics {
            obs::install(Arc::new(obs::NullSink::new()));
        } else {
            obs::uninstall();
        }
        let result = ExplorationSession::new(benchmarks::vocoder())
            .preset(Preset::Fast)
            .run()
            .expect("exploration runs");
        obs::uninstall();
        result
    };
    let with = run(true);
    let without = run(false);
    assert_eq!(with.apex, without.apex);
    assert_eq!(with.conex.estimated(), without.conex.estimated());
    assert_eq!(with.conex.simulated(), without.conex.simulated());
    assert_eq!(
        with.conex.frontier_evolution(),
        without.conex.frontier_evolution()
    );
    // Metrics-on collects latency histograms; metrics-off still produces a
    // complete report, just without them.
    let json = with.report.to_json();
    assert!(
        json.contains("conex.simulate.item_us"),
        "histograms collected"
    );
    assert!(
        !without.report.to_json().contains("conex.simulate.item_us"),
        "no histograms recorded with the recorder disabled"
    );
}

#[test]
fn recorded_run_renders_a_valid_chrome_trace() {
    let (events, _) = record_explore(4);
    let json = obs::render_chrome_trace(&events);
    let doc = obs::json::parse(&json).expect("chrome trace is valid JSON");
    let trace_events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    assert!(!trace_events.is_empty());
    let phases: Vec<&str> = trace_events
        .iter()
        .filter_map(|e| e.get("ph").and_then(|p| p.as_str()))
        .collect();
    assert!(phases.contains(&"B"), "phase spans present");
    assert!(phases.contains(&"E"), "phase spans close");
    assert!(phases.contains(&"X"), "worker lanes present");
    assert!(phases.contains(&"C"), "counters present");
}

#[test]
fn apex_spans_and_counters_recorded() {
    let _guard = RECORDER_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let sink = Arc::new(obs::MemorySink::new());
    obs::install(sink.clone());
    let w = benchmarks::vocoder();
    let result = ApexExplorer::new(ApexConfig::preset(Preset::Fast)).explore(&w);
    obs::uninstall();
    let events = sink.take();
    let ids = identities(&events);
    for name in [
        "apex.explore",
        "apex.classify",
        "apex.generate",
        "apex.evaluate",
        "apex.select",
    ] {
        assert!(
            ids.contains(&format!("span_begin:{name}")),
            "missing span {name}"
        );
    }
    assert_eq!(
        final_counter(&events, "apex.candidates_evaluated"),
        result.points().len() as u64
    );
    assert_eq!(
        final_counter(&events, "apex.selected"),
        result.selected_points().count() as u64
    );
}
