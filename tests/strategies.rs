//! Exploration-strategy integration tests: the Pruned / Neighborhood /
//! Full comparison that Table 2 quantifies.

use memory_conex::appmodel::benchmarks;
use memory_conex::conex::{
    Axis, ConexConfig, ConexExplorer, CoverageReport, ExplorationStrategy, Metrics, ParetoFront,
};
use memory_conex::prelude::*;

fn explore(strategy: ExplorationStrategy) -> ConexResult {
    let w = benchmarks::vocoder();
    let apex = ApexExplorer::new(ApexConfig::preset(Preset::Fast)).explore(&w);
    ConexExplorer::new(ConexConfig::preset(Preset::Fast).with_strategy(strategy))
        .explore(&w, apex.selected())
        .unwrap()
}

#[test]
fn strategy_simulation_counts_are_ordered() {
    let pruned = explore(ExplorationStrategy::Pruned);
    let neighborhood = explore(ExplorationStrategy::Neighborhood);
    let full = explore(ExplorationStrategy::Full);
    assert!(pruned.simulated().len() <= neighborhood.simulated().len());
    assert!(neighborhood.simulated().len() <= full.simulated().len());
    assert_eq!(full.simulated().len(), full.estimated().len());
}

#[test]
fn pruned_coverage_is_high_with_small_distance() {
    // The paper's claim: the Pruned search finds most of the true pareto
    // or close substitutes (sub-few-percent average distance).
    let pruned = explore(ExplorationStrategy::Pruned);
    let full = explore(ExplorationStrategy::Full);
    let full_metrics: Vec<Metrics> = full.simulated().iter().map(|p| p.metrics).collect();
    let reference: Vec<Metrics> = ParetoFront::of(&full_metrics, &Axis::ALL)
        .indices()
        .iter()
        .map(|&i| full_metrics[i])
        .collect();
    let found: Vec<Metrics> = pruned.simulated().iter().map(|p| p.metrics).collect();
    let report = CoverageReport::compare(&reference, &found, 0.005);
    assert!(
        report.coverage_pct >= 30.0,
        "pruned coverage too low: {}",
        report.coverage_pct
    );
    assert!(
        report.avg_cost_dist_pct < 25.0,
        "cost distance too large: {}",
        report.avg_cost_dist_pct
    );
    assert!(
        report.avg_perf_dist_pct < 50.0,
        "perf distance too large: {}",
        report.avg_perf_dist_pct
    );
}

#[test]
fn neighborhood_covers_at_least_as_much_as_pruned() {
    let pruned = explore(ExplorationStrategy::Pruned);
    let neighborhood = explore(ExplorationStrategy::Neighborhood);
    let full = explore(ExplorationStrategy::Full);
    let full_metrics: Vec<Metrics> = full.simulated().iter().map(|p| p.metrics).collect();
    let reference: Vec<Metrics> = ParetoFront::of(&full_metrics, &Axis::ALL)
        .indices()
        .iter()
        .map(|&i| full_metrics[i])
        .collect();
    let cover = |r: &ConexResult| {
        let found: Vec<Metrics> = r.simulated().iter().map(|p| p.metrics).collect();
        CoverageReport::compare(&reference, &found, 0.005).coverage_pct
    };
    assert!(cover(&neighborhood) >= cover(&pruned) - 1e-9);
}

#[test]
fn full_strategy_defines_its_own_reference() {
    let full = explore(ExplorationStrategy::Full);
    let metrics: Vec<Metrics> = full.simulated().iter().map(|p| p.metrics).collect();
    let reference: Vec<Metrics> = ParetoFront::of(&metrics, &Axis::ALL)
        .indices()
        .iter()
        .map(|&i| metrics[i])
        .collect();
    let report = CoverageReport::compare(&reference, &metrics, 1e-9);
    assert!((report.coverage_pct - 100.0).abs() < 1e-9);
}

#[test]
fn estimates_rank_like_full_simulation_on_the_shortlist() {
    // Fidelity contract of the Phase-I estimator: estimated and simulated
    // metrics must correlate strongly enough that pruning is sound.
    // Spearman-style check: among simulated points, higher estimated
    // latency should mostly mean higher simulated latency.
    let w = benchmarks::vocoder();
    let apex = ApexExplorer::new(ApexConfig::preset(Preset::Fast)).explore(&w);
    let explorer = ConexExplorer::new(ConexConfig::preset(Preset::Fast));
    let mem = apex.selected().remove(0);
    let estimates = explorer.connectivity_exploration(&w, &mem).unwrap();
    let mut agree = 0;
    let mut total = 0;
    let refined: Vec<f64> = estimates
        .iter()
        .map(|p| memory_conex::sim::simulate(&p.system, &w, 15_000).avg_latency_cycles)
        .collect();
    for i in 0..estimates.len() {
        for j in (i + 1)..estimates.len() {
            let est = estimates[i].metrics.latency_cycles < estimates[j].metrics.latency_cycles;
            let full = refined[i] < refined[j];
            total += 1;
            if est == full {
                agree += 1;
            }
        }
    }
    let concordance = agree as f64 / total as f64;
    assert!(
        concordance > 0.7,
        "estimator concordance too weak: {concordance:.2}"
    );
}
