//! Evaluation-engine integration: memoized and fresh explorations are
//! bit-identical, the cache respects its capacity bound, and spill files
//! round trip through the public API. (Canonical-hash invariance
//! properties are in `canon_hash_props.rs`.)

use memory_conex::conex::eval_cache::DEFAULT_CAPACITY;
use memory_conex::connlib::{ChannelId, ConnectivityArchitecture};
use memory_conex::prelude::*;
use memory_conex::{appmodel::benchmarks, sim::Preset};
use std::sync::Arc;

fn unique_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("mce_it_{tag}_{}.json", std::process::id()))
}

#[test]
fn memoized_session_is_bit_identical_to_fresh_pipeline() {
    let w = benchmarks::compress();
    let fresh_apex = ApexExplorer::new(ApexConfig::preset(Preset::Fast)).explore(&w);
    let fresh = ConexExplorer::new(ConexConfig::preset(Preset::Fast))
        .explore(&w, fresh_apex.selected())
        .unwrap();
    let memoized = ExplorationSession::new(w)
        .preset(Preset::Fast)
        .run()
        .expect("session runs");
    assert_eq!(memoized.apex, fresh_apex);
    assert_eq!(memoized.conex.simulated().len(), fresh.simulated().len());
    for (a, b) in memoized.conex.simulated().iter().zip(fresh.simulated()) {
        assert_eq!(a.system, b.system, "same design");
        assert_eq!(a.metrics, b.metrics, "bit-identical metrics");
    }
    let stats = memoized.cache_stats;
    assert!(stats.inserts > 0, "the session populated its cache");
    assert_eq!(
        stats.misses, stats.inserts,
        "cold cache: every miss inserts"
    );
}

#[test]
fn warm_spill_file_produces_hits_and_identical_results() {
    let path = unique_path("warm");
    std::fs::remove_file(&path).ok();
    let session = ExplorationSession::new(benchmarks::vocoder())
        .preset(Preset::Fast)
        .eval_cache_file(&path);
    let cold = session.run().expect("cold run");
    let warm = session.run().expect("warm run");
    std::fs::remove_file(&path).ok();
    assert!(
        warm.cache_stats.hits > cold.cache_stats.hits,
        "the spill answers repeated evaluations: {:?} vs {:?}",
        warm.cache_stats,
        cold.cache_stats
    );
    for (a, b) in cold.conex.simulated().iter().zip(warm.conex.simulated()) {
        assert_eq!(a.metrics, b.metrics, "warm cache never changes results");
    }
}

#[test]
fn session_cache_stays_within_its_capacity_bound() {
    let tiny = 8;
    let path = unique_path("cap");
    std::fs::remove_file(&path).ok();
    let result = ExplorationSession::new(benchmarks::vocoder())
        .preset(Preset::Fast)
        .cache_capacity(tiny)
        .eval_cache_file(&path)
        .run()
        .expect("session runs");
    let spilled = std::fs::read_to_string(&path).expect("spill written");
    std::fs::remove_file(&path).ok();
    assert!(
        result.cache_stats.evictions > 0,
        "a tiny cache under exploration load must evict: {:?}",
        result.cache_stats
    );
    // The spill holds at most `tiny` resident entries: one 4-field row
    // per entry.
    assert!(
        spilled.matches('[').count() <= tiny + 1,
        "spill exceeds capacity: {spilled}"
    );
}

#[test]
fn spill_round_trips_through_the_public_cache_api() {
    let w = benchmarks::vocoder();
    let engine = EvalEngine::new(&w, 4_000).with_cache(Arc::new(EvalCache::with_capacity(1024)));
    let mem = MemoryArchitecture::cache_only(&w, memory_conex::memlib::CacheConfig::kilobytes(4));
    let lib = ConnectivityLibrary::amba();
    let candidates: Vec<ConnectivityArchitecture> = {
        // One feasible shared-bus candidate per on-chip component kind.
        lib.on_chip()
            .map(|c| {
                let sys = SystemConfig::with_shared_bus(&w, mem.clone()).expect("feasible");
                let mut conn = sys.conn().clone();
                let id = conn.add_link("alt", *c);
                for ci in 0..conn.channels().len() {
                    let ch = ChannelId::new(ci);
                    if !conn.channels()[ci].off_chip {
                        conn.assign(ch, id);
                    }
                }
                conn
            })
            .collect()
    };
    let first = engine
        .estimate_batch(
            &mem,
            candidates.clone(),
            4_000,
            memory_conex::sim::SamplingConfig::paper(),
            1,
        )
        .expect("estimation runs");
    assert!(
        first.iter().any(Option::is_some),
        "at least one alternative allocation must be feasible"
    );
    let cache = engine.cache().expect("cache attached");
    let path = unique_path("roundtrip");
    cache.save(&path).expect("save");
    let reloaded = Arc::new(EvalCache::load(&path, DEFAULT_CAPACITY).expect("load"));
    std::fs::remove_file(&path).ok();
    assert_eq!(reloaded.len(), cache.len(), "every entry survives the disk");
    let again = EvalEngine::new(&w, 4_000)
        .with_cache(reloaded.clone())
        .estimate_batch(
            &mem,
            candidates,
            4_000,
            memory_conex::sim::SamplingConfig::paper(),
            1,
        )
        .expect("estimation runs");
    assert_eq!(
        first, again,
        "reloaded cache reproduces the metrics bit-for-bit"
    );
    assert_eq!(
        reloaded.stats().misses,
        0,
        "everything answered from the reloaded spill"
    );
}
