//! Multi-level memory hierarchies (the backed-module extension): an L2
//! cache between the L1 and the DRAM, wired through a module↔module
//! channel.

use memory_conex::appmodel::{AccessPattern, DataStructure, WorkloadBuilder};
use memory_conex::memlib::CacheConfig;
use memory_conex::prelude::*;
use memory_conex::sim::simulate;
use memory_conex::sim::system::{channel_endpoints, ChannelEndpoint};

/// A workload whose hot working set overflows a small L1 but fits a
/// mid-size L2: the canonical case where a second level pays off.
fn l2_friendly_workload() -> Workload {
    WorkloadBuilder::new("l2_friendly")
        .data_structure(
            DataStructure::new(
                "mid_set",
                24 * 1024,
                8,
                AccessPattern::LoopNest {
                    working_set: 24 * 1024,
                    reuse: 6,
                },
            )
            .with_hotness(10.0)
            .with_write_fraction(0.1),
        )
        .data_structure(
            DataStructure::new("stream", 128 * 1024, 4, AccessPattern::Stream { stride: 4 })
                .with_hotness(2.0)
                .with_write_fraction(0.0),
        )
        .seed(9)
        .build()
}

fn one_level(w: &Workload) -> MemoryArchitecture {
    MemoryArchitecture::cache_only(w, CacheConfig::kilobytes(1))
}

fn two_level(w: &Workload) -> MemoryArchitecture {
    MemoryArchitecture::builder("l1_l2")
        .module("L1", MemModuleKind::Cache(CacheConfig::kilobytes(1)))
        .module("L2", MemModuleKind::Cache(CacheConfig::kilobytes(32)))
        .map_rest_to(0)
        .backed_by(0, 1)
        .build(w)
        .expect("valid two-level architecture")
}

#[test]
fn two_level_channel_topology() {
    let w = l2_friendly_workload();
    let mem = two_level(&w);
    let eps = channel_endpoints(&mem, &w);
    let l1 = mce_memlib_id(0);
    let l2 = mce_memlib_id(1);
    assert!(eps.contains(&ChannelEndpoint::CpuToModule(l1)));
    assert!(eps.contains(&ChannelEndpoint::ModuleToModule(l1, l2)));
    assert!(eps.contains(&ChannelEndpoint::ModuleToDram(l2)));
    assert!(
        !eps.contains(&ChannelEndpoint::CpuToModule(l2)),
        "a pure L2 has no CPU channel"
    );
    assert!(
        !eps.contains(&ChannelEndpoint::ModuleToDram(l1)),
        "a backed L1 does not talk to DRAM directly"
    );
    // The L1<->L2 channel is on-chip.
    let i = eps
        .iter()
        .position(|e| *e == ChannelEndpoint::ModuleToModule(l1, l2))
        .unwrap();
    assert!(!eps[i].is_off_chip());
}

fn mce_memlib_id(i: usize) -> memory_conex::memlib::ModuleId {
    memory_conex::memlib::ModuleId::new(i)
}

/// Wires every on-chip channel to its own MUX connection and every
/// off-chip channel to the standard off-chip bus, so hierarchy effects are
/// not confounded by bus contention.
fn private_links(w: &Workload, mem: MemoryArchitecture) -> SystemConfig {
    use memory_conex::connlib::{
        Channel, ChannelId, ConnComponent, ConnComponentKind, ConnectivityArchitecture,
    };
    let channels: Vec<Channel> = memory_conex::sim::system::channels_for(&mem, w);
    let mut conn = ConnectivityArchitecture::new(channels.clone());
    for (i, ch) in channels.iter().enumerate() {
        let link = if ch.off_chip {
            conn.add_link(
                format!("ext{i}"),
                ConnComponent::new(ConnComponentKind::OffChipBus),
            )
        } else {
            conn.add_link(
                format!("mux{i}"),
                ConnComponent::new(ConnComponentKind::Mux),
            )
        };
        conn.assign(ChannelId::new(i), link);
    }
    SystemConfig::new(w, mem, conn).expect("valid system")
}

#[test]
fn l2_improves_latency_when_working_set_fits() {
    let w = l2_friendly_workload();
    let n = 20_000;
    let single = simulate(&private_links(&w, one_level(&w)), &w, n);
    let double = simulate(&private_links(&w, two_level(&w)), &w, n);
    assert!(
        double.avg_latency_cycles < single.avg_latency_cycles,
        "L2 {} vs L1-only {}",
        double.avg_latency_cycles,
        single.avg_latency_cycles
    );
    // And it costs more gates, as it should.
    assert!(two_level(&w).gate_cost() > one_level(&w).gate_cost());
}

#[test]
fn l2_under_one_shared_bus_is_not_automatically_better() {
    // The paper's central argument, seen through the extension: the same
    // two-level memory architecture that wins with private links can lose
    // its advantage when all on-chip channels share one ASB, because L1
    // fills contend with CPU traffic. Connectivity choice matters as much
    // as the module choice.
    let w = l2_friendly_workload();
    let n = 20_000;
    let shared = simulate(
        &SystemConfig::with_shared_bus(&w, two_level(&w)).unwrap(),
        &w,
        n,
    );
    let private = simulate(&private_links(&w, two_level(&w)), &w, n);
    assert!(
        private.avg_latency_cycles < shared.avg_latency_cycles,
        "private {} vs shared {}",
        private.avg_latency_cycles,
        shared.avg_latency_cycles
    );
}

#[test]
fn l2_reduces_offchip_traffic() {
    let w = l2_friendly_workload();
    let n = 20_000;
    let single_sys = SystemConfig::with_shared_bus(&w, one_level(&w)).unwrap();
    let double_sys = SystemConfig::with_shared_bus(&w, two_level(&w)).unwrap();
    let single = simulate(&single_sys, &w, n);
    let double = simulate(&double_sys, &w, n);
    let off_chip_bytes = |s: &SimStats, sys: &SystemConfig| -> u64 {
        sys.conn()
            .links()
            .iter()
            .zip(&s.links)
            .filter(|(l, _)| l.component().params().off_chip)
            .map(|(_, cs)| cs.bytes)
            .sum()
    };
    assert!(
        off_chip_bytes(&double, &double_sys) < off_chip_bytes(&single, &single_sys),
        "L2 must absorb off-chip traffic"
    );
}

#[test]
fn two_level_system_explorable_by_conex() {
    // The exploration machinery treats the L1<->L2 channel like any other
    // on-chip channel: clustering, allocation and estimation just work.
    let w = l2_friendly_workload();
    let mem = two_level(&w);
    let mut cfg = memory_conex::conex::ConexConfig::preset(Preset::Fast);
    cfg.trace_len = 6_000;
    cfg.max_allocations_per_level = 16;
    let explorer = memory_conex::conex::ConexExplorer::new(cfg);
    let points = explorer.connectivity_exploration(&w, &mem).unwrap();
    assert!(points.len() >= 5, "{} points", points.len());
    let result = explorer.explore(&w, vec![mem]).unwrap();
    assert!(!result.pareto_cost_latency().is_empty());
}

#[test]
fn three_level_chain_works() {
    let w = l2_friendly_workload();
    let mem = MemoryArchitecture::builder("l1_l2_l3")
        .module("L1", MemModuleKind::Cache(CacheConfig::kilobytes(1)))
        .module("L2", MemModuleKind::Cache(CacheConfig::kilobytes(8)))
        .module("L3", MemModuleKind::Cache(CacheConfig::kilobytes(64)))
        .map_rest_to(0)
        .backed_by(0, 1)
        .backed_by(1, 2)
        .build(&w)
        .expect("three levels validate");
    let sys = SystemConfig::with_shared_bus(&w, mem).unwrap();
    let s = simulate(&sys, &w, 5_000);
    assert_eq!(s.accesses, 5_000);
    assert!(s.avg_latency_cycles > 0.0);
}

#[test]
fn backed_dma_works_too() {
    // Backing is not cache-exclusive on the front side: a DMA's fills can
    // land in a shared L2.
    let w = WorkloadBuilder::new("chase")
        .data_structure(
            DataStructure::new("list", 64 * 1024, 8, AccessPattern::SelfIndirect).with_hotness(5.0),
        )
        .data_structure(DataStructure::new(
            "misc",
            8 * 1024,
            4,
            AccessPattern::Random,
        ))
        .seed(4)
        .build();
    let mem = MemoryArchitecture::builder("dma_l2")
        .module("L1", MemModuleKind::Cache(CacheConfig::kilobytes(2)))
        .module(
            "dma",
            MemModuleKind::SelfIndirectDma {
                depth: 8,
                element_bytes: 8,
            },
        )
        .module("L2", MemModuleKind::Cache(CacheConfig::kilobytes(32)))
        .map(memory_conex::appmodel::DsId::new(0), 1)
        .map_rest_to(0)
        .backed_by(0, 2)
        .backed_by(1, 2)
        .build(&w)
        .expect("valid");
    let sys = SystemConfig::with_shared_bus(&w, mem).unwrap();
    let s = simulate(&sys, &w, 5_000);
    assert_eq!(s.accesses, 5_000);
}
