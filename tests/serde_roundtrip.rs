//! Serialization round-trips: every result type can be written to JSON and
//! read back bit-identically, so experiment artifacts and CLI outputs are
//! durable interchange formats.

use memory_conex::appmodel::benchmarks;
use memory_conex::conex::{ConexConfig, ConexExplorer, ConexResult};
use memory_conex::prelude::*;
use memory_conex::sim::simulate;

#[test]
fn workloads_round_trip() {
    for w in benchmarks::all().into_iter().chain(benchmarks::extended()) {
        let json = serde_json::to_string(&w).expect("serialize");
        let back: Workload = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(w, back, "{}", w.name());
        // Traces from the deserialized workload are identical.
        let a: Vec<MemAccess> = w.trace(500).collect();
        let b: Vec<MemAccess> = back.trace(500).collect();
        assert_eq!(a, b);
    }
}

#[test]
fn memory_architecture_round_trips() {
    let w = benchmarks::li();
    let mem = MemoryArchitecture::builder("rt")
        .module(
            "L1",
            MemModuleKind::Cache(memory_conex::memlib::CacheConfig::kilobytes(4)),
        )
        .module(
            "dma",
            MemModuleKind::SelfIndirectDma {
                depth: 8,
                element_bytes: 8,
            },
        )
        .map(memory_conex::appmodel::DsId::new(0), 1)
        .map_rest_to(0)
        .build(&w)
        .unwrap();
    let json = serde_json::to_string(&mem).unwrap();
    let back: MemoryArchitecture = serde_json::from_str(&json).unwrap();
    assert_eq!(mem, back);
    assert!(back.validate(&w).is_ok());
}

#[test]
fn system_config_and_stats_round_trip() {
    let w = benchmarks::vocoder();
    let mem = MemoryArchitecture::cache_only(&w, memory_conex::memlib::CacheConfig::kilobytes(2));
    let sys = SystemConfig::with_shared_bus(&w, mem).unwrap();
    let json = serde_json::to_string(&sys).unwrap();
    let back: SystemConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(sys, back);
    // Simulating the deserialized system gives identical stats.
    let a = simulate(&sys, &w, 5_000);
    let b = simulate(&back, &w, 5_000);
    assert_eq!(a, b);
    let stats_json = serde_json::to_string(&a).unwrap();
    let stats_back: SimStats = serde_json::from_str(&stats_json).unwrap();
    assert_eq!(a, stats_back);
}

#[test]
fn conex_result_round_trips() {
    let w = benchmarks::vocoder();
    let apex = ApexExplorer::new(ApexConfig::preset(Preset::Fast)).explore(&w);
    let mut cfg = ConexConfig::preset(Preset::Fast);
    cfg.trace_len = 5_000;
    cfg.max_allocations_per_level = 8;
    let result = ConexExplorer::new(cfg)
        .explore(&w, apex.selected())
        .unwrap();
    let json = serde_json::to_string(&result).unwrap();
    let back: ConexResult = serde_json::from_str(&json).unwrap();
    assert_eq!(result.simulated().len(), back.simulated().len());
    for (a, b) in result.simulated().iter().zip(back.simulated()) {
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.describe(), b.describe());
    }
    // Deserialized design points are re-simulatable.
    let p = &back.simulated()[0];
    let stats = simulate(&p.system, &w, 5_000);
    assert!(stats.avg_latency_cycles > 0.0);
}

#[test]
fn library_round_trips() {
    let lib = ConnectivityLibrary::amba();
    let json = serde_json::to_string(&lib).unwrap();
    let back: ConnectivityLibrary = serde_json::from_str(&json).unwrap();
    assert_eq!(lib, back);
}
