//! Swarm supervision end to end, against the real `mce` binary: a
//! multi-process run must merge to the same report a single process
//! produces (up to `wall_clock`), survive a SIGKILL'd worker and a
//! heartbeat-stalled worker, and degrade to inline completion when the
//! restart budget runs out — exiting 0 when every lease ran under a
//! worker, 2 when it completed only by falling back to inline
//! execution, 1 on failure. The binary is built with the
//! `fault-injection` feature through the package's self-dev-dependency,
//! so `MCE_FAULT` is live in the spawned processes.

use memory_conex::obs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mce_swarm_{}_{name}", std::process::id()))
}

/// The serial baseline: `mce explore` with the same preset, no faults.
fn serial_report(bin: &str, dir: &Path) -> PathBuf {
    let report = dir.join("serial.json");
    let out = Command::new(bin)
        .args(["explore", "vocoder", "--preset", "fast", "--report-out"])
        .arg(&report)
        .arg("--out-dir")
        .arg(dir.join("experiments"))
        .env_remove("MCE_FAULT")
        .output()
        .expect("spawning the mce binary");
    assert!(out.status.success(), "serial run failed: {out:?}");
    report
}

fn swarm_cmd(bin: &str, dir: &Path, report: &Path, extra: &[&str]) -> Command {
    let mut cmd = Command::new(bin);
    cmd.args(["swarm", "vocoder", "--preset", "fast", "--dir"])
        .arg(dir.join("swarm"))
        .arg("--report-out")
        .arg(report)
        .args(extra)
        .env_remove("MCE_FAULT");
    cmd
}

/// Asserts the two reports are diff-clean: `mce diff` exits 0, meaning
/// every deterministic section is identical and only effort/wall-clock
/// context differs.
fn assert_diff_clean(bin: &str, a: &Path, b: &Path, what: &str) {
    let out = Command::new(bin)
        .arg("diff")
        .arg(a)
        .arg(b)
        .env_remove("MCE_FAULT")
        .output()
        .expect("spawning the mce binary");
    assert!(
        out.status.success(),
        "{what}: reports differ:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

fn counter(report: &Path, name: &str) -> u64 {
    let text = std::fs::read_to_string(report).expect("report reads");
    let doc = obs::json::parse(&text).expect("report is valid JSON");
    doc.get("counters")
        .and_then(|c| c.get(name))
        .and_then(obs::json::Value::as_u64)
        .unwrap_or(0)
}

fn swarm_log(dir: &Path) -> String {
    std::fs::read_to_string(dir.join("swarm").join("swarm.log")).unwrap_or_default()
}

fn show(out: &Output) -> String {
    format!(
        "status {:?}\n--- stdout ---\n{}--- stderr ---\n{}",
        out.status,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    )
}

/// A fault-free swarm merges to the serial report.
#[test]
fn clean_swarm_matches_the_serial_report() {
    let Some(bin) = option_env!("CARGO_BIN_EXE_mce") else {
        eprintln!("skipping: mce binary path not provided by the harness");
        return;
    };
    let dir = tmp("clean");
    std::fs::create_dir_all(&dir).unwrap();
    let serial = serial_report(bin, &dir);
    let report = dir.join("swarm.json");
    let out = swarm_cmd(bin, &dir, &report, &["-j", "2"])
        .output()
        .expect("spawning the mce binary");
    // Exit-code contract: 0 = every lease ran under a worker.
    assert_eq!(out.status.code(), Some(0), "clean swarm: {}", show(&out));
    assert_diff_clean(bin, &serial, &report, "clean swarm");
    assert_eq!(counter(&report, "swarm.restarts"), 0);
    assert_eq!(counter(&report, "swarm.leases_stolen"), 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// A worker SIGKILL'd mid-exploration is detected, restarted after
/// backoff, and the lease finishes through its checkpoint — the merged
/// report is unaffected.
#[test]
fn sigkilled_worker_is_restarted_and_the_merge_is_unaffected() {
    let Some(bin) = option_env!("CARGO_BIN_EXE_mce") else {
        eprintln!("skipping: mce binary path not provided by the harness");
        return;
    };
    let dir = tmp("sigkill");
    std::fs::create_dir_all(&dir).unwrap();
    let serial = serial_report(bin, &dir);
    let report = dir.join("swarm.json");
    let out = swarm_cmd(bin, &dir, &report, &["-j", "2", "--fault-worker", "0"])
        .env("MCE_FAULT", "sigkill_at_eval:3")
        .output()
        .expect("spawning the mce binary");
    assert!(
        out.status.success(),
        "swarm with a SIGKILL'd worker failed: {}",
        show(&out)
    );
    assert_diff_clean(bin, &serial, &report, "sigkilled swarm");
    assert!(
        counter(&report, "swarm.restarts") >= 1,
        "the kill must be visible in swarm.restarts"
    );
    let log = swarm_log(&dir);
    assert!(log.contains("crashed"), "no crash in the log:\n{log}");
    assert!(
        log.contains("backing off"),
        "no restart backoff in the log:\n{log}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A worker whose heartbeats stop while it hangs is declared dead on the
/// staleness timeout, killed, and its lease is finished by another
/// claimant — the merged report is unaffected.
#[test]
fn heartbeat_stalled_worker_is_killed_and_its_lease_is_recovered() {
    let Some(bin) = option_env!("CARGO_BIN_EXE_mce") else {
        eprintln!("skipping: mce binary path not provided by the harness");
        return;
    };
    let dir = tmp("stall");
    std::fs::create_dir_all(&dir).unwrap();
    let serial = serial_report(bin, &dir);
    let report = dir.join("swarm.json");
    // The worker wedges at its second evaluation with every heartbeat
    // suppressed: only the supervisor's staleness timeout can reclaim it.
    let out = swarm_cmd(
        bin,
        &dir,
        &report,
        &[
            "-j",
            "2",
            "--fault-worker",
            "1",
            "--heartbeat-timeout",
            "800",
        ],
    )
    .env("MCE_FAULT", "stall_heartbeat:1,hang_at_eval:2")
    .output()
    .expect("spawning the mce binary");
    assert!(
        out.status.success(),
        "swarm with a stalled worker failed: {}",
        show(&out)
    );
    assert_diff_clean(bin, &serial, &report, "stalled swarm");
    assert!(
        counter(&report, "swarm.restarts") >= 1,
        "the stale kill must be visible in swarm.restarts"
    );
    let log = swarm_log(&dir);
    assert!(
        log.contains("heartbeat") || log.contains("crashed"),
        "no staleness verdict in the log:\n{log}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// With a restart budget of zero, the first crash retires the only
/// worker slot — and the supervisor drains the remaining leases inline
/// rather than failing the run.
#[test]
fn exhausted_restart_budget_degrades_to_inline_completion() {
    let Some(bin) = option_env!("CARGO_BIN_EXE_mce") else {
        eprintln!("skipping: mce binary path not provided by the harness");
        return;
    };
    let dir = tmp("budget");
    std::fs::create_dir_all(&dir).unwrap();
    let serial = serial_report(bin, &dir);
    let report = dir.join("swarm.json");
    let out = swarm_cmd(
        bin,
        &dir,
        &report,
        &["-j", "1", "--restart-budget", "0", "--fault-worker", "0"],
    )
    .env("MCE_FAULT", "sigkill_at_eval:3")
    .output()
    .expect("spawning the mce binary");
    // Exit-code contract: 2 = completed, but degraded to inline
    // execution — the report is exact, the operational posture is not.
    // (0 would hide the degradation from process managers; 1 would
    // belie the exact report.)
    assert_eq!(
        out.status.code(),
        Some(2),
        "budget exhaustion must exit 2 (completed degraded): {}",
        show(&out)
    );
    assert_diff_clean(bin, &serial, &report, "budget-exhausted swarm");
    assert!(counter(&report, "swarm.restarts") >= 1);
    let log = swarm_log(&dir);
    assert!(log.contains("retired"), "no retirement in the log:\n{log}");
    assert!(
        log.contains("inline"),
        "no inline completion in the log:\n{log}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
