//! Property tests for the swarm coordination artifacts: the digest-framed
//! lease manifest and the single-line heartbeat files. Any corruption —
//! truncation at every byte boundary, single bit flips — must be rejected
//! whole (manifest) or read as silence (heartbeat); a damaged artifact
//! must never re-aim a worker at a range it was not assigned.

use memory_conex::swarm::{
    backoff_after, partition_leases, read_heartbeat, write_heartbeat, Heartbeat, Lease,
    LeaseManifest, LeaseState, MANIFEST_SCHEMA,
};
use proptest::prelude::*;
use std::path::PathBuf;
use std::time::Duration;

fn tmp(name: &str, case: u64) -> PathBuf {
    std::env::temp_dir().join(format!("mce_swprops_{}_{case}_{name}", std::process::id()))
}

/// A structurally valid manifest drawn from the generators: the leases
/// are a real partition of `0..total`, with per-lease state and attempt
/// counts varied by `seed`.
fn build_manifest(total: usize, workers: usize, seed: u64) -> LeaseManifest {
    let mut leases = partition_leases(total, workers * 2);
    let mut s = seed;
    for lease in &mut leases {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        lease.state = match (s >> 33) % 3 {
            0 => LeaseState::Pending,
            1 => LeaseState::Running,
            _ => LeaseState::Done,
        };
        lease.attempts = ((s >> 13) % 4) as u32;
    }
    LeaseManifest {
        schema: MANIFEST_SCHEMA,
        workload_digest: format!("{:032x}", seed | 1),
        config_digest: format!("{:032x}", seed.rotate_left(17) | 1),
        workers,
        total_archs: total,
        leases,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `partition_leases` always yields a contiguous cover of `0..total`
    /// with lease sizes differing by at most one.
    #[test]
    fn leases_always_partition_contiguously(total in 0usize..200, count in 0usize..32) {
        let leases = partition_leases(total, count);
        if total == 0 {
            prop_assert!(leases.is_empty());
            return Ok(());
        }
        prop_assert_eq!(leases.len(), count.clamp(1, total));
        let mut cursor = 0usize;
        let mut sizes: Vec<usize> = Vec::new();
        for (i, lease) in leases.iter().enumerate() {
            prop_assert_eq!(lease.id, i);
            prop_assert_eq!(lease.start, cursor);
            prop_assert!(lease.end > lease.start);
            prop_assert_eq!(lease.state, LeaseState::Pending);
            sizes.push(lease.end - lease.start);
            cursor = lease.end;
        }
        prop_assert_eq!(cursor, total);
        let min = sizes.iter().min().unwrap();
        let max = sizes.iter().max().unwrap();
        prop_assert!(max - min <= 1, "sizes {sizes:?} are not near-equal");
    }

    /// A manifest round-trips exactly; truncating the serialized form at
    /// any byte boundary is rejected — never parsed into a different
    /// partition.
    #[test]
    fn truncated_manifests_are_rejected_whole(
        total in 1usize..40,
        workers in 1usize..5,
        seed in 0u64..1_000_000,
    ) {
        let manifest = build_manifest(total, workers, seed);
        let text = manifest.to_json().expect("manifest serializes");
        prop_assert_eq!(
            LeaseManifest::from_json(&text).expect("pristine text parses"),
            manifest.clone()
        );
        for keep in 0..text.len() {
            let err = LeaseManifest::from_json(&text[..keep]);
            prop_assert!(
                err.is_err(),
                "truncation to {keep} bytes parsed as a manifest"
            );
        }
    }

    /// Single bit flips anywhere in a serialized manifest either fail the
    /// digest check or (when they cancel out to the identical document)
    /// reproduce the original — a flipped range can never survive.
    #[test]
    fn bit_flipped_manifests_never_reassign_work(
        total in 1usize..40,
        workers in 1usize..5,
        seed in 0u64..1_000_000,
        bit in 0usize..8,
        stride in 1usize..7,
    ) {
        let manifest = build_manifest(total, workers, seed);
        let text = manifest.to_json().expect("manifest serializes");
        let bytes = text.as_bytes();
        for byte in (0..bytes.len()).step_by(stride) {
            let mut mangled = bytes.to_vec();
            mangled[byte] ^= 1 << bit;
            let Ok(mangled) = String::from_utf8(mangled) else {
                continue; // the flip broke UTF-8; nothing left to parse
            };
            match LeaseManifest::from_json(&mangled) {
                Err(_) => {}
                Ok(parsed) => prop_assert_eq!(
                    &parsed,
                    &manifest,
                    "bit {} of byte {} flipped into a *different* manifest",
                    bit,
                    byte
                ),
            }
        }
    }

    /// Heartbeats round-trip; a torn (truncated) heartbeat file reads as
    /// silence or as the intact original — never as a different beat.
    #[test]
    fn torn_heartbeats_read_as_silence(
        pid in 1u32..100_000,
        lease in 0usize..64,
        seq in 0u64..1_000_000,
        case in 0u64..u64::MAX,
    ) {
        let path = tmp("hb", case);
        let hb = Heartbeat { pid, lease, seq };
        prop_assert!(write_heartbeat(&path, hb));
        prop_assert_eq!(read_heartbeat(&path), Some(hb));
        let pristine = std::fs::read(&path).unwrap();
        for keep in 0..pristine.len() {
            std::fs::write(&path, &pristine[..keep]).unwrap();
            let got = read_heartbeat(&path);
            prop_assert!(
                got.is_none() || got == Some(hb),
                "truncation to {keep} bytes read as a different beat: {got:?}"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    /// Bit flips in a heartbeat's structural bytes (everything except the
    /// numeric payload digits) read as silence. Digits are exempt: the
    /// file is atomically replaced, so a flipped digit models a stale
    /// beat, not a torn one — and staleness is the supervisor's job.
    #[test]
    fn structurally_damaged_heartbeats_read_as_silence(
        pid in 1u32..100_000,
        lease in 0usize..64,
        seq in 0u64..1_000_000,
        bit in 0usize..8,
        case in 0u64..u64::MAX,
    ) {
        let path = tmp("hbflip", case);
        let hb = Heartbeat { pid, lease, seq };
        prop_assert!(write_heartbeat(&path, hb));
        let pristine = std::fs::read(&path).unwrap();
        for byte in 0..pristine.len() {
            if pristine[byte].is_ascii_digit() {
                continue;
            }
            let mut mangled = pristine.clone();
            mangled[byte] ^= 1 << bit;
            if mangled[byte].is_ascii_digit() {
                continue; // the flip forged a digit inside a number
            }
            std::fs::write(&path, &mangled).unwrap();
            let got = read_heartbeat(&path);
            prop_assert!(
                got.is_none(),
                "bit {} of byte {} flipped but still read as {:?}",
                bit,
                byte,
                got
            );
        }
        std::fs::remove_file(&path).ok();
    }

    /// For *arbitrary* restart counts — including the full `u32` range,
    /// far past where `base << restarts` would overflow — the backoff is
    /// monotone non-decreasing, never exceeds the cap once past it, and
    /// never panics. This is the schedule both the swarm supervisor and
    /// the serve executor lean on after a crash.
    #[test]
    fn backoff_is_monotone_capped_and_overflow_safe(
        restarts in any::<u32>(),
        base_ms in 0u64..10_000,
        cap_ms in 0u64..60_000,
    ) {
        let base = Duration::from_millis(base_ms);
        let cap = Duration::from_millis(cap_ms);
        let here = backoff_after(restarts, base, cap);
        prop_assert!(here <= cap, "backoff({restarts}) = {here:?} exceeds the cap");
        if base_ms == 0 {
            prop_assert_eq!(here, Duration::ZERO, "zero base must disable the delay");
        }
        if restarts == 0 {
            prop_assert_eq!(here, Duration::ZERO, "no delay before the first restart");
        }
        // Monotone: one more restart never shrinks the delay. Saturate at
        // u32::MAX so the property also pins the overflow boundary.
        let next = backoff_after(restarts.saturating_add(1), base, cap);
        prop_assert!(
            next >= here,
            "backoff({restarts}) = {here:?} > backoff({}) = {next:?}",
            restarts.saturating_add(1)
        );
        // Deep into the schedule the cap is exact, not just an upper
        // bound: 30 saturated doublings of even 1 ms exceed any cap the
        // generator can draw.
        if base_ms > 0 && restarts >= 32 {
            prop_assert_eq!(here, cap, "the tail of the schedule must sit at the cap");
        }
    }
}

/// The restart backoff schedule is fully deterministic: zero before the
/// first restart, then doubling from the base until the cap, where it
/// stays — including far past the shift-overflow range.
#[test]
fn backoff_schedule_is_deterministic_and_capped() {
    let base = Duration::from_millis(250);
    let cap = Duration::from_secs(5);
    let schedule: Vec<u64> = (0..10)
        .map(|r| backoff_after(r, base, cap).as_millis() as u64)
        .collect();
    assert_eq!(
        schedule,
        [0, 250, 500, 1000, 2000, 4000, 5000, 5000, 5000, 5000]
    );
    assert_eq!(backoff_after(u32::MAX, base, cap), cap, "no shift overflow");
    assert_eq!(
        backoff_after(3, Duration::ZERO, cap),
        Duration::ZERO,
        "a zero base disables the delay entirely"
    );
}

/// The manifest validator rejects hand-built partitions that do not
/// cover `0..total_archs` contiguously, even when the digest is intact.
#[test]
fn gapped_or_overlapping_partitions_are_rejected() {
    let mut manifest = build_manifest(10, 2, 42);
    manifest.leases[1].start += 1; // gap between lease 0 and 1
    let text = manifest.to_json().unwrap();
    assert!(LeaseManifest::from_json(&text).is_err(), "gap accepted");

    let mut manifest = build_manifest(10, 2, 42);
    manifest.leases.pop(); // cover stops short of total_archs
    let text = manifest.to_json().unwrap();
    assert!(
        LeaseManifest::from_json(&text).is_err(),
        "short cover accepted"
    );

    let manifest = LeaseManifest {
        leases: vec![Lease {
            id: 0,
            start: 0,
            end: 0,
            state: LeaseState::Pending,
            attempts: 0,
        }],
        total_archs: 0,
        ..build_manifest(1, 1, 7)
    };
    let text = manifest.to_json().unwrap();
    assert!(
        LeaseManifest::from_json(&text).is_err(),
        "empty lease accepted"
    );
}
