//! Cross-run analytics integration: the run archive round-trips real
//! session reports (content addressing, dedupe, `gc`), `mce diff`
//! verdicts are invariant to thread count and cache temperature but not
//! to config perturbations, live-status files diff, and bench
//! trajectories render.

use memory_conex::appmodel::benchmarks;
use memory_conex::diff::{self, DiffKind};
use memory_conex::obs;
use memory_conex::prelude::*;
use memory_conex::RunArchive;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// The recorder is process-global, so every test that installs a sink
/// serializes on this lock.
static RECORDER_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    RECORDER_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mce-cross-run-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir creatable");
    dir
}

/// Runs a fast vocoder session with the given customization and returns
/// the report JSON.
fn run_report(customize: impl FnOnce(ExplorationSession) -> ExplorationSession) -> String {
    let _guard = lock();
    obs::install(Arc::new(obs::NullSink::new()));
    let session = customize(ExplorationSession::new(benchmarks::vocoder()).preset(Preset::Fast));
    let result = session.run().expect("exploration runs");
    obs::uninstall();
    result.report.to_json()
}

#[test]
fn archive_round_trips_dedupes_and_garbage_collects_real_reports() {
    let root = temp_dir("archive");
    let archive = RunArchive::open(&root);

    let first = run_report(|s| s);
    let rerun = run_report(|s| s); // differs only in wall_clock
    let truncated = run_report(|s| s.max_evals(10)); // deterministic perturbation

    let a = archive.add(&first).expect("first add");
    assert!(!a.duplicate);
    let b = archive.add(&rerun).expect("rerun add");
    assert!(b.duplicate, "identical deterministic prefix must dedupe");
    assert_eq!(a.digest, b.digest, "content addressing ignores wall_clock");
    let c = archive.add(&truncated).expect("perturbed add");
    assert!(!c.duplicate);
    assert_ne!(c.digest, a.digest);

    let entries = archive.entries().expect("index parses");
    assert_eq!(entries.len(), 2, "duplicate never lands in the index");
    assert!(entries.iter().all(|e| e.workload == "vocoder"));
    assert!(entries.iter().all(|e| e.preset == "fast"));

    // Prefix lookup returns the stored report verbatim.
    let (digest, text) = archive.show(&a.digest[..8]).expect("prefix resolves");
    assert_eq!(digest, a.digest);
    assert_eq!(text, first, "archived object is the full original report");

    // gc keeps the newest entry and removes the orphaned object.
    let stats = archive.gc(Some(1)).expect("gc runs");
    assert_eq!(stats.entries_removed, 1);
    assert_eq!(stats.objects_removed, 1);
    let entries = archive.entries().expect("rewritten index parses");
    assert_eq!(entries.len(), 1);
    assert_eq!(entries[0].digest, c.digest, "newest entry survives gc");
    assert!(archive.show(&c.digest).is_ok());
    assert!(archive.show(&a.digest).is_err(), "collected run is gone");

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn diff_is_invariant_to_threads_and_cache_temperature_but_not_config() {
    // Thread count lives in wall_clock; deterministic sections must
    // byte-compare.
    let serial = run_report(|s| s.threads(1));
    let parallel = run_report(|s| s.threads(4));
    let outcome = diff::diff_texts("serial", &serial, "parallel", &parallel).expect("diff runs");
    assert_eq!(outcome.kind, DiffKind::Report);
    assert!(
        outcome.identical,
        "thread count must not change deterministic sections:\n{}",
        outcome.markdown
    );

    // Cache temperature only moves the masked eval_cache statistics.
    let dir = temp_dir("cache");
    let cache_file = dir.join("evals.cache");
    let cold = run_report(|s| s.eval_cache_file(&cache_file));
    let hot = run_report(|s| s.eval_cache_file(&cache_file));
    assert_ne!(
        cold, hot,
        "a warm cache must actually change the raw report (hits move)"
    );
    let outcome = diff::diff_texts("cold", &cold, "hot", &hot).expect("diff runs");
    assert!(
        outcome.identical,
        "cache temperature must not change the diff verdict:\n{}",
        outcome.markdown
    );
    let _ = std::fs::remove_dir_all(&dir);

    // A real config perturbation produces a structured, non-identical
    // delta.
    let base = run_report(|s| s);
    let truncated = run_report(|s| s.max_evals(10));
    let outcome = diff::diff_texts("base", &base, "truncated", &truncated).expect("diff runs");
    assert!(!outcome.identical, "an eval budget must change the verdict");
    assert!(outcome.markdown.contains("Deterministic sections differ"));
    assert!(
        outcome.markdown.contains("conex."),
        "the delta names the counters that moved:\n{}",
        outcome.markdown
    );
}

#[test]
fn live_status_files_diff_like_reports() {
    let dir = temp_dir("live");
    let live_a = dir.join("a.live.json");
    let live_b = dir.join("b.live.json");
    let live_c = dir.join("c.live.json");
    let _ = run_report(|s| s.live_status_file(&live_a));
    let _ = run_report(|s| s.live_status_file(&live_b));
    let _ = run_report(|s| s.live_status_file(&live_c).max_evals(10));

    let a = std::fs::read_to_string(&live_a).expect("live file a");
    let b = std::fs::read_to_string(&live_b).expect("live file b");
    let c = std::fs::read_to_string(&live_c).expect("live file c");

    let outcome = diff::diff_texts("a", &a, "b", &b).expect("live diff runs");
    assert_eq!(outcome.kind, DiffKind::Live);
    assert!(
        outcome.identical,
        "final snapshots of identical runs compare equal:\n{}",
        outcome.markdown
    );

    let outcome = diff::diff_texts("a", &a, "c", &c).expect("live diff runs");
    assert!(!outcome.identical, "a bounded run's snapshot differs");

    // Mixing a live file with a run report is an input error, not a
    // bogus verdict.
    let report = run_report(|s| s);
    assert!(diff::diff_texts("live", &a, "report", &report).is_err());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recorded_bench_trajectory_renders_a_series() {
    let lines = "{\"per_access_dispatch_ns\": 2572000, \"block_replay_ns\": 2100000}\n\
                 {\"per_access_dispatch_ns\": 2580000, \"block_replay_ns\": 2058000}\n";
    let md = diff::render_bench_trajectory(lines).expect("trajectory renders");
    assert!(md.contains("per_access_dispatch_ns"));
    assert!(md.contains("block_replay_ns"));
    assert!(md.contains('%'), "change column is a percentage:\n{md}");
    assert!(
        diff::render_bench_trajectory("").is_err(),
        "an empty trajectory is an input error"
    );
}
