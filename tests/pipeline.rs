//! End-to-end integration tests: the full MemorEx pipeline (APEX → ConEx)
//! on all three paper benchmarks, checking the structural invariants every
//! stage must uphold.

use memory_conex::appmodel::benchmarks;
use memory_conex::conex::MemorEx;
use memory_conex::prelude::*;

fn run(workload: &Workload) -> memory_conex::conex::MemorExResult {
    MemorEx::preset(Preset::Fast)
        .run(workload)
        .expect("exploration runs")
}

#[test]
fn pipeline_produces_designs_for_every_benchmark() {
    for w in benchmarks::all() {
        let r = run(&w);
        assert!(
            !r.apex.selected().is_empty(),
            "{}: APEX selected nothing",
            w.name()
        );
        assert!(
            !r.conex.simulated().is_empty(),
            "{}: ConEx simulated nothing",
            w.name()
        );
        assert!(
            !r.conex.pareto_cost_latency().is_empty(),
            "{}: empty pareto",
            w.name()
        );
    }
}

#[test]
fn every_simulated_design_is_valid_and_measured() {
    let w = benchmarks::vocoder();
    let r = run(&w);
    for p in r.conex.simulated() {
        assert!(!p.estimated, "phase II must fully simulate");
        assert!(p.system.mem().validate(&w).is_ok());
        assert!(p.system.conn().validate().is_ok());
        assert_eq!(p.metrics.cost_gates, p.system.gate_cost());
        assert!(p.metrics.latency_cycles > 0.0);
        assert!(p.metrics.energy_nj > 0.0);
    }
}

#[test]
fn pareto_fronts_are_consistent_subsets() {
    let w = benchmarks::li();
    let r = run(&w);
    let simulated = r.conex.simulated();
    for front in [
        r.conex.pareto_cost_latency(),
        r.conex.pareto_latency_energy(),
        r.conex.pareto_cost_energy(),
        r.conex.pareto_3d(),
    ] {
        assert!(!front.is_empty());
        for p in &front {
            assert!(
                simulated.iter().any(|s| s.metrics == p.metrics),
                "front point missing from simulated set"
            );
        }
    }
    // Every 2-D cost/latency front member is also 3-D nondominated.
    let d3 = r.conex.pareto_3d();
    for p in r.conex.pareto_cost_latency() {
        assert!(
            d3.iter().any(|q| q.metrics == p.metrics),
            "2-D pareto point must be on the 3-D front"
        );
    }
}

#[test]
fn pattern_specific_modules_appear_for_pointer_workloads() {
    // compress and li are pointer-dominated: the winning designs should use
    // the self-indirect DMA somewhere on the pareto.
    for w in [benchmarks::compress(), benchmarks::li()] {
        let r = run(&w);
        let any_dma = r
            .conex
            .pareto_cost_latency()
            .iter()
            .any(|p| p.describe().contains("DMA"));
        assert!(any_dma, "{}: no DMA on the pareto front", w.name());
    }
}

#[test]
fn connectivity_exploration_improves_on_shared_bus_baseline() {
    // The paper's headline: exploring connectivity beats the naive
    // "one shared system bus" model APEX assumes.
    let w = benchmarks::compress();
    let r = run(&w);
    let trace = 15_000;
    let baseline = r
        .apex
        .selected()
        .into_iter()
        .map(|mem| {
            let sys = SystemConfig::with_shared_bus(&w, mem).expect("valid");
            memory_conex::sim::simulate(&sys, &w, trace).avg_latency_cycles
        })
        .fold(f64::INFINITY, f64::min);
    let best = r
        .conex
        .simulated()
        .iter()
        .map(|p| p.metrics.latency_cycles)
        .fold(f64::INFINITY, f64::min);
    assert!(
        best < baseline,
        "explored best {best} should beat shared-bus baseline {baseline}"
    );
}

#[test]
fn energy_stays_within_small_factor_while_latency_spreads() {
    // Table 1's shape: latency varies by ~an order of magnitude across the
    // selected designs, energy by far less.
    let w = benchmarks::compress();
    let r = run(&w);
    let pareto = r.conex.pareto_cost_latency();
    let lat: Vec<f64> = pareto.iter().map(|p| p.metrics.latency_cycles).collect();
    let nrg: Vec<f64> = pareto.iter().map(|p| p.metrics.energy_nj).collect();
    let spread = |v: &[f64]| {
        let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        hi / lo
    };
    assert!(spread(&lat) > 3.0, "latency spread {:.2}", spread(&lat));
    assert!(spread(&nrg) < 2.0, "energy spread {:.2}", spread(&nrg));
}

#[test]
fn costs_decompose_into_memory_plus_connectivity() {
    let w = benchmarks::vocoder();
    let r = run(&w);
    for p in r.conex.simulated() {
        let mem = p.system.mem().gate_cost();
        let conn = p.system.conn().gate_cost();
        assert_eq!(p.metrics.cost_gates, mem + conn);
        assert!(conn > 0, "connectivity is never free");
    }
}
