//! Property tests for the serve job journal (`jobs.jsonl`): a
//! digest-framed write-ahead log. Replay must treat any damage —
//! truncation at every byte boundary, single bit flips — with
//! tail-drop semantics: the surviving events are always an exact
//! prefix of what was journaled, damaged records and everything after
//! them are dropped, and corruption never mis-parses into a different
//! job spec or lifecycle event, and never errors the daemon out.

use memory_conex::appmodel::benchmarks;
use memory_conex::serve::journal::fold;
use memory_conex::serve::{replay, JobEvent, JobJournal, JobSpec};
use proptest::prelude::*;
use std::path::PathBuf;

fn tmp(name: &str, case: u64) -> PathBuf {
    std::env::temp_dir().join(format!("mce_svprops_{}_{case}_{name}", std::process::id()))
}

fn spec(seed: u64) -> JobSpec {
    JobSpec {
        workload: benchmarks::vocoder(),
        preset: "fast".to_owned(),
        threads: (seed % 3) as usize,
        max_evals: seed % 1000,
        max_archs: (seed % 50) as usize,
        deadline_ms: seed % 10_000,
        retry_budget: (seed % 4) as u32,
    }
}

/// A plausible journal drawn from `seed`: each job runs one of several
/// complete lifecycles (clean finish, deadline-retry into timeout,
/// crash recovery, cancel, terminal failure).
fn build_events(jobs: u64, seed: u64) -> Vec<JobEvent> {
    let mut events = Vec::new();
    let mut s = seed;
    for id in 1..=jobs {
        events.push(JobEvent::Submitted { id, spec: spec(s) });
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let pid = 100 + id as u32;
        match (s >> 33) % 5 {
            0 => {
                events.push(JobEvent::Started {
                    id,
                    attempt: 1,
                    pid,
                });
                events.push(JobEvent::Done { id });
            }
            1 => {
                events.push(JobEvent::Started {
                    id,
                    attempt: 1,
                    pid,
                });
                events.push(JobEvent::Retrying {
                    id,
                    reason: "deadline exceeded".to_owned(),
                });
                events.push(JobEvent::Started {
                    id,
                    attempt: 2,
                    pid,
                });
                events.push(JobEvent::TimedOut { id });
            }
            2 => {
                events.push(JobEvent::Started {
                    id,
                    attempt: 1,
                    pid,
                });
                events.push(JobEvent::Requeued { id });
            }
            3 => events.push(JobEvent::Canceled { id }),
            _ => {
                events.push(JobEvent::Started {
                    id,
                    attempt: 1,
                    pid,
                });
                events.push(JobEvent::Failed {
                    id,
                    error: "simulator error".to_owned(),
                });
            }
        }
    }
    events
}

/// Appends `events` through the real fsyncing journal handle and
/// returns the on-disk text.
fn journal_text(path: &PathBuf, events: &[JobEvent]) -> String {
    let journal = JobJournal::open(path).expect("journal opens");
    for event in events {
        journal.append(event).expect("append succeeds");
    }
    std::fs::read_to_string(path).expect("journal reads back")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Truncating the journal at *any* byte boundary replays to an exact
    /// prefix of the journaled events — never an error, never a mangled
    /// record — and the folded job table is the fold of that prefix.
    #[test]
    fn truncated_journals_replay_to_an_exact_prefix(
        jobs in 1u64..3,
        seed in 0u64..1_000_000,
        case in 0u64..u64::MAX,
    ) {
        let path = tmp("trunc", case);
        let events = build_events(jobs, seed);
        let text = journal_text(&path, &events);
        let (replayed, dropped) = replay(&path).expect("pristine journal replays");
        prop_assert_eq!(&replayed, &events);
        prop_assert_eq!(dropped, 0);
        for keep in 0..text.len() {
            std::fs::write(&path, &text.as_bytes()[..keep]).unwrap();
            let (replayed, _dropped) = replay(&path)
                .expect("truncation must tail-drop, not error the daemon out");
            prop_assert!(
                replayed.len() <= events.len(),
                "truncation to {keep} bytes invented events"
            );
            prop_assert_eq!(
                &replayed[..],
                &events[..replayed.len()],
                "truncation to {} bytes is not an exact prefix",
                keep
            );
            // The job table the daemon would rebuild is the fold of the
            // surviving prefix — total even over the damaged journal.
            let _ = fold(&replayed);
        }
        std::fs::remove_file(&path).ok();
    }

    /// A single flipped bit anywhere in the journal either tail-drops
    /// the damaged line (and everything after it) or — when the line
    /// still frames and digests identically, which a one-bit flip cannot
    /// arrange — reproduces the original event. Replayed events are
    /// always an exact prefix; no flip ever re-aims a job at a different
    /// spec or state.
    #[test]
    fn bit_flipped_journals_never_misparse(
        jobs in 1u64..3,
        seed in 0u64..1_000_000,
        bit in 0usize..8,
        stride in 1usize..7,
        case in 0u64..u64::MAX,
    ) {
        let path = tmp("flip", case);
        let events = build_events(jobs, seed);
        let text = journal_text(&path, &events);
        let bytes = text.as_bytes();
        for byte in (0..bytes.len()).step_by(stride) {
            let mut mangled = bytes.to_vec();
            mangled[byte] ^= 1 << bit;
            if String::from_utf8(mangled.clone()).is_err() {
                continue; // the flip broke UTF-8; replay reports an I/O error
            }
            std::fs::write(&path, &mangled).unwrap();
            let (replayed, _dropped) = replay(&path)
                .expect("a bit flip must tail-drop, not error the daemon out");
            prop_assert!(
                replayed.len() <= events.len(),
                "bit {bit} of byte {byte} invented events"
            );
            prop_assert_eq!(
                &replayed[..],
                &events[..replayed.len()],
                "bit {} of byte {} flipped into *different* events",
                bit,
                byte
            );
        }
        std::fs::remove_file(&path).ok();
    }
}
