//! Robustness: the full pipeline holds its invariants on *random* (but
//! structurally valid) workloads, not just the curated benchmark models.

use memory_conex::apex::{classify, generate_candidates, CandidateConfig};
use memory_conex::appmodel::benchmarks::random_workload;
use memory_conex::conex::{cluster_levels, Brg, ClusterOrder, ConexConfig, ConexExplorer};
use memory_conex::prelude::*;
use memory_conex::sim::simulate;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_workloads_generate_and_trace(seed in 0u64..5_000) {
        let w = random_workload(seed);
        prop_assert!(w.len() >= 2);
        let layout = w.layout();
        for acc in w.trace(300) {
            prop_assert!(layout[acc.ds.index()].contains(acc.addr));
        }
    }

    #[test]
    fn apex_candidates_always_validate_on_random_workloads(seed in 0u64..2_000) {
        let w = random_workload(seed);
        let reports = classify(&w, 4_000);
        let cfg = CandidateConfig {
            baseline_cache_kib: vec![1, 4],
            augmented_cache_kib: vec![2],
            max_augmentations: 3,
            two_level_kib: Vec::new(),
        };
        let candidates = generate_candidates(&w, &reports, &cfg);
        prop_assert!(!candidates.is_empty());
        for c in &candidates {
            prop_assert!(c.validate(&w).is_ok(), "{}: {}", w.name(), c.name());
        }
    }

    #[test]
    fn brg_partitions_and_clusterings_hold(seed in 0u64..2_000) {
        let w = random_workload(seed);
        let mem = MemoryArchitecture::cache_only(
            &w,
            memory_conex::memlib::CacheConfig::kilobytes(4),
        );
        let brg = Brg::profile(&w, &mem, 4_000);
        prop_assert!(brg.total_bytes() > 0);
        for level in cluster_levels(&brg, ClusterOrder::LowestFirst) {
            let mut seen: Vec<usize> =
                level.clusters.iter().flat_map(|c| c.arcs.clone()).collect();
            seen.sort_unstable();
            let expect: Vec<usize> = (0..brg.arcs().len()).collect();
            prop_assert_eq!(seen, expect);
        }
    }

    #[test]
    fn simulation_invariants_on_random_workloads(seed in 0u64..2_000) {
        let w = random_workload(seed);
        let mem = MemoryArchitecture::cache_only(
            &w,
            memory_conex::memlib::CacheConfig::kilobytes(2),
        );
        let sys = SystemConfig::with_shared_bus(&w, mem).expect("valid system");
        let n = 3_000;
        let s = simulate(&sys, &w, n);
        prop_assert_eq!(s.accesses, n as u64);
        prop_assert!(s.on_chip_hits <= s.accesses);
        prop_assert!(s.avg_latency_cycles >= 1.0);
        prop_assert!(s.avg_energy_nj > 0.0);
        prop_assert!((0.0..=1.0).contains(&s.miss_ratio()));
        prop_assert_eq!(
            s.modules.iter().map(|m| m.accesses).sum::<u64>(),
            s.accesses
        );
    }
}

#[test]
fn conex_explores_a_random_workload_end_to_end() {
    // One full exploration on a random workload (not proptest-looped — it
    // is the expensive path).
    let w = random_workload(42);
    let apex = ApexExplorer::new(ApexConfig::preset(Preset::Fast)).explore(&w);
    let mut cfg = ConexConfig::preset(Preset::Fast);
    cfg.trace_len = 6_000;
    cfg.max_allocations_per_level = 16;
    let result = ConexExplorer::new(cfg)
        .explore(&w, apex.selected())
        .unwrap();
    assert!(!result.simulated().is_empty());
    let front = result.pareto_cost_latency();
    assert!(!front.is_empty());
    for a in &front {
        for b in &front {
            assert!(
                !(a.metrics.cost_gates < b.metrics.cost_gates
                    && a.metrics.latency_cycles < b.metrics.latency_cycles)
            );
        }
    }
}
