//! The job service end to end, against the real `mce` binary: a
//! submitted job must produce the same report a plain `mce explore`
//! does (`mce diff` exit 0), a daemon SIGKILLed mid-exploration must
//! finish the job from its checkpoint after a restart, a SIGTERM must
//! drain gracefully (exit 0, running job requeued uncharged), deadline
//! timeouts must retry on the backoff schedule, and hostile HTTP input
//! must get typed errors without hurting the daemon. The binary is
//! built with the `fault-injection` feature through the package's
//! self-dev-dependency, so `MCE_FAULT` is live in the daemon.

use memory_conex::serve;
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mce_serve_{}_{name}", std::process::id()))
}

fn show(out: &Output) -> String {
    format!(
        "status {:?}\n--- stdout ---\n{}--- stderr ---\n{}",
        out.status,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    )
}

/// The serial baseline: `mce explore` with the same preset, no faults.
fn serial_report(bin: &str, dir: &Path) -> PathBuf {
    let report = dir.join("serial.json");
    let out = Command::new(bin)
        .args(["explore", "vocoder", "--preset", "fast", "--report-out"])
        .arg(&report)
        .arg("--out-dir")
        .arg(dir.join("experiments"))
        .env_remove("MCE_FAULT")
        .output()
        .expect("spawning the mce binary");
    assert!(out.status.success(), "serial run failed: {}", show(&out));
    report
}

/// Asserts the two reports are diff-clean: `mce diff` exits 0, meaning
/// every deterministic section is identical and only effort/wall-clock
/// context differs.
fn assert_diff_clean(bin: &str, a: &Path, b: &Path, what: &str) {
    let out = Command::new(bin)
        .arg("diff")
        .arg(a)
        .arg(b)
        .env_remove("MCE_FAULT")
        .output()
        .expect("spawning the mce binary");
    assert!(
        out.status.success(),
        "{what}: reports differ:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

/// One real daemon process over a test-private serve directory. Killed
/// on drop so a failing assertion never leaks a daemon.
struct Daemon {
    child: Child,
    dir: PathBuf,
}

impl Daemon {
    /// Spawns `mce serve` (optionally with a fault armed) and blocks
    /// until `/healthz` answers with *this* child's pid — which also
    /// proves a restart is not being confused with its predecessor.
    fn start(bin: &str, dir: &Path, fault: Option<&str>) -> Daemon {
        let mut cmd = Command::new(bin);
        cmd.args(["serve", "--dir"])
            .arg(dir.join("serve"))
            .arg("--archive")
            .arg(dir.join("archive"))
            .args(["--backoff-base", "50", "--backoff-cap", "200"])
            .stdout(Stdio::null())
            .stderr(Stdio::null());
        match fault {
            Some(spec) => {
                cmd.env("MCE_FAULT", spec);
            }
            None => {
                cmd.env_remove("MCE_FAULT");
            }
        }
        let child = cmd.spawn().expect("daemon spawns");
        let daemon = Daemon {
            child,
            dir: dir.to_path_buf(),
        };
        daemon.wait_ready();
        daemon
    }

    fn serve_dir(&self) -> PathBuf {
        self.dir.join("serve")
    }

    fn addr(&self) -> String {
        std::fs::read_to_string(serve::addr_path(&self.serve_dir()))
            .expect("serve.addr exists")
            .trim()
            .to_owned()
    }

    fn wait_ready(&self) -> String {
        let deadline = Instant::now() + Duration::from_secs(30);
        let want = format!("\"pid\":{}", self.child.id());
        loop {
            if let Ok(addr) = std::fs::read_to_string(serve::addr_path(&self.serve_dir())) {
                let addr = addr.trim();
                if !addr.is_empty() {
                    if let Some(resp) = raw_exchange(addr, b"GET /healthz HTTP/1.1\r\n\r\n") {
                        if resp.contains(" 200 ") && resp.contains(&want) {
                            return addr.to_owned();
                        }
                    }
                }
            }
            assert!(
                Instant::now() < deadline,
                "daemon (pid {}) never became ready in {}",
                self.child.id(),
                self.serve_dir().display()
            );
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    /// Blocks until the process exits on its own (a self-inflicted fault
    /// or a drain), returning its exit code if any.
    fn wait_exit(&mut self, timeout: Duration) -> Option<i32> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(status) = self.child.try_wait().expect("try_wait works") {
                return status.code();
            }
            assert!(
                Instant::now() < deadline,
                "daemon (pid {}) did not exit within {timeout:?}",
                self.child.id()
            );
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    fn sigterm(&self) {
        let out = Command::new("kill")
            .args(["-TERM", &self.child.id().to_string()])
            .output()
            .expect("kill spawns");
        assert!(out.status.success(), "SIGTERM failed: {}", show(&out));
    }

    fn log(&self) -> String {
        std::fs::read_to_string(serve::log_path(&self.serve_dir())).unwrap_or_default()
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// One raw request/response exchange: write `payload`, read to EOF.
/// `None` when the connection cannot even be opened.
fn raw_exchange(addr: &str, payload: &[u8]) -> Option<String> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .ok()?;
    stream.write_all(payload).ok()?;
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).ok();
    Some(String::from_utf8_lossy(&buf).into_owned())
}

/// A client command (`mce submit` / `mce jobs ...`) against `dir`.
fn client_cmd(bin: &str, dir: &Path, args: &[&str]) -> Output {
    Command::new(bin)
        .args(args)
        .arg("--dir")
        .arg(dir.join("serve"))
        .env_remove("MCE_FAULT")
        .output()
        .expect("spawning the mce binary")
}

/// Submits a vocoder/fast job and returns its id.
fn submit(bin: &str, dir: &Path, extra: &[&str]) -> u64 {
    let mut args = vec!["submit", "vocoder", "--preset", "fast"];
    args.extend_from_slice(extra);
    let out = client_cmd(bin, dir, &args);
    assert!(out.status.success(), "submit failed: {}", show(&out));
    String::from_utf8_lossy(&out.stdout)
        .trim()
        .parse()
        .expect("submit prints the job id")
}

/// Polls `jobs show <id>` until its state satisfies `accept`.
fn wait_state(bin: &str, dir: &Path, id: u64, accept: &[&str]) -> String {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let out = client_cmd(bin, dir, &["jobs", "show", &id.to_string()]);
        let body = String::from_utf8_lossy(&out.stdout).into_owned();
        for state in accept {
            if body.contains(&format!("\"state\":\"{state}\"")) {
                return (*state).to_owned();
            }
        }
        assert!(
            Instant::now() < deadline,
            "job {id} never reached {accept:?}; last: {}",
            show(&out)
        );
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// Fetches job `id`'s report into `<dir>/job-result.json` and returns
/// the path.
fn fetch_result(bin: &str, dir: &Path, id: u64) -> PathBuf {
    let path = dir.join(format!("job-{id}-result.json"));
    let out = client_cmd(
        bin,
        dir,
        &[
            "jobs",
            "result",
            &id.to_string(),
            "--out",
            path.to_str().unwrap(),
        ],
    );
    assert!(out.status.success(), "jobs result failed: {}", show(&out));
    path
}

/// A fault-free submit→execute→result round trip reproduces the serial
/// `mce explore` report exactly, and the finished job lands in the run
/// archive.
#[test]
fn submitted_job_completes_and_matches_a_serial_explore() {
    let Some(bin) = option_env!("CARGO_BIN_EXE_mce") else {
        eprintln!("skipping: mce binary path not provided by the harness");
        return;
    };
    let dir = tmp("roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    let serial = serial_report(bin, &dir);
    let daemon = Daemon::start(bin, &dir, None);
    let id = submit(bin, &dir, &["--wait"]);
    assert_eq!(id, 1, "the first job gets id 1");
    let list = client_cmd(bin, &dir, &["jobs", "list"]);
    assert!(
        String::from_utf8_lossy(&list.stdout).contains("\"state\":\"done\""),
        "jobs list must show the job done: {}",
        show(&list)
    );
    let report = fetch_result(bin, &dir, id);
    assert_diff_clean(bin, &serial, &report, "served job");
    let archived = std::fs::read_dir(dir.join("archive"))
        .map(|entries| entries.count())
        .unwrap_or(0);
    assert!(archived > 0, "the finished job must be archived");
    drop(daemon);
    std::fs::remove_dir_all(&dir).ok();
}

/// SIGTERM drains: the daemon stops admitting, requeues the running job
/// at a safe point without charging its retry budget, and exits 0; a
/// restarted daemon finishes the job to a diff-clean report.
#[test]
fn sigterm_drains_and_a_restart_finishes_the_job() {
    let Some(bin) = option_env!("CARGO_BIN_EXE_mce") else {
        eprintln!("skipping: mce binary path not provided by the harness");
        return;
    };
    let dir = tmp("drain");
    std::fs::create_dir_all(&dir).unwrap();
    let serial = serial_report(bin, &dir);
    // stall_job:1 wedges the first pickup on its cancel token: the job is
    // deterministically *running* when the SIGTERM lands, with no timing
    // race against a fast exploration.
    let mut daemon = Daemon::start(bin, &dir, Some("stall_job:1"));
    let id = submit(bin, &dir, &[]);
    wait_state(bin, &dir, id, &["running"]);
    daemon.sigterm();
    let code = daemon.wait_exit(Duration::from_secs(30));
    assert_eq!(code, Some(0), "a drain must exit 0");
    let log = daemon.log();
    assert!(log.contains("drain"), "no drain in the log:\n{log}");
    assert!(
        log.contains("requeued"),
        "the running job must requeue on drain:\n{log}"
    );
    // During the drain the daemon answers clients but admits nothing new
    // — after exit there is no address file at all.
    assert!(
        !serve::addr_path(&daemon.serve_dir()).exists(),
        "a drained daemon must retract serve.addr"
    );
    drop(daemon);

    let daemon = Daemon::start(bin, &dir, None);
    let wait = client_cmd(bin, &dir, &["jobs", "wait", &id.to_string()]);
    assert!(
        wait.status.success(),
        "the requeued job must finish after restart: {}",
        show(&wait)
    );
    let log = daemon.log();
    assert!(
        log.contains("replayed"),
        "the restart must replay the journal:\n{log}"
    );
    let report = fetch_result(bin, &dir, id);
    assert_diff_clean(bin, &serial, &report, "drained-then-resumed job");
    drop(daemon);
    std::fs::remove_dir_all(&dir).ok();
}

/// A daemon SIGKILLed at job pickup — after the `Started` record is
/// journaled but before any work happens — recovers on restart: the
/// journal replay requeues the job uncharged and it runs to a
/// diff-clean finish.
#[test]
fn a_daemon_killed_at_job_pickup_recovers_on_restart() {
    let Some(bin) = option_env!("CARGO_BIN_EXE_mce") else {
        eprintln!("skipping: mce binary path not provided by the harness");
        return;
    };
    let dir = tmp("dieatjob");
    std::fs::create_dir_all(&dir).unwrap();
    let serial = serial_report(bin, &dir);
    let mut daemon = Daemon::start(bin, &dir, Some("die_at_job:1"));
    let id = submit(bin, &dir, &[]);
    // The fault SIGKILLs the daemon at the first pickup: no exit code.
    let code = daemon.wait_exit(Duration::from_secs(30));
    assert_eq!(code, None, "SIGKILL must leave no exit code");
    drop(daemon);

    let daemon = Daemon::start(bin, &dir, None);
    let log = daemon.log();
    assert!(
        log.contains("replayed") && log.contains("recovered mid-run"),
        "the restart must report the mid-run recovery:\n{log}"
    );
    let wait = client_cmd(bin, &dir, &["jobs", "wait", &id.to_string()]);
    assert!(
        wait.status.success(),
        "the recovered job must finish: {}",
        show(&wait)
    );
    let report = fetch_result(bin, &dir, id);
    assert_diff_clean(bin, &serial, &report, "crash-recovered job");
    drop(daemon);
    std::fs::remove_dir_all(&dir).ok();
}

/// The headline crash-tolerance property: a daemon SIGKILLed deep in
/// Phase II resumes the interrupted job *from its checkpoint* after a
/// restart and still produces a report diff-clean against a plain
/// `mce explore`.
#[test]
fn a_daemon_sigkilled_mid_exploration_resumes_from_its_checkpoint() {
    let Some(bin) = option_env!("CARGO_BIN_EXE_mce") else {
        eprintln!("skipping: mce binary path not provided by the harness");
        return;
    };
    let dir = tmp("sigkill");
    std::fs::create_dir_all(&dir).unwrap();
    let serial = serial_report(bin, &dir);
    let mut daemon = Daemon::start(bin, &dir, Some("sigkill_at_eval:18"));
    let id = submit(bin, &dir, &[]);
    let code = daemon.wait_exit(Duration::from_secs(60));
    assert_eq!(code, None, "SIGKILL must leave no exit code");
    // The kill hit between checkpoints: the job's checkpoint file is the
    // resume point the restarted daemon must pick up.
    let ck = serve::job_checkpoint_path(&daemon.serve_dir(), id);
    assert!(ck.exists(), "no checkpoint survived the kill");
    drop(daemon);

    let daemon = Daemon::start(bin, &dir, None);
    let log = daemon.log();
    assert!(
        log.contains("recovered mid-run"),
        "the restart must recover the running job:\n{log}"
    );
    let wait = client_cmd(bin, &dir, &["jobs", "wait", &id.to_string()]);
    assert!(
        wait.status.success(),
        "the job must finish from its checkpoint: {}",
        show(&wait)
    );
    let report = fetch_result(bin, &dir, id);
    assert_diff_clean(bin, &serial, &report, "checkpoint-resumed job");
    drop(daemon);
    std::fs::remove_dir_all(&dir).ok();
}

/// Deadline timeouts retry on the backoff schedule until the budget is
/// spent: one stalled attempt retries into a clean finish; a job whose
/// every attempt stalls parks as `timed-out`.
#[test]
fn deadline_timeouts_retry_then_park_timed_out() {
    let Some(bin) = option_env!("CARGO_BIN_EXE_mce") else {
        eprintln!("skipping: mce binary path not provided by the harness");
        return;
    };
    let dir = tmp("deadline");
    std::fs::create_dir_all(&dir).unwrap();
    // Pickup 1 stalls until its 2 s deadline trips and charges a retry.
    // Later attempts run for real; each deadlined attempt keeps its
    // checkpoint, so progress accumulates and a generous retry budget
    // guarantees a finish without racing the wall clock.
    let daemon = Daemon::start(bin, &dir, Some("stall_job:1"));
    let id = submit(bin, &dir, &["--deadline", "2", "--retries", "5"]);
    let wait = client_cmd(bin, &dir, &["jobs", "wait", &id.to_string()]);
    assert!(
        wait.status.success(),
        "the deadlined job must retry into a finish: {}",
        show(&wait)
    );
    let log = daemon.log();
    assert!(
        log.contains("retrying"),
        "the timeouts must be visible as retries:\n{log}"
    );
    // A second job whose single allowed attempt times out parks terminal:
    // 0.05 s is far below any exploration's runtime.
    let id2 = submit(bin, &dir, &["--deadline", "0.05", "--retries", "0"]);
    let wait = client_cmd(bin, &dir, &["jobs", "wait", &id2.to_string()]);
    assert_eq!(
        wait.status.code(),
        Some(1),
        "a spent retry budget must park the job: {}",
        show(&wait)
    );
    wait_state(bin, &dir, id2, &["timed-out"]);
    drop(daemon);
    std::fs::remove_dir_all(&dir).ok();
}

/// Queued jobs cancel immediately; running jobs stop at their next safe
/// point. Neither cancellation is retried or resurrected by a restart.
#[test]
fn queued_and_running_jobs_can_be_canceled() {
    let Some(bin) = option_env!("CARGO_BIN_EXE_mce") else {
        eprintln!("skipping: mce binary path not provided by the harness");
        return;
    };
    let dir = tmp("cancel");
    std::fs::create_dir_all(&dir).unwrap();
    // The first pickup stalls on its token: job 1 sits running (holding
    // the executor) and job 2 sits queued behind it.
    let daemon = Daemon::start(bin, &dir, Some("stall_job:1"));
    let id1 = submit(bin, &dir, &[]);
    let id2 = submit(bin, &dir, &[]);
    wait_state(bin, &dir, id1, &["running"]);
    wait_state(bin, &dir, id2, &["queued"]);

    let out = client_cmd(bin, &dir, &["jobs", "cancel", &id2.to_string()]);
    assert!(out.status.success(), "queued cancel failed: {}", show(&out));
    wait_state(bin, &dir, id2, &["canceled"]);

    let out = client_cmd(bin, &dir, &["jobs", "cancel", &id1.to_string()]);
    assert!(
        out.status.success(),
        "running cancel failed: {}",
        show(&out)
    );
    wait_state(bin, &dir, id1, &["canceled"]);
    let wait = client_cmd(bin, &dir, &["jobs", "wait", &id1.to_string()]);
    assert_eq!(
        wait.status.code(),
        Some(1),
        "a canceled job is terminal but not done: {}",
        show(&wait)
    );
    drop(daemon);
    std::fs::remove_dir_all(&dir).ok();
}

/// Hostile or malformed HTTP gets a typed error — 400/404/405/408/413/
/// 431 — and the daemon stays healthy through all of it.
#[test]
fn hostile_requests_get_typed_errors_and_the_daemon_survives() {
    let Some(bin) = option_env!("CARGO_BIN_EXE_mce") else {
        eprintln!("skipping: mce binary path not provided by the harness");
        return;
    };
    let dir = tmp("hostile");
    std::fs::create_dir_all(&dir).unwrap();
    let daemon = Daemon::start(bin, &dir, None);
    let addr = daemon.addr();
    let probe = |payload: &[u8], want: &str, what: &str| {
        let resp = raw_exchange(&addr, payload).expect("daemon answers");
        assert!(
            resp.starts_with(&format!("HTTP/1.1 {want} ")),
            "{what}: wanted {want}, got:\n{resp}"
        );
        // The daemon shrugged it off: the very next health probe is 200.
        let health = raw_exchange(&addr, b"GET /healthz HTTP/1.1\r\n\r\n").expect("daemon answers");
        assert!(
            health.contains(" 200 "),
            "{what}: daemon unhealthy afterwards:\n{health}"
        );
    };

    probe(b"NOT EVEN HTTP\r\n\r\n", "400", "garbage request line");
    probe(b"GET /no/such/path HTTP/1.1\r\n\r\n", "404", "unknown path");
    probe(b"PUT /healthz HTTP/1.1\r\n\r\n", "405", "wrong method");
    probe(
        b"POST /jobs HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n",
        "413",
        "oversized body claim",
    );
    probe(
        b"POST /jobs HTTP/1.1\r\nContent-Length: 4\r\n\r\nhuh!",
        "400",
        "non-JSON job spec",
    );
    let huge_head = format!(
        "GET /healthz HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
        "x".repeat(9000)
    );
    probe(huge_head.as_bytes(), "431", "oversized head");
    // Slow-loris: a head that never finishes must hit the read deadline,
    // not hold a daemon thread forever.
    probe(
        b"GET /healthz HTTP/1.1\r\nX-Dribble: s",
        "408",
        "slow-loris",
    );
    drop(daemon);
    std::fs::remove_dir_all(&dir).ok();
}

/// The pidfile is a mutex: a second daemon over the same directory is
/// refused while the first lives, and a stale pidfile left by a SIGKILL
/// is detected and recovered.
#[test]
fn the_pidfile_refuses_a_second_daemon_and_recovers_stale_locks() {
    let Some(bin) = option_env!("CARGO_BIN_EXE_mce") else {
        eprintln!("skipping: mce binary path not provided by the harness");
        return;
    };
    let dir = tmp("pidfile");
    std::fs::create_dir_all(&dir).unwrap();
    let mut daemon = Daemon::start(bin, &dir, None);
    let out = Command::new(bin)
        .args(["serve", "--dir"])
        .arg(dir.join("serve"))
        .env_remove("MCE_FAULT")
        .output()
        .expect("spawning the mce binary");
    assert!(
        !out.status.success(),
        "a second daemon must be refused: {}",
        show(&out)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("already serves"),
        "the refusal must name the live pid: {}",
        show(&out)
    );

    // SIGKILL the daemon: the pidfile stays behind, stale.
    daemon.child.kill().expect("kill works");
    daemon.child.wait().expect("wait works");
    assert!(
        serve::pid_path(&daemon.serve_dir()).exists(),
        "SIGKILL must leave the pidfile behind"
    );
    drop(daemon);
    let daemon = Daemon::start(bin, &dir, None);
    assert!(
        daemon.log().contains("stale"),
        "the stale pidfile recovery must be logged:\n{}",
        daemon.log()
    );
    drop(daemon);
    std::fs::remove_dir_all(&dir).ok();
}
