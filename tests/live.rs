//! Live-telemetry integration: the deterministic logical time-series
//! channel is byte-identical across thread counts and cache state, wall
//! samples stay quarantined inside `wall_clock`, live-status publishing
//! never perturbs results (even when its writes are fault-injected to
//! fail), and the on-disk artifacts — live-status JSON and OpenMetrics
//! text — validate end to end.

use mce_faultinject as fi;
use memory_conex::appmodel::benchmarks;
use memory_conex::live;
use memory_conex::obs;
use memory_conex::obs::json::{self, Value};
use memory_conex::prelude::*;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Armed faults and the observability recorder are process-global; every
/// test here serializes on this lock.
static LIVE_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    LIVE_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mce_live_it_{}_{name}", std::process::id()))
}

/// A session at fast scale.
fn session() -> ExplorationSession {
    ExplorationSession::new(benchmarks::vocoder()).preset(Preset::Fast)
}

/// Runs `session` under a fresh recorder (`install` resets every
/// registry, including the time-series rings) and captures the logical
/// channel alongside the result, before uninstalling.
fn run_traced(
    session: &ExplorationSession,
) -> (SessionResult, Vec<(&'static str, Vec<obs::SeriesPoint>)>) {
    obs::install(Arc::new(obs::NullSink::new()));
    let result = session.run();
    let logical = obs::logical_series();
    obs::uninstall();
    (result.expect("exploration runs"), logical)
}

/// The `wall_clock.timeseries.logical` object of a parsed report.
fn embedded_logical(doc: &Value) -> Value {
    doc.get("wall_clock")
        .and_then(|w| w.get("timeseries"))
        .and_then(|t| t.get("logical"))
        .expect("report embeds wall_clock.timeseries.logical")
        .clone()
}

#[test]
fn logical_series_identical_across_threads_and_cache_state() {
    let _guard = lock();
    fi::disarm();
    obs::uninstall();
    let spill = tmp("logical_spill.json");
    let _ = std::fs::remove_file(&spill);

    let (serial, serial_logical) = run_traced(&session().threads(1));
    let (parallel, parallel_logical) = run_traced(&session().threads(4));
    let (cold, cold_logical) = run_traced(&session().threads(4).eval_cache_file(&spill));

    // The logical channel snapshots per-architecture boundaries, where
    // counters are deterministic: same marks, same values, any schedule.
    assert!(
        !serial_logical.is_empty(),
        "a traced run records logical sampling points"
    );
    assert!(
        serial_logical
            .iter()
            .any(|(name, _)| *name == "conex.candidates_estimated"),
        "funnel counters have logical series: {serial_logical:?}"
    );
    for (name, points) in &serial_logical {
        assert!(
            points.windows(2).all(|w| w[0].at < w[1].at),
            "logical ticks increase strictly for {name}: {points:?}"
        );
    }
    assert_eq!(
        serial_logical, parallel_logical,
        "logical channel must not depend on the thread count"
    );
    assert_eq!(
        serial_logical, cold_logical,
        "logical channel must not depend on cache persistence"
    );

    // The same holds for the serialized form the report embeds, and for
    // the deterministic report prefix around it.
    let (s_json, p_json, c_json) = (
        serial.report.to_json(),
        parallel.report.to_json(),
        cold.report.to_json(),
    );
    assert_eq!(
        RunReport::stable_json_prefix(&s_json),
        RunReport::stable_json_prefix(&p_json)
    );
    assert_eq!(
        RunReport::stable_json_prefix(&s_json),
        RunReport::stable_json_prefix(&c_json)
    );
    let s_doc = json::parse(&s_json).expect("report parses");
    let p_doc = json::parse(&p_json).expect("report parses");
    let c_doc = json::parse(&c_json).expect("report parses");
    assert_eq!(embedded_logical(&s_doc), embedded_logical(&p_doc));
    assert_eq!(embedded_logical(&s_doc), embedded_logical(&c_doc));

    let _ = std::fs::remove_file(&spill);
}

#[test]
fn live_status_publishes_valid_snapshots_without_perturbing_the_report() {
    let _guard = lock();
    fi::disarm();
    obs::uninstall();
    let status = tmp("status.json");
    let metrics = tmp("metrics.txt");
    let _ = std::fs::remove_file(&status);
    let _ = std::fs::remove_file(&metrics);

    let (clean, _) = run_traced(&session().threads(2));
    let (live_run, _) = run_traced(
        &session()
            .threads(2)
            .live_status_file(&status)
            .live_every(Duration::from_millis(10))
            .metrics_out(&metrics),
    );

    // Live monitoring is read-only: the deterministic report prefix is
    // byte-identical with `--live-status` on or off.
    assert_eq!(
        RunReport::stable_json_prefix(&clean.report.to_json()),
        RunReport::stable_json_prefix(&live_run.report.to_json()),
        "live-status publishing must not perturb results"
    );

    // Wall-clock-sampled series are quarantined inside `wall_clock`:
    // present in the full report, absent from the stable prefix.
    let full = live_run.report.to_json();
    let prefix = RunReport::stable_json_prefix(&full);
    assert!(
        !prefix.contains("\"timeseries\""),
        "time series must live inside wall_clock, not the stable prefix"
    );
    let doc = json::parse(&full).expect("report parses");
    assert!(
        doc.get("wall_clock")
            .and_then(|w| w.get("timeseries"))
            .and_then(|t| t.get("wall"))
            .is_some(),
        "the report embeds the wall channel under wall_clock"
    );

    // The final on-disk snapshot is the finished run.
    let text = std::fs::read_to_string(&status).expect("live-status file exists");
    let snap = json::parse(&text).expect("live-status file parses");
    assert_eq!(
        snap.get("live_schema").and_then(Value::as_u64),
        Some(memory_conex::LIVE_SCHEMA)
    );
    assert_eq!(snap.get("status").and_then(Value::as_str), Some("complete"));
    assert_eq!(snap.get("phase").and_then(Value::as_str), Some("done"));
    let done = snap.get("archs_done").and_then(Value::as_u64).unwrap_or(0);
    let total = snap.get("archs_total").and_then(Value::as_u64).unwrap_or(0);
    assert!(done > 0 && done == total, "finished: {done}/{total}");
    assert!(
        snap.get("writes")
            .and_then(|w| w.get("attempted"))
            .and_then(Value::as_u64)
            .is_some_and(|n| n >= 2),
        "initial + per-arch + final publishes all count"
    );
    // Both on-disk artifacts feed the one OpenMetrics exporter.
    live::openmetrics_from_value(&snap).expect("live file exports");
    live::openmetrics_from_value(&doc).expect("report exports");
    let om = std::fs::read_to_string(&metrics).expect("--metrics-out file exists");
    assert!(om.ends_with("# EOF\n"), "OpenMetrics terminator:\n{om}");
    assert!(
        om.contains("mce_conex_simulated_total"),
        "funnel counters exported:\n{om}"
    );

    let _ = std::fs::remove_file(&status);
    let _ = std::fs::remove_file(&metrics);
}

#[test]
fn failed_live_status_writes_never_fail_or_perturb_the_run() {
    let _guard = lock();
    obs::uninstall();
    let status = tmp("failwrite_status.json");
    let _ = std::fs::remove_file(&status);

    fi::disarm();
    let (clean, _) = run_traced(&session());

    // With only --live-status configured, every atomic write in the run
    // is a live-status publish; fail the very first one.
    fi::arm(vec![fi::Fault::FailWrite { nth: 1 }]);
    obs::install(Arc::new(obs::NullSink::new()));
    let result = session().live_status_file(&status).run();
    obs::uninstall();
    fi::disarm();
    let faulted = result.expect("a failed live-status write must not fail the run");

    assert_eq!(
        RunReport::stable_json_prefix(&clean.report.to_json()),
        RunReport::stable_json_prefix(&faulted.report.to_json()),
        "a failed live-status write must not perturb results"
    );
    // Later publishes succeeded, and the failure was tallied, not raised.
    let snap = json::parse(&std::fs::read_to_string(&status).expect("later publishes land"))
        .expect("final snapshot parses");
    assert_eq!(snap.get("status").and_then(Value::as_str), Some("complete"));
    assert!(
        snap.get("writes")
            .and_then(|w| w.get("failed"))
            .and_then(Value::as_u64)
            .is_some_and(|n| n >= 1),
        "the injected write failure shows up in the tally: {snap:?}"
    );

    let _ = std::fs::remove_file(&status);
}
