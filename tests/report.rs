//! Run-report integration: histogram merge determinism across thread
//! counts, byte-stable report JSON across identical runs, rendered
//! summaries, and the bench regression gate against the committed
//! baseline.

use memory_conex::appmodel::benchmarks;
use memory_conex::obs;
use memory_conex::prelude::*;
use memory_conex::report::bench_gate_compare;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// The recorder is process-global, so every test that installs a sink
/// serializes on this lock.
static RECORDER_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    RECORDER_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Runs a fast session with metrics collection enabled (the `--report-out`
/// configuration: a null sink that discards events but keeps the counter,
/// gauge and histogram registries live) and returns the report JSON.
fn report_json() -> String {
    let _guard = lock();
    obs::install(Arc::new(obs::NullSink::new()));
    let result = ExplorationSession::new(benchmarks::vocoder())
        .preset(Preset::Fast)
        .run()
        .expect("exploration runs");
    obs::uninstall();
    result.report.to_json()
}

#[test]
fn histogram_merge_is_thread_count_independent() {
    let _guard = lock();
    // A deterministic value set spanning many buckets, including zero.
    let values: Vec<u64> = (0..10_000u64).map(|i| (i * i + 7) % 4093).collect();

    obs::install(Arc::new(obs::NullSink::new()));
    for &v in &values {
        obs::histogram_record("report_it.merge", v);
    }
    let serial = obs::histogram_summary("report_it.merge").expect("recorded serially");
    obs::uninstall();

    for threads in [2, 4, 7] {
        obs::install(Arc::new(obs::NullSink::new()));
        std::thread::scope(|s| {
            for chunk in values.chunks(values.len() / threads + 1) {
                s.spawn(move || {
                    for &v in chunk {
                        obs::histogram_record("report_it.merge", v);
                    }
                });
            }
        });
        let parallel = obs::histogram_summary("report_it.merge").expect("recorded in parallel");
        obs::uninstall();
        assert_eq!(
            serial, parallel,
            "histogram summary must not depend on recording thread count ({threads} threads)"
        );
    }
}

#[test]
fn run_report_json_is_byte_stable_across_identical_runs() {
    let a = report_json();
    let b = report_json();
    assert_eq!(
        RunReport::stable_json_prefix(&a),
        RunReport::stable_json_prefix(&b),
        "identical runs must produce byte-identical reports up to wall_clock"
    );
    // Only the explicit wall-clock section may differ.
    assert!(a.contains("\"wall_clock\""), "wall_clock section present");
    let doc = obs::json::parse(&a).expect("report is valid JSON");
    assert_eq!(
        doc.get("schema").and_then(obs::json::Value::as_u64),
        Some(REPORT_SCHEMA)
    );
    assert!(doc.get("workload_digest").is_some(), "digest present");
    assert!(doc.get("counters").is_some(), "funnel counters present");
    assert!(doc.get("eval_cache").is_some(), "cache stats present");
    assert!(
        doc.get("frontier_evolution")
            .and_then(obs::json::Value::as_array)
            .is_some_and(|snaps| !snaps.is_empty()),
        "frontier evolution sampled"
    );
    assert!(
        a.contains("conex.simulate.item_us"),
        "per-candidate simulate latency histogram collected"
    );
}

#[test]
fn rendered_summary_contains_key_metrics() {
    let json = report_json();
    let value = obs::json::parse(&json).expect("report parses");
    let md = memory_conex::report::render_markdown(&[("report.json".to_owned(), value)]);
    for needle in [
        "p50",
        "p90",
        "p99",
        "conex.simulate.item_us",
        "hit rate",
        "Frontier evolution",
        "<svg",
    ] {
        assert!(md.contains(needle), "markdown summary missing `{needle}`");
    }
    let html = memory_conex::report::markdown_to_html(&md);
    assert!(html.contains("<table>"), "html renders tables");
    assert!(html.contains("<svg"), "html keeps the inline frontier plot");
}

#[test]
fn bench_gate_accepts_baseline_and_flags_injected_regression() {
    let baseline = obs::json::parse(include_str!("../crates/bench/BENCH_eval.baseline.json"))
        .expect("committed baseline parses");
    // The committed baseline compared against itself is always clean.
    let checks = bench_gate_compare(&baseline, &baseline, 0.2).expect("fields present");
    assert_eq!(checks.len(), 4);
    assert!(checks.iter().all(|c| !c.regressed), "{checks:?}");

    // Inject a 25% block-replay slowdown (and the speedup drop it implies).
    let regressed = obs::json::parse(
        "{\"per_access_dispatch_ns\": 3215000, \"block_replay_ns\": 2625000, \
         \"block_replay_speedup\": 1.225, \
         \"block_replay_cancellable_overhead\": 1.0}",
    )
    .unwrap();
    let checks = bench_gate_compare(&baseline, &regressed, 0.2).expect("fields present");
    assert!(
        checks
            .iter()
            .any(|c| c.field == "block_replay_ns" && c.regressed),
        "a 25% slowdown must trip the 20% gate: {checks:?}"
    );
    // A looser tolerance lets the same measurement through.
    let checks = bench_gate_compare(&baseline, &regressed, 0.3).expect("fields present");
    assert!(checks.iter().all(|c| !c.regressed), "{checks:?}");
}
