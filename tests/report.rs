//! Run-report integration: histogram merge determinism across thread
//! counts, byte-stable report JSON across identical runs, rendered
//! summaries, and the bench regression gate against the committed
//! baseline.

use memory_conex::appmodel::benchmarks;
use memory_conex::obs;
use memory_conex::prelude::*;
use memory_conex::report::{bench_gate_compare, check_report_schema, PROVENANCE_SCHEMA};
use memory_conex::MceError;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// The recorder is process-global, so every test that installs a sink
/// serializes on this lock.
static RECORDER_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    RECORDER_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Runs a fast session with metrics collection enabled (the `--report-out`
/// configuration: a null sink that discards events but keeps the counter,
/// gauge and histogram registries live) and returns the report JSON.
fn report_json() -> String {
    report_json_with(false)
}

/// [`report_json`], optionally with frontier-provenance capture
/// (`mce explore --explain`) enabled.
fn report_json_with(explain: bool) -> String {
    let _guard = lock();
    obs::install(Arc::new(obs::NullSink::new()));
    let result = ExplorationSession::new(benchmarks::vocoder())
        .preset(Preset::Fast)
        .explain(explain)
        .run()
        .expect("exploration runs");
    obs::uninstall();
    result.report.to_json()
}

#[test]
fn histogram_merge_is_thread_count_independent() {
    let _guard = lock();
    // A deterministic value set spanning many buckets, including zero.
    let values: Vec<u64> = (0..10_000u64).map(|i| (i * i + 7) % 4093).collect();

    obs::install(Arc::new(obs::NullSink::new()));
    for &v in &values {
        obs::histogram_record("report_it.merge", v);
    }
    let serial = obs::histogram_summary("report_it.merge").expect("recorded serially");
    obs::uninstall();

    for threads in [2, 4, 7] {
        obs::install(Arc::new(obs::NullSink::new()));
        std::thread::scope(|s| {
            for chunk in values.chunks(values.len() / threads + 1) {
                s.spawn(move || {
                    for &v in chunk {
                        obs::histogram_record("report_it.merge", v);
                    }
                });
            }
        });
        let parallel = obs::histogram_summary("report_it.merge").expect("recorded in parallel");
        obs::uninstall();
        assert_eq!(
            serial, parallel,
            "histogram summary must not depend on recording thread count ({threads} threads)"
        );
    }
}

#[test]
fn run_report_json_is_byte_stable_across_identical_runs() {
    let a = report_json();
    let b = report_json();
    assert_eq!(
        RunReport::stable_json_prefix(&a),
        RunReport::stable_json_prefix(&b),
        "identical runs must produce byte-identical reports up to wall_clock"
    );
    // Only the explicit wall-clock section may differ.
    assert!(a.contains("\"wall_clock\""), "wall_clock section present");
    let doc = obs::json::parse(&a).expect("report is valid JSON");
    assert_eq!(
        doc.get("schema").and_then(obs::json::Value::as_u64),
        Some(REPORT_SCHEMA)
    );
    assert!(doc.get("workload_digest").is_some(), "digest present");
    assert!(doc.get("counters").is_some(), "funnel counters present");
    assert!(doc.get("eval_cache").is_some(), "cache stats present");
    assert!(
        doc.get("frontier_evolution")
            .and_then(obs::json::Value::as_array)
            .is_some_and(|snaps| !snaps.is_empty()),
        "frontier evolution sampled"
    );
    assert!(
        a.contains("conex.simulate.item_us"),
        "per-candidate simulate latency histogram collected"
    );
}

#[test]
fn explain_is_byte_identical_outside_the_provenance_section() {
    let plain = report_json();
    let explained = report_json_with(true);

    assert!(
        RunReport::stable_json_prefix(&explained).contains("\"provenance\""),
        "explained run embeds the provenance section in its deterministic prefix"
    );
    assert!(
        !RunReport::stable_json_prefix(&plain).contains("\"provenance\""),
        "unexplained run carries no provenance section"
    );
    // The provenance determinism contract: masking the section out of the
    // explained report reproduces the plain report byte for byte, up to
    // the nondeterministic wall_clock tail.
    assert_eq!(
        RunReport::stable_json_prefix(&plain),
        RunReport::stable_json_prefix(&RunReport::without_provenance(&explained)),
        "--explain may change nothing outside the provenance section"
    );

    // The section itself is schema-versioned and carries per-point origins.
    let doc = obs::json::parse(&explained).expect("explained report parses");
    let prov = doc.get("provenance").expect("provenance section present");
    assert_eq!(
        prov.get("schema").and_then(obs::json::Value::as_u64),
        Some(PROVENANCE_SCHEMA)
    );
    let archs = prov
        .get("archs")
        .and_then(obs::json::Value::as_array)
        .expect("provenance.archs is an array");
    assert!(!archs.is_empty(), "at least one architecture explained");
    let has_origin = archs.iter().any(|a| {
        a.get("points")
            .and_then(obs::json::Value::as_array)
            .is_some_and(|pts| pts.iter().any(|p| p.get("origin").is_some()))
    });
    assert!(has_origin, "provenance points carry origin tags");
}

#[test]
fn report_schema_fixtures_load_or_fail_with_typed_errors() {
    // Every historical schema version must keep loading; append a fixture
    // here on every REPORT_SCHEMA bump.
    let v1 = obs::json::parse(include_str!("fixtures/report_schema_v1.json"))
        .expect("v1 fixture parses");
    check_report_schema(&v1).expect("schema v1 report loads");

    // A report written by a newer build is refused with the typed error,
    // not silently misread.
    let future = obs::json::parse("{\"schema\": 999}").unwrap();
    match check_report_schema(&future).unwrap_err() {
        MceError::SchemaVersion {
            artifact,
            found,
            supported,
        } => {
            assert_eq!(artifact, "run report");
            assert_eq!(found, "999");
            assert_eq!(supported, REPORT_SCHEMA);
        }
        other => panic!("expected SchemaVersion, got {other:?}"),
    }

    // So is a pre-versioning document with no schema field at all.
    let missing = obs::json::parse("{\"workload\": \"vocoder\"}").unwrap();
    match check_report_schema(&missing).unwrap_err() {
        MceError::SchemaVersion { found, .. } => assert_eq!(found, "none"),
        other => panic!("expected SchemaVersion, got {other:?}"),
    }
}

#[test]
fn rendered_summary_contains_key_metrics() {
    let json = report_json();
    let value = obs::json::parse(&json).expect("report parses");
    let md = memory_conex::report::render_markdown(&[("report.json".to_owned(), value)]);
    for needle in [
        "p50",
        "p90",
        "p99",
        "conex.simulate.item_us",
        "hit rate",
        "Frontier evolution",
        "<svg",
    ] {
        assert!(md.contains(needle), "markdown summary missing `{needle}`");
    }
    let html = memory_conex::report::markdown_to_html(&md);
    assert!(html.contains("<table>"), "html renders tables");
    assert!(html.contains("<svg"), "html keeps the inline frontier plot");
}

#[test]
fn bench_gate_accepts_baseline_and_flags_injected_regression() {
    let baseline = obs::json::parse(include_str!("../crates/bench/BENCH_eval.baseline.json"))
        .expect("committed baseline parses");
    // The committed baseline compared against itself is always clean.
    let checks = bench_gate_compare(&baseline, &baseline, 0.2).expect("fields present");
    assert_eq!(checks.len(), 4);
    assert!(checks.iter().all(|c| !c.regressed), "{checks:?}");

    // Inject a 25% block-replay slowdown (and the speedup drop it implies).
    let regressed = obs::json::parse(
        "{\"per_access_dispatch_ns\": 3215000, \"block_replay_ns\": 2625000, \
         \"block_replay_speedup\": 1.225, \
         \"block_replay_cancellable_overhead\": 1.0}",
    )
    .unwrap();
    let checks = bench_gate_compare(&baseline, &regressed, 0.2).expect("fields present");
    assert!(
        checks
            .iter()
            .any(|c| c.field == "block_replay_ns" && c.regressed),
        "a 25% slowdown must trip the 20% gate: {checks:?}"
    );
    // A looser tolerance lets the same measurement through.
    let checks = bench_gate_compare(&baseline, &regressed, 0.3).expect("fields present");
    assert!(checks.iter().all(|c| !c.regressed), "{checks:?}");
}
