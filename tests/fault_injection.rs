//! Fault-injection integration: every fault the `mce-faultinject`
//! harness can inject — worker panics (one-shot and sticky), a hard
//! process abort mid-run, failed file writes, and on-disk corruption of
//! spill and checkpoint files — must end in either a clean [`MceError`]
//! or a successful degraded/resumed run. Nothing here may panic the
//! caller or silently produce different results.
//!
//! `cargo test` enables the `fault-injection` feature of the whole stack
//! through the package's self-dev-dependency, so the hooks compiled into
//! the engine and `atomic_write` are live in this binary (and in the
//! `mce` binary the subprocess tests spawn).

use mce_faultinject as fi;
use memory_conex::appmodel::benchmarks;
use memory_conex::checkpoint::Checkpoint;
use memory_conex::conex::eval_cache::DEFAULT_CAPACITY;
use memory_conex::conex::{CanonKey, EvalCache, FrontierSnapshot, Metrics};
use memory_conex::obs;
use memory_conex::prelude::*;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, PoisonError};

/// Armed faults and the observability recorder are process-global;
/// every test that touches either serializes here.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mce_fitest_{}_{name}", std::process::id()))
}

#[test]
fn one_shot_worker_panic_degrades_and_recovers() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    fi::disarm();
    obs::uninstall();
    let session = ExplorationSession::new(benchmarks::vocoder())
        .preset(Preset::Fast)
        .threads(4);
    let clean = session.run().expect("clean run succeeds");

    // The 5th candidate evaluation panics once; the serial retry must
    // recover and the results must be bit-identical to the clean run.
    let sink = Arc::new(obs::MemorySink::new());
    obs::install(sink.clone());
    fi::arm(vec![fi::Fault::PanicAtEval {
        nth: 5,
        sticky: false,
    }]);
    let faulted = session.run();
    fi::disarm();
    obs::uninstall();
    let faulted = faulted.expect("a one-shot panic degrades, not fails");

    assert_eq!(clean.apex, faulted.apex);
    assert_eq!(clean.conex.estimated(), faulted.conex.estimated());
    assert_eq!(clean.conex.simulated(), faulted.conex.simulated());
    assert_eq!(clean.cache_stats, faulted.cache_stats);
    // The degradation is visible in the counters, not the results.
    let events = sink.take();
    let final_counter = |name: &str| -> u64 {
        events
            .iter()
            .rev()
            .find_map(|e| match &e.kind {
                obs::EventKind::Counter { name: n, value } if *n == name => Some(*value),
                _ => None,
            })
            .unwrap_or_else(|| panic!("no counter `{name}` recorded"))
    };
    assert_eq!(final_counter("par.panics"), 1);
    assert_eq!(final_counter("par.degraded_regions"), 1);
}

#[test]
fn sticky_worker_panic_is_a_clean_worker_panic_error() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    obs::uninstall();
    fi::arm(vec![fi::Fault::PanicAtEval {
        nth: 1,
        sticky: true,
    }]);
    let result = ExplorationSession::new(benchmarks::vocoder())
        .preset(Preset::Fast)
        .threads(4)
        .run();
    fi::disarm();
    match result.unwrap_err() {
        MceError::WorkerPanic {
            region,
            failed_items,
            first_panic,
        } => {
            assert!(region.starts_with("conex."), "region `{region}`");
            assert!(failed_items >= 1);
            assert!(first_panic.contains("injected panic"), "{first_panic}");
        }
        other => panic!("expected WorkerPanic, got {other}"),
    }
}

#[test]
fn failed_atomic_write_is_clean_and_leaves_the_target_untouched() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let path = tmp("failwrite.txt");
    std::fs::write(&path, b"precious").unwrap();
    fi::arm(vec![fi::Fault::FailWrite { nth: 1 }]);
    let err = mce_error::atomic_write(&path, b"replacement");
    fi::disarm();
    let err = err.unwrap_err();
    assert!(matches!(err, MceError::Io { .. }), "{err}");
    assert!(err.to_string().contains("injected"), "{err}");
    assert_eq!(
        std::fs::read(&path).unwrap(),
        b"precious",
        "a failed write never touches the destination"
    );
    let tmp_sibling = path.with_file_name("failwrite.txt.tmp");
    assert!(!tmp_sibling.exists(), "no temp file left behind");
    std::fs::remove_file(&path).ok();
}

#[test]
fn failed_checkpoint_write_fails_the_run_cleanly() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    obs::uninstall();
    let ck = tmp("ck_failwrite.json");
    std::fs::remove_file(&ck).ok();
    fi::arm(vec![fi::Fault::FailWrite { nth: 1 }]);
    let result = ExplorationSession::new(benchmarks::vocoder())
        .preset(Preset::Fast)
        .checkpoint_file(&ck)
        .run();
    fi::disarm();
    let err = result.unwrap_err();
    assert!(matches!(err, MceError::Io { .. }), "{err}");
    assert!(err.to_string().contains("injected"), "{err}");
    assert!(!ck.exists(), "the failed checkpoint never materializes");
}

/// A small deterministic fixture cache whose spill the corruption sweeps
/// mangle.
fn fixture_cache() -> EvalCache {
    let cache = EvalCache::new();
    for i in 0..8u64 {
        cache.insert(
            CanonKey {
                hi: 0x1000 + i,
                lo: i.wrapping_mul(0x9e37_79b9),
            },
            Metrics {
                cost_gates: 10_000 + 137 * i,
                latency_cycles: 1.25 + i as f64,
                energy_nj: 0.125 * (i + 1) as f64,
            },
        );
    }
    cache
}

#[test]
fn corrupted_spill_files_never_panic_and_never_invent_entries() {
    // Takes the lock because the salvage accounting below reads the
    // process-global counter registry.
    let _guard = FAULT_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    obs::uninstall();
    obs::install(Arc::new(obs::NullSink::new()));
    let path = tmp("spill_corrupt.json");
    let cache = fixture_cache();
    cache.save(&path).unwrap();
    let originals = cache.entries_fifo();
    let pristine = std::fs::read(&path).unwrap();

    let salvage_counter = || {
        obs::counters_snapshot()
            .into_iter()
            .find(|(n, _)| *n == "eval_cache.salvage_dropped")
            .map_or(0, |(_, v)| v)
    };

    // Whatever the damage, loading either fails with a clean error or
    // salvages a subset of the original entries — bit-exact, no more —
    // and the `eval_cache.salvage_dropped` counter advances by exactly
    // the number of corrupt entries dropped.
    let check_load = |what: &str| {
        let counted_before = salvage_counter();
        match EvalCache::load_salvage(&path, DEFAULT_CAPACITY) {
            Err(e) => {
                let _ = e.to_string();
                assert_eq!(
                    salvage_counter(),
                    counted_before,
                    "{what}: a failed load must not count salvaged entries"
                );
            }
            Ok((salvaged, dropped)) => {
                let entries = salvaged.entries_fifo();
                assert!(
                    entries.len() + dropped <= originals.len() + 1,
                    "{what}: salvage grew the cache"
                );
                for (k, m) in &entries {
                    assert!(
                        originals.iter().any(|(ok, om)| ok == k && om == m),
                        "{what}: salvaged an entry that was never saved"
                    );
                }
                assert_eq!(
                    salvage_counter() - counted_before,
                    dropped as u64,
                    "{what}: salvage_dropped must match the corrupt-entry count exactly"
                );
            }
        }
    };

    // A write cut short at every possible byte boundary.
    for keep in 0..pristine.len() {
        std::fs::write(&path, &pristine).unwrap();
        fi::truncate_file(&path, keep).unwrap();
        check_load(&format!("truncated to {keep}"));
    }
    // Single bit flips across the file.
    for byte in (0..pristine.len()).step_by(3) {
        for bit in [0, 3, 7] {
            std::fs::write(&path, &pristine).unwrap();
            fi::flip_bit(&path, byte, bit).unwrap();
            check_load(&format!("bit {bit} of byte {byte} flipped"));
        }
    }
    obs::uninstall();
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupted_checkpoint_files_never_panic_and_never_resume() {
    let path = tmp("ck_corrupt.json");
    let ck = Checkpoint {
        workload_digest: "00112233445566778899aabbccddeeff".to_owned(),
        config_digest: "ffeeddccbbaa99887766554433221100".to_owned(),
        archs_done: 2,
        counters: vec![("conex.estimate_jobs".to_owned(), 321)],
        gauges: vec![("conex.frontier_size_max".to_owned(), 9)],
        cache_stats: CacheStats {
            hits: 4,
            misses: 8,
            inserts: 8,
            evictions: 0,
        },
        frontier: vec![FrontierSnapshot {
            archs_explored: 1,
            estimated: 40,
            frontier_size: 5,
            hypervolume: 0.375,
        }],
        entries: fixture_cache().entries_fifo(),
    };
    ck.save(&path).unwrap();
    assert_eq!(Checkpoint::load(&path).unwrap(), ck, "pristine file loads");
    let pristine = std::fs::read(&path).unwrap();

    // Any damage anywhere — header or body — must surface as a clean
    // error: the digest line covers every body byte.
    for keep in 0..pristine.len() {
        std::fs::write(&path, &pristine[..keep]).unwrap();
        let err = Checkpoint::load(&path).unwrap_err();
        assert!(
            matches!(err, MceError::Checkpoint { .. } | MceError::Io { .. }),
            "truncation to {keep}: {err}"
        );
    }
    for byte in (0..pristine.len()).step_by(2) {
        for bit in [0, 5] {
            std::fs::write(&path, &pristine).unwrap();
            fi::flip_bit(&path, byte, bit).unwrap();
            let err = Checkpoint::load(&path).unwrap_err();
            assert!(
                matches!(err, MceError::Checkpoint { .. } | MceError::Io { .. }),
                "bit {bit} of byte {byte} flipped: {err}"
            );
        }
    }
    std::fs::remove_file(&path).ok();
}

/// The headline end-to-end proof: a run of the real `mce` binary is
/// killed by an injected `abort()` (the in-process stand-in for a
/// `SIGKILL`), then rerun with the same command line. The rerun resumes
/// from the checkpoint and its report is byte-identical to an
/// uninterrupted run's, up to the `wall_clock` section.
#[test]
fn aborted_cli_run_resumes_bit_identically() {
    let Some(bin) = option_env!("CARGO_BIN_EXE_mce") else {
        eprintln!("skipping: mce binary path not provided by the harness");
        return;
    };
    let dir = tmp("cli_resume");
    std::fs::create_dir_all(&dir).unwrap();
    let clean_report = dir.join("clean.json");
    let resumed_report = dir.join("resumed.json");
    let ck = dir.join("ck.json");
    let run = |fault: Option<String>, report: &PathBuf, checkpointed: bool| {
        let mut cmd = std::process::Command::new(bin);
        cmd.args(["explore", "vocoder", "--preset", "fast", "--report-out"])
            .arg(report)
            .args(["--out-dir"])
            .arg(dir.join("experiments"))
            .env_remove("MCE_FAULT");
        if checkpointed {
            cmd.arg("--checkpoint")
                .arg(&ck)
                .args(["--checkpoint-every", "1"]);
        }
        if let Some(spec) = fault {
            cmd.env("MCE_FAULT", spec);
        }
        cmd.output().expect("spawning the mce binary")
    };

    // 1. An uninterrupted run, to learn the eval count and the expected
    //    report bytes.
    let clean = run(None, &clean_report, false);
    assert!(clean.status.success(), "clean run failed: {clean:?}");
    let report_text = std::fs::read_to_string(&clean_report).unwrap();
    let doc = obs::json::parse(&report_text).expect("report is valid JSON");
    let estimate_jobs = doc
        .get("counters")
        .and_then(|c| c.get("conex.estimate_jobs"))
        .and_then(obs::json::Value::as_u64)
        .expect("report counts estimate jobs");

    // 2. Kill the process at the first Phase-II evaluation: Phase I is
    //    complete and checkpointed, the run is not.
    let faulted = run(
        Some(format!("abort_at_eval:{}", estimate_jobs + 1)),
        &resumed_report,
        true,
    );
    assert!(!faulted.status.success(), "the abort must kill the run");
    let stderr = String::from_utf8_lossy(&faulted.stderr);
    assert!(stderr.contains("aborting process"), "{stderr}");
    assert!(ck.exists(), "the killed run left its checkpoint behind");
    assert!(
        !resumed_report.exists(),
        "the killed run never wrote a report"
    );

    // 3. The same command line again, no fault: resume and finish.
    let resumed = run(None, &resumed_report, true);
    assert!(resumed.status.success(), "resume failed: {resumed:?}");
    let stderr = String::from_utf8_lossy(&resumed.stderr);
    assert!(stderr.contains("resuming from checkpoint"), "{stderr}");
    assert!(!ck.exists(), "a finished run consumes its checkpoint");

    // 4. Byte-identical up to the wall-clock section, which also records
    //    how each run executed.
    let resumed_text = std::fs::read_to_string(&resumed_report).unwrap();
    let stable = |s: &str| -> String {
        let cut = s.find("\"wall_clock\"").expect("report has a wall_clock");
        s[..cut].to_owned()
    };
    assert_eq!(
        stable(&report_text),
        stable(&resumed_text),
        "a resumed run must reproduce the uninterrupted report"
    );
    assert!(report_text.contains("\"resumed\": false"));
    assert!(resumed_text.contains("\"resumed\": true"));
    std::fs::remove_dir_all(&dir).ok();
}

/// A malformed `MCE_FAULT` spec is a rejected argument, not a crash or a
/// silently-ignored knob: the binary exits nonzero with the typed
/// `invalid argument` rendering and the usage text.
#[test]
fn malformed_fault_spec_is_a_typed_cli_error() {
    let Some(bin) = option_env!("CARGO_BIN_EXE_mce") else {
        eprintln!("skipping: mce binary path not provided by the harness");
        return;
    };
    for spec in [
        "bogus",
        "abort_at_eval",
        "abort_at_eval:x",
        "panic_at_eval:",
    ] {
        let out = std::process::Command::new(bin)
            .args(["explore", "vocoder", "--preset", "fast"])
            .env("MCE_FAULT", spec)
            .output()
            .expect("spawning the mce binary");
        assert!(
            !out.status.success(),
            "MCE_FAULT={spec} must be rejected, got {:?}",
            out.status
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("invalid argument: MCE_FAULT"),
            "MCE_FAULT={spec}: expected a typed InvalidArg, got: {stderr}"
        );
        assert!(
            stderr.contains("usage:"),
            "MCE_FAULT={spec}: the rejection must carry the usage hint: {stderr}"
        );
    }
}

/// The `cache-check` subcommand end to end: valid, corrupt, repaired.
#[test]
fn cache_check_cli_round_trip() {
    let Some(bin) = option_env!("CARGO_BIN_EXE_mce") else {
        eprintln!("skipping: mce binary path not provided by the harness");
        return;
    };
    let path = tmp("cli_spill.json");
    fixture_cache().save(&path).unwrap();
    let run = |extra: &[&str]| {
        std::process::Command::new(bin)
            .arg("cache-check")
            .arg(&path)
            .args(extra)
            .env_remove("MCE_FAULT")
            .output()
            .expect("spawning the mce binary")
    };
    assert!(run(&[]).status.success(), "pristine spill validates");

    // Flip one bit in the middle of the file: detected, repairable.
    let len = std::fs::metadata(&path).unwrap().len() as usize;
    fi::flip_bit(&path, len / 2, 2).unwrap();
    let bad = run(&[]);
    assert_eq!(
        bad.status.code(),
        Some(1),
        "corruption without --repair must fail with exit 1"
    );
    // The exit-code contract: a repair that dropped entries exits 2, so
    // CI can tell "was clean" (0) from "had to repair" (2).
    let repaired = run(&["--repair"]);
    assert_eq!(
        repaired.status.code(),
        Some(2),
        "repair that dropped entries must exit 2: {}",
        String::from_utf8_lossy(&repaired.stderr)
    );
    let clean = run(&[]);
    assert_eq!(clean.status.code(), Some(0), "repaired spill validates");
    std::fs::remove_file(&path).ok();
}
