//! Energy-aware exploration of the GSM vocoder: a battery-powered codec
//! where every nanojoule per access matters more than the last cycle of
//! latency — the paper's power-constrained scenario.
//!
//! ```sh
//! cargo run --release --example vocoder_power
//! ```

use memory_conex::appmodel::benchmarks;
use memory_conex::conex::MemorEx;
use memory_conex::prelude::*;

fn main() {
    let workload = benchmarks::vocoder();
    let result = MemorEx::preset(Preset::Fast)
        .run(&workload)
        .expect("exploration runs");

    // The unconstrained cost/performance view first.
    println!("Cost/performance pareto for {}:", workload.name());
    for p in result.conex.pareto_cost_latency() {
        println!(
            "  {:>8} gates  {:>6.2} cyc  {:>5.2} nJ  {}",
            p.metrics.cost_gates,
            p.metrics.latency_cycles,
            p.metrics.energy_nj,
            p.describe()
        );
    }

    // Tighten the energy budget step by step and watch the admissible
    // designs shrink: the designer's actual workflow.
    let energies: Vec<f64> = result
        .conex
        .simulated()
        .iter()
        .map(|p| p.metrics.energy_nj)
        .collect();
    let min_e = energies.iter().cloned().fold(f64::INFINITY, f64::min);
    let max_e = energies.iter().cloned().fold(f64::NEG_INFINITY, f64::max);

    for step in [1.0, 0.75, 0.5, 0.25] {
        let budget = min_e + (max_e - min_e) * step;
        let scenario = Scenario::PowerConstrained {
            max_energy_nj: budget,
        };
        let picks = scenario.select(result.conex.simulated());
        println!(
            "\nenergy budget {budget:.2} nJ/access -> {} admissible pareto designs",
            picks.len()
        );
        if let Some(fastest) = picks.iter().min_by(|a, b| {
            a.metrics
                .latency_cycles
                .total_cmp(&b.metrics.latency_cycles)
        }) {
            println!(
                "  fastest admissible: {:>6.2} cyc, {:>8} gates, {:.2} nJ — {}",
                fastest.metrics.latency_cycles,
                fastest.metrics.cost_gates,
                fastest.metrics.energy_nj,
                fastest.describe()
            );
        }
    }
}
