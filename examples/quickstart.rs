//! Quickstart: model an application, explore memory + connectivity, print
//! the pareto designs.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use memory_conex::prelude::*;

fn main() {
    // 1. Model the application: its dominant data structures and access
    //    patterns. (Or use a built-in model: `benchmarks::compress()` etc.)
    let workload = WorkloadBuilder::new("sensor_hub")
        .data_structure(
            DataStructure::new(
                "sample_stream",
                64 * 1024,
                2,
                AccessPattern::Stream { stride: 2 },
            )
            .with_hotness(10.0)
            .with_write_fraction(0.0),
        )
        .data_structure(
            DataStructure::new("event_list", 128 * 1024, 8, AccessPattern::SelfIndirect)
                .with_hotness(6.0),
        )
        .data_structure(
            DataStructure::new(
                "filter_state",
                2 * 1024,
                4,
                AccessPattern::LoopNest {
                    working_set: 512,
                    reuse: 8,
                },
            )
            .with_hotness(8.0),
        )
        .seed(42)
        .build();

    // 2. Stage 1 — APEX: explore memory-module architectures in the
    //    cost/miss-ratio space and select the pareto points.
    let apex = ApexExplorer::new(ApexConfig::fast()).explore(&workload);
    println!(
        "APEX evaluated {} memory architectures; selected:",
        apex.points().len()
    );
    for p in apex.selected_points() {
        println!("  {p}");
    }

    // 3. Stage 2 — ConEx: explore connectivity architectures (busses, MUX
    //    and dedicated links from the AMBA-style IP library) for the
    //    selected memory architectures.
    let conex = ConexExplorer::new(ConexConfig::fast()).explore(&workload, apex.selected());
    println!(
        "\nConEx estimated {} candidates, fully simulated {}.",
        conex.estimated().len(),
        conex.simulated().len()
    );

    // 4. The combined cost/performance pareto: pick your trade-off.
    println!("\nCost/performance pareto designs:");
    for p in conex.pareto_cost_latency() {
        println!(
            "  {:>8} gates  {:>6.2} cyc  {:>5.2} nJ  {}",
            p.metrics.cost_gates,
            p.metrics.latency_cycles,
            p.metrics.energy_nj,
            p.describe()
        );
    }
}
