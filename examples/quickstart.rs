//! Quickstart: model an application, explore memory + connectivity, print
//! the pareto designs.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use memory_conex::prelude::*;

fn main() {
    // 1. Model the application: its dominant data structures and access
    //    patterns. (Or use a built-in model: `benchmarks::compress()` etc.)
    let workload = WorkloadBuilder::new("sensor_hub")
        .data_structure(
            DataStructure::new(
                "sample_stream",
                64 * 1024,
                2,
                AccessPattern::Stream { stride: 2 },
            )
            .with_hotness(10.0)
            .with_write_fraction(0.0),
        )
        .data_structure(
            DataStructure::new("event_list", 128 * 1024, 8, AccessPattern::SelfIndirect)
                .with_hotness(6.0),
        )
        .data_structure(
            DataStructure::new(
                "filter_state",
                2 * 1024,
                4,
                AccessPattern::LoopNest {
                    working_set: 512,
                    reuse: 8,
                },
            )
            .with_hotness(8.0),
        )
        .seed(42)
        .build();

    // 2. Run both stages in one session: APEX explores memory-module
    //    architectures in the cost/miss-ratio space, then ConEx explores
    //    connectivity (busses, MUX and dedicated links from the AMBA-style
    //    IP library) for the selected pareto points. The session compiles
    //    the trace once and memoizes every candidate evaluation; add
    //    `.eval_cache_file("cache.json")` to reuse them across runs.
    let result = ExplorationSession::new(workload)
        .preset(Preset::Fast)
        .run()
        .expect("exploration runs");
    println!(
        "APEX evaluated {} memory architectures; selected:",
        result.apex.points().len()
    );
    for p in result.apex.selected_points() {
        println!("  {p}");
    }
    println!(
        "\nConEx estimated {} candidates, fully simulated {} \
         ({} evaluations answered by the cache).",
        result.conex.estimated().len(),
        result.conex.simulated().len(),
        result.cache_stats.hits
    );

    // 3. The combined cost/performance pareto: pick your trade-off.
    println!("\nCost/performance pareto designs:");
    for p in result.conex.pareto_cost_latency() {
        println!(
            "  {:>8} gates  {:>6.2} cyc  {:>5.2} nJ  {}",
            p.metrics.cost_gates,
            p.metrics.latency_cycles,
            p.metrics.energy_nj,
            p.describe()
        );
    }

    // 4. Every run also assembles a machine-readable report — workload
    //    digest, funnel counters, cache effectiveness, frontier evolution
    //    (`mce explore --report-out` writes the same JSON from the CLI,
    //    rendered by `mce report`).
    println!(
        "\nRun report: digest {}, {} frontier snapshots, explored in {:.2} s.",
        result.report.workload_digest,
        result.report.frontier_evolution.len(),
        result.report.wall_clock.elapsed_s
    );
}
