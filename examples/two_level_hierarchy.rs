//! Multi-level hierarchy extension: an L2 cache between the L1 and DRAM,
//! and what connectivity exploration says about wiring it.
//!
//! ```sh
//! cargo run --release -p memory-conex --example two_level_hierarchy
//! ```

use memory_conex::appmodel::{AccessPattern, DataStructure, WorkloadBuilder};
use memory_conex::conex::{ConexConfig, ConexExplorer};
use memory_conex::memlib::CacheConfig;
use memory_conex::prelude::*;
use memory_conex::sim::simulate;

fn main() {
    // A working set that overflows a small L1 but fits a mid-size L2.
    let workload = WorkloadBuilder::new("edge_inference")
        .data_structure(
            DataStructure::new(
                "weights_tile",
                24 * 1024,
                8,
                AccessPattern::LoopNest {
                    working_set: 24 * 1024,
                    reuse: 6,
                },
            )
            .with_hotness(10.0)
            .with_write_fraction(0.0),
        )
        .data_structure(
            DataStructure::new(
                "activations",
                128 * 1024,
                4,
                AccessPattern::Stream { stride: 4 },
            )
            .with_hotness(3.0)
            .with_write_fraction(0.5),
        )
        .seed(21)
        .build();

    let one_level = MemoryArchitecture::cache_only(&workload, CacheConfig::kilobytes(1));
    let two_level = MemoryArchitecture::builder("l1+l2")
        .module("L1", MemModuleKind::Cache(CacheConfig::kilobytes(1)))
        .module("L2", MemModuleKind::Cache(CacheConfig::kilobytes(32)))
        .map_rest_to(0)
        .backed_by(0, 1)
        .build(&workload)
        .expect("valid two-level architecture");

    let n = 30_000;
    for (label, mem) in [("L1 only", one_level), ("L1 + L2", two_level.clone())] {
        let sys = SystemConfig::with_shared_bus(&workload, mem).expect("valid");
        let stats = simulate(&sys, &workload, n);
        println!(
            "{label:<8} (shared bus): {:>8} gates, {:>6.2} cyc, {:>5.2} nJ, miss {:.3}",
            sys.gate_cost(),
            stats.avg_latency_cycles,
            stats.avg_energy_nj,
            stats.miss_ratio()
        );
    }

    // Let ConEx pick the wiring — including the new L1<->L2 channel.
    println!("\nConEx over the two-level architecture:");
    let mut cfg = ConexConfig::preset(Preset::Fast);
    cfg.trace_len = 10_000;
    let result = ConexExplorer::new(cfg)
        .explore(&workload, vec![two_level])
        .expect("exploration runs");
    for p in result.pareto_cost_latency() {
        println!(
            "  {:>8} gates  {:>6.2} cyc  {:>5.2} nJ  {}",
            p.metrics.cost_gates,
            p.metrics.latency_cycles,
            p.metrics.energy_nj,
            p.system.conn().describe()
        );
    }
    println!(
        "\nnote how the exploration decides whether the L1<->L2 channel deserves\n\
         its own connection or can share a bus with the CPU traffic."
    );
}
