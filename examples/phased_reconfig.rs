//! Per-phase reconfigurable connectivity (extension beyond the paper,
//! following its related work on dynamically reconfigurable communication
//! architectures): a phased JPEG-style workload where each execution phase
//! gets the connectivity that suits it, compared against the best static
//! configuration.
//!
//! ```sh
//! cargo run --release -p memory-conex --example phased_reconfig
//! ```

use memory_conex::appmodel::benchmarks;
use memory_conex::conex::{ConexConfig, ConexExplorer};
use memory_conex::prelude::*;

fn main() {
    let workload = benchmarks::jpeg();
    println!("{workload}");
    println!("phases:");
    for p in workload.phases() {
        println!("  {p}");
    }

    let mem =
        MemoryArchitecture::cache_only(&workload, memory_conex::memlib::CacheConfig::kilobytes(4));
    let explorer = ConexExplorer::new(ConexConfig::preset(Preset::Fast));

    // Unconstrained: the static design can afford the configuration every
    // phase wants, so reconfiguration should only lose the switch penalty.
    let Some(rich) = explorer
        .explore_reconfigurable(&workload, &mem)
        .expect("exploration runs")
    else {
        println!("workload has no phases — nothing to reconfigure");
        return;
    };
    println!("\nunconstrained budget:\n{rich}");
    println!(
        "static best: {} gates — {}",
        rich.static_best.metrics.cost_gates,
        rich.static_best.system.conn().describe()
    );

    // Budget sweep: as the gate budget tightens, the static design must
    // compromise while the reconfigurable fabric keeps specializing.
    println!("\nbudget sweep (static vs reconfigurable latency):");
    let top = rich.static_best.metrics.cost_gates;
    for cut in [0u64, 10_000, 20_000, 40_000, 80_000] {
        let budget = top.saturating_sub(cut);
        match explorer
            .explore_reconfigurable_with_budget(&workload, &mem, budget)
            .expect("exploration runs")
        {
            Some(r) => println!(
                "  ≤{budget:>7} gates: static {:>6.2} cyc vs reconfig {:>6.2} cyc ({:+.1}%)",
                r.static_best.metrics.latency_cycles, r.reconfig_latency_cycles, r.improvement_pct
            ),
            None => println!("  ≤{budget:>7} gates: no feasible design"),
        }
    }
}
