//! Extending the connectivity IP library: add a 64-bit AHB variant and a
//! cheap narrow MUX, then explore a pointer-heavy workload against the
//! extended library. Shows the library- and component-level APIs the
//! exploration is built from.
//!
//! ```sh
//! cargo run --release --example custom_ip_library
//! ```

use memory_conex::appmodel::benchmarks;
use memory_conex::conex::{ConexConfig, ConexExplorer};
use memory_conex::connlib::{ConnComponent, ConnComponentKind, ConnParams, ConnectivityLibrary};
use memory_conex::prelude::*;

fn main() {
    // Start from the default AMBA-style library...
    let mut library = ConnectivityLibrary::amba();

    // ...add a 64-bit AHB (twice the width, pricier controller and wires)...
    let ahb64 = ConnParams {
        width_bytes: 8,
        base_gates: 26_000,
        gates_per_port: 1_400,
        energy_per_transfer_nj: 0.28,
        ..ConnComponentKind::AmbaAhb.params()
    };
    library.add(ConnComponent::with_params(
        ConnComponentKind::AmbaAhb,
        ahb64,
    ));

    // ...and a narrow 8-bit MUX for low-bandwidth sharing.
    let mux8 = ConnParams {
        width_bytes: 1,
        base_gates: 700,
        gates_per_port: 350,
        ..ConnComponentKind::Mux.params()
    };
    library.add(ConnComponent::with_params(ConnComponentKind::Mux, mux8));

    println!("{library}");

    // Explore `li` (pointer-chasing lisp interpreter) against it.
    let workload = benchmarks::li();
    let apex = ApexExplorer::new(ApexConfig::preset(Preset::Fast)).explore(&workload);
    let explorer = ConexExplorer::with_library(ConexConfig::preset(Preset::Fast), library);
    let result = explorer
        .explore(&workload, apex.selected())
        .expect("exploration runs");

    println!("Cost/performance pareto with the extended library:");
    for p in result.pareto_cost_latency() {
        println!(
            "  {:>8} gates  {:>6.2} cyc  {:>5.2} nJ  {}",
            p.metrics.cost_gates,
            p.metrics.latency_cycles,
            p.metrics.energy_nj,
            p.describe()
        );
    }

    // Did any pareto design actually use the custom components?
    let uses_custom = result.pareto_cost_latency().iter().any(|p| {
        p.system.conn().links().iter().any(|l| {
            let c = l.component().params();
            c.width_bytes == 8 || (c.width_bytes == 1 && !c.off_chip)
        })
    });
    println!(
        "\ncustom components on the pareto front: {}",
        if uses_custom {
            "yes"
        } else {
            "no (defaults win here)"
        }
    );
}
