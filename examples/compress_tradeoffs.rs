//! The paper's flagship scenario: joint memory + connectivity exploration
//! of SPEC95 `compress`, with the three constraint-driven selections of
//! Section 5 (power-, cost- and performance-constrained).
//!
//! ```sh
//! cargo run --release --example compress_tradeoffs
//! ```

use memory_conex::appmodel::benchmarks;
use memory_conex::conex::MemorEx;
use memory_conex::prelude::*;

fn main() {
    let workload = benchmarks::compress();
    println!("{workload}");

    let result = MemorEx::preset(Preset::Fast)
        .run(&workload)
        .expect("exploration runs");

    // Figure 6-style analysis: the labelled cost/performance pareto.
    println!("Cost/performance pareto (Figure 6 style):");
    let pareto = result.conex.pareto_cost_latency();
    let best_cache_only = result
        .conex
        .simulated()
        .iter()
        .filter(|p| {
            let mem = p.system.mem();
            mem.on_chip_modules().count() == 1
        })
        .map(|p| p.metrics.latency_cycles)
        .fold(f64::INFINITY, f64::min);
    for (i, p) in pareto.iter().enumerate() {
        let label = (b'a' + (i % 26) as u8) as char;
        let improvement = (best_cache_only - p.metrics.latency_cycles) / best_cache_only * 100.0;
        println!(
            "  {label}: {:>8} gates  {:>6.2} cyc ({improvement:+.0}% vs best cache-only)  {}",
            p.metrics.cost_gates,
            p.metrics.latency_cycles,
            p.describe()
        );
    }

    // The three design-goal scenarios.
    let median_energy = {
        let mut e: Vec<f64> = result
            .conex
            .simulated()
            .iter()
            .map(|p| p.metrics.energy_nj)
            .collect();
        e.sort_by(f64::total_cmp);
        e[e.len() / 2]
    };
    let scenarios = [
        Scenario::PowerConstrained {
            max_energy_nj: median_energy,
        },
        Scenario::CostConstrained {
            max_cost_gates: 400_000,
        },
        Scenario::PerformanceConstrained {
            max_latency_cycles: 12.0,
        },
    ];
    for s in scenarios {
        println!("\n{s}:");
        let picks = s.select(result.conex.simulated());
        if picks.is_empty() {
            println!("  no admissible design — relax the constraint");
        }
        for p in picks.iter().take(5) {
            println!(
                "  {:>8} gates  {:>6.2} cyc  {:>5.2} nJ  {}",
                p.metrics.cost_gates,
                p.metrics.latency_cycles,
                p.metrics.energy_nj,
                p.describe()
            );
        }
    }
}
