//! Table 2 bench: Pruned vs Neighborhood vs Full exploration cost, plus the
//! coverage-report computation itself.

use criterion::{criterion_group, criterion_main, Criterion};
use mce_appmodel::benchmarks;
use mce_conex::{ConexConfig, ConexExplorer, CoverageReport, ExplorationStrategy, Metrics};
use mce_memlib::{CacheConfig, MemoryArchitecture};
use mce_sim::Preset;

fn bench_config(strategy: ExplorationStrategy) -> ConexConfig {
    let mut cfg = ConexConfig::preset(Preset::Fast).with_strategy(strategy);
    cfg.trace_len = 5_000;
    cfg.max_allocations_per_level = 16;
    cfg
}

fn table2_coverage(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_coverage");
    group.sample_size(10);
    let w = benchmarks::vocoder();
    let mem = vec![MemoryArchitecture::cache_only(
        &w,
        CacheConfig::kilobytes(2),
    )];
    for strategy in [
        ExplorationStrategy::Pruned,
        ExplorationStrategy::Neighborhood,
        ExplorationStrategy::Full,
    ] {
        group.bench_function(format!("explore_{strategy}"), |b| {
            let explorer = ConexExplorer::new(bench_config(strategy));
            b.iter(|| explorer.explore(&w, mem.clone()));
        });
    }
    // The coverage-metric computation on a large front.
    let reference: Vec<Metrics> = (0..200)
        .map(|i| Metrics::new(100_000 + i * 1000, 50.0 - i as f64 * 0.2, 9.0))
        .collect();
    let found: Vec<Metrics> = (0..400)
        .map(|i| Metrics::new(100_500 + i * 500, 50.0 - i as f64 * 0.1, 9.0))
        .collect();
    group.bench_function("coverage_report", |b| {
        b.iter(|| CoverageReport::compare(&reference, &found, 0.005));
    });
    group.finish();
}

criterion_group!(benches, table2_coverage);
criterion_main!(benches);
