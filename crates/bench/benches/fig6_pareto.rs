//! Figure 6 bench: pareto-front computation and constraint-scenario
//! selection over a realistic design-point cloud.

use criterion::{criterion_group, criterion_main, Criterion};
use mce_conex::{Axis, Metrics, ParetoFront, Scenario};

/// A deterministic synthetic cloud shaped like a ConEx exploration
/// (cost/latency anti-correlated, energy nearly flat).
fn cloud(n: usize) -> Vec<Metrics> {
    (0..n)
        .map(|i| {
            let x = i as f64;
            let cost = 150_000 + (i as u64 * 7919) % 700_000;
            let latency = 3.0 + 70.0 * ((x * 0.7).sin().abs() + 0.1) / (1.0 + x / 200.0);
            let energy = 9.0 + (x * 1.3).cos();
            Metrics::new(cost, latency, energy)
        })
        .collect()
}

fn fig6_pareto(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_pareto");
    for n in [100usize, 1000, 3000] {
        let points = cloud(n);
        group.bench_function(format!("front_2d_{n}"), |b| {
            b.iter(|| ParetoFront::of(&points, &[Axis::Cost, Axis::Latency]));
        });
        group.bench_function(format!("front_3d_{n}"), |b| {
            b.iter(|| ParetoFront::of(&points, &Axis::ALL));
        });
    }
    group.finish();
}

criterion_group!(benches, fig6_pareto);
criterion_main!(benches);

// Scenario selection is cheap relative to fronts; exercised via the
// `Scenario` tests and here to keep the symbol used.
#[allow(dead_code)]
fn scenario_sanity() {
    let _ = Scenario::PowerConstrained {
        max_energy_nj: 10.0,
    };
}
