//! Evaluation-engine micro-bench: block-compiled trace replay
//! ([`mce_sim::simulate_blocks`]) against per-access generator dispatch
//! ([`mce_sim::simulate`]) on the vocoder workload, plus the
//! cancellation-token-enabled replay variant
//! ([`mce_sim::simulate_blocks_cancellable`] polling a live
//! [`CancelToken`]) so the gate can pin the cooperative-cancellation
//! check's hot-path cost.
//!
//! Besides the criterion groups, the bench writes a `BENCH_eval.json`
//! summary (median wall time per path, the replay speedup, and the
//! cancellation-check overhead ratio) so the comparison can be archived
//! next to the experiment outputs and gated by `mce bench-gate`.

use criterion::{criterion_group, Criterion};
use mce_appmodel::{benchmarks, TraceBlocks};
use mce_budget::CancelToken;
use mce_memlib::{CacheConfig, MemoryArchitecture};
use mce_sim::{simulate, simulate_blocks, simulate_blocks_cancellable, SystemConfig};
use std::time::Instant;

const TRACE_LEN: usize = 30_000;

fn setup() -> (mce_appmodel::Workload, SystemConfig, TraceBlocks) {
    let w = benchmarks::vocoder();
    let mem = MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(8));
    let sys = SystemConfig::with_shared_bus(&w, mem).expect("feasible baseline");
    let blocks = TraceBlocks::compile(&w, TRACE_LEN);
    (w, sys, blocks)
}

fn eval_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("eval_replay");
    group.sample_size(20);
    let (w, sys, blocks) = setup();
    group.bench_function("per_access_dispatch", |b| {
        b.iter(|| simulate(&sys, &w, TRACE_LEN));
    });
    group.bench_function("block_replay", |b| {
        b.iter(|| simulate_blocks(&sys, &w, &blocks, TRACE_LEN));
    });
    group.bench_function("block_replay_cancellable", |b| {
        // An armed (never-tripping) token, so the per-batch check does
        // the same atomic work it does inside a bounded exploration.
        let token = CancelToken::bounded(None, true);
        b.iter(|| {
            simulate_blocks_cancellable(&sys, &w, &blocks, TRACE_LEN, &|| token.is_cancelled())
        });
    });
    group.finish();
}

/// Median wall time of `reps` runs of `f`, in nanoseconds.
fn median_ns(reps: usize, mut f: impl FnMut()) -> u128 {
    let mut times: Vec<u128> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn write_summary() {
    let (w, sys, blocks) = setup();
    let token = CancelToken::bounded(None, true);
    let cancelled = || token.is_cancelled();
    // Warm up each path once, then take medians.
    simulate(&sys, &w, TRACE_LEN);
    simulate_blocks(&sys, &w, &blocks, TRACE_LEN);
    simulate_blocks_cancellable(&sys, &w, &blocks, TRACE_LEN, &cancelled);
    let per_access = median_ns(9, || {
        simulate(&sys, &w, TRACE_LEN);
    });
    let block = median_ns(9, || {
        simulate_blocks(&sys, &w, &blocks, TRACE_LEN);
    });
    let cancellable = median_ns(9, || {
        simulate_blocks_cancellable(&sys, &w, &blocks, TRACE_LEN, &cancelled);
    });
    let speedup = per_access as f64 / block as f64;
    let overhead = cancellable as f64 / block as f64;
    let json = format!(
        "{{\n  \"workload\": \"{}\",\n  \"trace_len\": {TRACE_LEN},\n  \
         \"per_access_dispatch_ns\": {per_access},\n  \"block_replay_ns\": {block},\n  \
         \"block_replay_speedup\": {speedup:.3},\n  \
         \"block_replay_cancellable_ns\": {cancellable},\n  \
         \"block_replay_cancellable_overhead\": {overhead:.3}\n}}\n",
        w.name()
    );
    std::fs::write("BENCH_eval.json", &json).expect("write BENCH_eval.json");
    eprintln!(
        "BENCH_eval.json: per-access {per_access} ns, block replay {block} ns \
         ({speedup:.2}x), cancellable replay {cancellable} ns ({overhead:.3}x)"
    );
}

criterion_group!(benches, eval_replay);

fn main() {
    write_summary();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
