//! Table 1 bench: the end-to-end MemorEx pipeline (APEX + ConEx) per
//! benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use mce_apex::{ApexConfig, CandidateConfig};
use mce_appmodel::benchmarks;
use mce_conex::{ConexConfig, MemorEx};
use mce_sim::Preset;

fn pipeline() -> MemorEx {
    let apex = ApexConfig {
        trace_len: 5_000,
        candidates: CandidateConfig {
            baseline_cache_kib: vec![1, 4],
            augmented_cache_kib: vec![4],
            max_augmentations: 2,
            two_level_kib: Vec::new(),
        },
        max_selected: 3,
    };
    let mut conex = ConexConfig::preset(Preset::Fast);
    conex.trace_len = 5_000;
    conex.max_allocations_per_level = 16;
    MemorEx::new(apex, conex)
}

fn table1_designs(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_designs");
    group.sample_size(10);
    for w in benchmarks::all() {
        group.bench_function(w.name(), |b| {
            let memorex = pipeline();
            b.iter(|| memorex.run(&w));
        });
    }
    group.finish();
}

criterion_group!(benches, table1_designs);
criterion_main!(benches);
