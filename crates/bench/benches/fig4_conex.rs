//! Figure 4 bench: the ConEx connectivity-exploration procedure for one
//! memory architecture, and the full two-phase algorithm.

use criterion::{criterion_group, criterion_main, Criterion};
use mce_appmodel::benchmarks;
use mce_conex::{ConexConfig, ConexExplorer};
use mce_memlib::{CacheConfig, MemoryArchitecture};
use mce_sim::Preset;

fn bench_config() -> ConexConfig {
    let mut cfg = ConexConfig::preset(Preset::Fast);
    cfg.trace_len = 6_000;
    cfg.max_allocations_per_level = 24;
    cfg
}

fn fig4_conex(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_conex");
    group.sample_size(10);
    let w = benchmarks::compress();
    let mem = MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(4));
    let explorer = ConexExplorer::new(bench_config());
    group.bench_function("connectivity_exploration_one_arch", |b| {
        b.iter(|| explorer.connectivity_exploration(&w, &mem));
    });
    group.bench_function("two_phase_explore", |b| {
        b.iter(|| explorer.explore(&w, vec![mem.clone()]));
    });
    group.finish();
}

criterion_group!(benches, fig4_conex);
criterion_main!(benches);
