//! Ablation benches for the design choices called out in DESIGN.md:
//! clustering merge order, time-sampling ratio, and Phase-I pruning width.

use criterion::{criterion_group, criterion_main, Criterion};
use mce_appmodel::benchmarks;
use mce_conex::{cluster_levels, Brg, ClusterOrder, ConexConfig, ConexExplorer};
use mce_memlib::{CacheConfig, MemoryArchitecture};
use mce_sim::{simulate_sampled, Preset, SamplingConfig, SystemConfig};

fn ablation_clustering(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_clustering");
    let w = benchmarks::compress();
    let mem = MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(4));
    let brg = Brg::profile(&w, &mem, 5_000);
    for (name, order) in [
        ("lowest_first", ClusterOrder::LowestFirst),
        ("highest_first", ClusterOrder::HighestFirst),
        ("random", ClusterOrder::Random(7)),
    ] {
        group.bench_function(name, |b| b.iter(|| cluster_levels(&brg, order)));
    }
    group.finish();
}

fn ablation_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_sampling");
    group.sample_size(10);
    let w = benchmarks::compress();
    let mem = MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(4));
    let sys = SystemConfig::with_shared_bus(&w, mem).expect("valid");
    for (name, cfg) in [
        (
            "full_1_0",
            SamplingConfig {
                on_accesses: 500,
                off_ratio: 0,
            },
        ),
        (
            "half_1_1",
            SamplingConfig {
                on_accesses: 500,
                off_ratio: 1,
            },
        ),
        ("paper_1_9", SamplingConfig::paper()),
        (
            "sparse_1_19",
            SamplingConfig {
                on_accesses: 500,
                off_ratio: 19,
            },
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| simulate_sampled(&sys, &w, 20_000, cfg));
        });
    }
    group.finish();
}

fn ablation_bandwidth_headroom(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_bandwidth_headroom");
    group.sample_size(10);
    let w = benchmarks::compress();
    let mem = vec![MemoryArchitecture::cache_only(
        &w,
        CacheConfig::kilobytes(2),
    )];
    for headroom in [0.0f64, 2.0, 8.0] {
        group.bench_function(format!("headroom_{headroom}"), |b| {
            let mut cfg = ConexConfig::preset(Preset::Fast);
            cfg.trace_len = 5_000;
            cfg.max_allocations_per_level = 32;
            cfg.bandwidth_headroom = headroom;
            let explorer = ConexExplorer::new(cfg);
            b.iter(|| explorer.explore(&w, mem.clone()));
        });
    }
    group.finish();
}

fn ablation_pruning(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_pruning");
    group.sample_size(10);
    let w = benchmarks::vocoder();
    let mem = vec![MemoryArchitecture::cache_only(
        &w,
        CacheConfig::kilobytes(2),
    )];
    for keep in [2usize, 8, 24] {
        group.bench_function(format!("local_keep_{keep}"), |b| {
            let mut cfg = ConexConfig::preset(Preset::Fast);
            cfg.trace_len = 5_000;
            cfg.max_allocations_per_level = 16;
            cfg.local_keep = keep;
            let explorer = ConexExplorer::new(cfg);
            b.iter(|| explorer.explore(&w, mem.clone()));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    ablation_clustering,
    ablation_sampling,
    ablation_bandwidth_headroom,
    ablation_pruning
);
criterion_main!(benches);
