//! Figure 3 bench: the APEX memory-modules exploration stage.

use criterion::{criterion_group, criterion_main, Criterion};
use mce_apex::{ApexConfig, ApexExplorer, CandidateConfig};
use mce_appmodel::benchmarks;

fn bench_config() -> ApexConfig {
    ApexConfig {
        trace_len: 6_000,
        candidates: CandidateConfig {
            baseline_cache_kib: vec![1, 4],
            augmented_cache_kib: vec![4],
            max_augmentations: 2,
            two_level_kib: Vec::new(),
        },
        max_selected: 4,
    }
}

fn fig3_apex(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_apex");
    group.sample_size(10);
    for w in [benchmarks::compress(), benchmarks::vocoder()] {
        group.bench_function(w.name(), |b| {
            let explorer = ApexExplorer::new(bench_config());
            b.iter(|| explorer.explore(&w));
        });
    }
    group.finish();
}

criterion_group!(benches, fig3_apex);
criterion_main!(benches);
