//! Regenerates the paper's Table 2 (pareto coverage of Pruned vs
//! Neighborhood vs Full exploration). Pass `--fast` for a reduced-scale
//! run.

use mce_bench::{table2, write_json_artifact, Scale};

fn main() {
    let data = table2(Scale::from_args());
    println!("{}", data.render());
    match write_json_artifact("table2", &data) {
        Ok(path) => println!("artifact: {}", path.display()),
        Err(e) => eprintln!("artifact write failed: {e}"),
    }
}
