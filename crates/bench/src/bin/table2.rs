//! Regenerates the paper's Table 2 (pareto coverage of Pruned vs
//! Neighborhood vs Full exploration). Pass `--fast` for a reduced-scale
//! run.

use mce_bench::{table2, write_json_artifact, Scale};
use mce_obs as obs;

fn main() {
    mce_bench::init_obs();
    let data = table2(Scale::from_args());
    println!("{}", data.render());
    match write_json_artifact("table2", &data) {
        Ok(path) => obs::info(|| format!("artifact: {}", path.display())),
        Err(e) => obs::info(|| format!("artifact write failed: {e}")),
    }
}
