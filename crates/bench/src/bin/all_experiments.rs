//! Runs every experiment (Figures 3, 4, 6 and Tables 1, 2) in sequence and
//! writes all JSON artifacts. Pass `--fast` for a reduced-scale run.

use mce_bench::{fig3, fig4, fig6, table1, table2, write_json_artifact, Scale};
use mce_obs as obs;
use std::time::Instant;

fn main() {
    mce_bench::init_obs();
    let scale = Scale::from_args();
    let t = Instant::now();

    let d3 = fig3(scale);
    println!("{}", d3.render());
    let _ = write_json_artifact("fig3", &d3);

    let d4 = fig4(scale);
    println!("{}", d4.render());
    let _ = write_json_artifact("fig4", &d4);

    let d6 = fig6(scale);
    println!("{}", d6.render());
    let _ = write_json_artifact("fig6", &d6);

    let t1 = table1(scale);
    println!("{}", t1.render());
    let _ = write_json_artifact("table1", &t1);

    let t2 = table2(scale);
    println!("{}", t2.render());
    let _ = write_json_artifact("table2", &t2);

    obs::info(|| format!("all experiments finished in {:?}", t.elapsed()));
}
