//! Regenerates the paper's Figure 6 (labelled cost/performance pareto
//! designs for `compress`). Pass `--fast` for a reduced-scale run.

use mce_bench::{fig6, write_json_artifact, Scale};

fn main() {
    let data = fig6(Scale::from_args());
    println!("{}", data.render());
    match write_json_artifact("fig6", &data) {
        Ok(path) => println!("artifact: {}", path.display()),
        Err(e) => eprintln!("artifact write failed: {e}"),
    }
}
