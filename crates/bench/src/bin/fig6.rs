//! Regenerates the paper's Figure 6 (labelled cost/performance pareto
//! designs for `compress`). Pass `--fast` for a reduced-scale run.

use mce_bench::{fig6, write_json_artifact, Scale};
use mce_obs as obs;

fn main() {
    mce_bench::init_obs();
    let data = fig6(Scale::from_args());
    println!("{}", data.render());
    match write_json_artifact("fig6", &data) {
        Ok(path) => obs::info(|| format!("artifact: {}", path.display())),
        Err(e) => obs::info(|| format!("artifact write failed: {e}")),
    }
}
