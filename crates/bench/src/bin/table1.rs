//! Regenerates the paper's Table 1 (selected cost/performance designs for
//! compress, li and vocoder). Pass `--fast` for a reduced-scale run.

use mce_bench::{table1, write_json_artifact, Scale};
use mce_obs as obs;

fn main() {
    mce_bench::init_obs();
    let data = table1(Scale::from_args());
    println!("{}", data.render());
    match write_json_artifact("table1", &data) {
        Ok(path) => obs::info(|| format!("artifact: {}", path.display())),
        Err(e) => obs::info(|| format!("artifact write failed: {e}")),
    }
}
