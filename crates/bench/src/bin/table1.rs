//! Regenerates the paper's Table 1 (selected cost/performance designs for
//! compress, li and vocoder). Pass `--fast` for a reduced-scale run.

use mce_bench::{table1, write_json_artifact, Scale};

fn main() {
    let data = table1(Scale::from_args());
    println!("{}", data.render());
    match write_json_artifact("table1", &data) {
        Ok(path) => println!("artifact: {}", path.display()),
        Err(e) => eprintln!("artifact write failed: {e}"),
    }
}
