//! Regenerates the paper's Figure 4 (ConEx cost/latency exploration cloud
//! for `compress`). Pass `--fast` for a reduced-scale run.

use mce_bench::{fig4, write_dat_artifact, write_json_artifact, Scale};
use mce_obs as obs;

fn main() {
    mce_bench::init_obs();
    let data = fig4(Scale::from_args());
    println!("{}", data.render());
    match write_json_artifact("fig4", &data) {
        Ok(path) => obs::info(|| format!("artifact: {}", path.display())),
        Err(e) => obs::info(|| format!("artifact write failed: {e}")),
    }
    let rows: Vec<Vec<f64>> = data
        .points
        .iter()
        .map(|p| {
            vec![
                p.cost_gates as f64,
                p.latency_cycles,
                p.energy_nj,
                if p.on_pareto { 1.0 } else { 0.0 },
            ]
        })
        .collect();
    if let Ok(path) = write_dat_artifact(
        "fig4",
        &["cost_gates", "latency_cycles", "energy_nj", "on_pareto"],
        &rows,
    ) {
        obs::info(|| format!("plot data: {}", path.display()));
    }
}
