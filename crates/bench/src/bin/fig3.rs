//! Regenerates the paper's Figure 3 (APEX cost/miss-ratio exploration for
//! `compress`). Pass `--fast` for a reduced-scale run.

use mce_bench::{fig3, write_dat_artifact, write_json_artifact, Scale};
use mce_obs as obs;

fn main() {
    mce_bench::init_obs();
    let data = fig3(Scale::from_args());
    println!("{}", data.render());
    match write_json_artifact("fig3", &data) {
        Ok(path) => obs::info(|| format!("artifact: {}", path.display())),
        Err(e) => obs::info(|| format!("artifact write failed: {e}")),
    }
    let rows: Vec<Vec<f64>> = data
        .points
        .iter()
        .map(|p| vec![p.cost_gates as f64, p.miss_ratio])
        .collect();
    if let Ok(path) = write_dat_artifact("fig3", &["cost_gates", "miss_ratio"], &rows) {
        obs::info(|| format!("plot data: {}", path.display()));
    }
}
