//! Report rendering: aligned text tables and JSON artifacts.

use serde::Serialize;
use std::fs;
use std::path::PathBuf;

/// Renders rows as an aligned text table with a header row.
///
/// ```
/// let t = mce_bench::render_table(
///     &["name", "value"],
///     &[vec!["a".into(), "1".into()], vec!["bb".into(), "22".into()]],
/// );
/// assert!(t.contains("name"));
/// assert!(t.lines().count() >= 4);
/// ```
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: Vec<String>| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
            .trim_end()
            .to_owned()
    };
    let mut out = String::new();
    out.push_str(&line(header.iter().map(|s| s.to_string()).collect()));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&line(row.clone()));
        out.push('\n');
    }
    out
}

/// Writes a JSON artifact for experiment `id` under `target/experiments/`,
/// returning the written path.
///
/// # Errors
///
/// Returns any I/O or serialization error.
pub fn write_json_artifact<T: Serialize>(
    id: &str,
    data: &T,
) -> Result<PathBuf, Box<dyn std::error::Error>> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{id}.json"));
    fs::write(&path, serde_json::to_string_pretty(data)?)?;
    Ok(path)
}

/// Renders a 2-D scatter as ASCII art, `width × height` characters plus
/// axes. Points marked `'*'` are highlighted (e.g. the pareto front) and
/// win over plain `'.'` points sharing a cell. Both axes are linear and
/// auto-scaled to the data range; Y grows upward.
///
/// ```
/// let plot = mce_bench::render_scatter(
///     &[(1.0, 1.0, false), (2.0, 2.0, true), (3.0, 1.5, false)],
///     20,
///     8,
///     "cost",
///     "latency",
/// );
/// assert!(plot.contains('*'));
/// assert!(plot.contains("cost"));
/// ```
pub fn render_scatter(
    points: &[(f64, f64, bool)],
    width: usize,
    height: usize,
    x_label: &str,
    y_label: &str,
) -> String {
    if points.is_empty() || width < 2 || height < 2 {
        return String::from("(no data)\n");
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y, _) in points {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    let x_span = (x_max - x_min).max(f64::EPSILON);
    let y_span = (y_max - y_min).max(f64::EPSILON);
    let mut grid = vec![vec![' '; width]; height];
    for &(x, y, highlight) in points {
        let cx = (((x - x_min) / x_span) * (width - 1) as f64).round() as usize;
        let cy = (((y - y_min) / y_span) * (height - 1) as f64).round() as usize;
        let row = height - 1 - cy; // y grows upward
        let cell = &mut grid[row][cx];
        if highlight {
            *cell = '*';
        } else if *cell != '*' {
            *cell = '.';
        }
    }
    let mut out = format!("{y_label} ({y_min:.2} .. {y_max:.2})\n");
    for row in &grid {
        out.push('|');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!(" {x_label} ({x_min:.0} .. {x_max:.0})\n"));
    out
}

/// Writes a gnuplot-ready whitespace-separated data file for experiment
/// `id` under `target/experiments/`, returning the written path. `columns`
/// become a `#`-prefixed header line.
///
/// # Errors
///
/// Returns any I/O error.
pub fn write_dat_artifact(
    id: &str,
    columns: &[&str],
    rows: &[Vec<f64>],
) -> Result<PathBuf, Box<dyn std::error::Error>> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{id}.dat"));
    let mut body = format!("# {}\n", columns.join(" "));
    for row in rows {
        let line: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
        body.push_str(&line.join(" "));
        body.push('\n');
    }
    fs::write(&path, body)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = render_table(
            &["a", "bbbb"],
            &[
                vec!["xxxx".into(), "y".into()],
                vec!["z".into(), "w".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        // Second column starts at the same offset on every row.
        let col = lines[0].find("bbbb").unwrap();
        assert_eq!(&lines[2][col..col + 1], "y");
        assert_eq!(&lines[3][col..col + 1], "w");
    }

    #[test]
    fn scatter_places_extremes() {
        let plot = render_scatter(&[(0.0, 0.0, false), (10.0, 10.0, true)], 10, 5, "x", "y");
        let lines: Vec<&str> = plot.lines().collect();
        // Highlighted max-y point lands on the top grid row; min on bottom.
        assert!(lines[1].contains('*'), "{plot}");
        assert!(lines[5].contains('.'), "{plot}");
    }

    #[test]
    fn scatter_handles_degenerate_input() {
        assert!(render_scatter(&[], 10, 5, "x", "y").contains("no data"));
        let single = render_scatter(&[(1.0, 1.0, true)], 10, 5, "x", "y");
        assert!(single.contains('*'));
    }

    #[test]
    fn dat_artifact_has_header_and_rows() {
        let p = write_dat_artifact(
            "test_dat",
            &["cost", "latency"],
            &[vec![1.0, 2.5], vec![3.0, 4.5]],
        )
        .unwrap();
        let body = std::fs::read_to_string(p).unwrap();
        assert!(body.starts_with("# cost latency\n"));
        assert_eq!(body.lines().count(), 3);
    }

    #[test]
    fn artifacts_round_trip() {
        #[derive(Serialize)]
        struct D {
            x: u32,
        }
        let p = write_json_artifact("test_artifact", &D { x: 42 }).unwrap();
        let body = std::fs::read_to_string(p).unwrap();
        assert!(body.contains("42"));
    }
}
