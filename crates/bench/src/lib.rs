//! # mce-bench — experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation section:
//!
//! | Artifact | Binary | Data |
//! |---|---|---|
//! | Figure 3 | `fig3` | APEX cost vs miss-ratio scatter + selected architectures (compress) |
//! | Figure 4 | `fig4` | ConEx cost vs average-latency cloud + headline improvement (compress) |
//! | Figure 6 | `fig6` | Labelled cost/perf pareto designs *a..k* with descriptions (compress) |
//! | Table 1 | `table1` | Selected cost/perf designs for compress, li, vocoder |
//! | Table 2 | `table2` | Pruned vs Neighborhood vs Full: time, coverage, average distance |
//!
//! `all_experiments` runs everything and writes JSON artifacts next to the
//! printed tables. Pass `--fast` to any binary for a reduced-scale run.
//!
//! The criterion benches in `benches/` measure the cost of each experiment
//! stage and the ablations called out in `DESIGN.md` (clustering order,
//! sampling ratio, pruning width).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;

pub use experiments::{
    fig3, fig4, fig6, table1, table2, Fig3Data, Fig4Data, Fig6Data, Scale, Table1Data, Table2Data,
};
pub use report::{render_scatter, render_table, write_dat_artifact, write_json_artifact};

/// Wires the experiment binaries into `mce-obs`: installs a stderr
/// [`ProgressReporter`](mce_obs::ProgressReporter) (honouring `MCE_LOG`)
/// so phase messages and progress land on stderr while stdout stays
/// reserved for the rendered tables and artifact data.
pub fn init_obs() {
    mce_obs::init_level_from_env();
    mce_obs::install(std::sync::Arc::new(mce_obs::ProgressReporter::new(
        std::time::Duration::from_millis(200),
    )));
}
