//! The five experiments of the paper's evaluation section.
//!
//! Each function runs one experiment at the requested [`Scale`] and returns
//! a serializable data structure with a `render()` method producing the
//! printed table/series. The binaries in `src/bin/` are thin wrappers that
//! print the rendering and write the JSON artifact.

use mce_apex::{ApexConfig, ApexExplorer, ApexResult};
use mce_appmodel::{benchmarks, Workload};
use mce_conex::{
    Axis, ConexConfig, ConexExplorer, ConexResult, CoverageReport, DesignPoint,
    ExplorationStrategy, Metrics, ParetoFront,
};
use mce_sim::Preset;
use serde::{Deserialize, Serialize};

use crate::report::{render_scatter, render_table};

/// Experiment scale: `Fast` for tests/benches, `Paper` for the real runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Reduced traces and candidate caps; seconds per experiment.
    Fast,
    /// The full experiment configuration.
    Paper,
}

impl Scale {
    /// Reads the scale from process arguments (`--fast` selects
    /// [`Scale::Fast`]).
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--fast") {
            Scale::Fast
        } else {
            Scale::Paper
        }
    }

    /// The APEX configuration for this scale.
    pub fn apex_config(self) -> ApexConfig {
        match self {
            Scale::Fast => ApexConfig::preset(Preset::Fast),
            Scale::Paper => ApexConfig::preset(Preset::Paper),
        }
    }

    /// The ConEx configuration for this scale.
    pub fn conex_config(self) -> ConexConfig {
        match self {
            Scale::Fast => ConexConfig::preset(Preset::Fast),
            Scale::Paper => ConexConfig::preset(Preset::Paper),
        }
    }
}

fn run_apex(scale: Scale, workload: &Workload) -> ApexResult {
    ApexExplorer::new(scale.apex_config()).explore(workload)
}

fn run_conex(scale: Scale, workload: &Workload, apex: &ApexResult) -> ConexResult {
    ConexExplorer::new(scale.conex_config())
        .explore(workload, apex.selected())
        .expect("benchmark exploration completed")
}

// ---------------------------------------------------------------------------
// Figure 3
// ---------------------------------------------------------------------------

/// One point of the Figure 3 scatter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3Point {
    /// Architecture name.
    pub name: String,
    /// Memory-modules cost, gates.
    pub cost_gates: u64,
    /// Overall miss ratio.
    pub miss_ratio: f64,
}

/// Figure 3: "The most promising memory modules architectures for the
/// compress benchmark" — the APEX cost/miss-ratio exploration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3Data {
    /// Workload name (compress in the paper).
    pub workload: String,
    /// Every evaluated candidate.
    pub points: Vec<Fig3Point>,
    /// The selected pareto architectures (the paper's labels 1..5).
    pub selected: Vec<Fig3Point>,
}

impl Fig3Data {
    /// Renders the printed report.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Figure 3 — APEX memory-modules exploration ({}), {} candidates\n\n",
            self.workload,
            self.points.len()
        );
        let scatter: Vec<(f64, f64, bool)> = self
            .points
            .iter()
            .map(|p| {
                let selected = self.selected.iter().any(|s| s.name == p.name);
                (p.cost_gates as f64, p.miss_ratio, selected)
            })
            .collect();
        out.push_str(&render_scatter(
            &scatter,
            64,
            16,
            "cost [gates]",
            "miss ratio",
        ));
        out.push('\n');
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                let label = self
                    .selected
                    .iter()
                    .position(|s| s.name == p.name)
                    .map(|i| (i + 1).to_string())
                    .unwrap_or_default();
                vec![
                    label,
                    p.name.clone(),
                    p.cost_gates.to_string(),
                    format!("{:.4}", p.miss_ratio),
                ]
            })
            .collect();
        out.push_str(&render_table(
            &["sel", "architecture", "cost [gates]", "miss ratio"],
            &rows,
        ));
        out.push_str("\nSelected for connectivity exploration (pareto points 1..n):\n");
        for (i, s) in self.selected.iter().enumerate() {
            out.push_str(&format!(
                "  {}: {} — {} gates, miss {:.4}\n",
                i + 1,
                s.name,
                s.cost_gates,
                s.miss_ratio
            ));
        }
        out
    }
}

/// Runs the Figure 3 experiment.
pub fn fig3(scale: Scale) -> Fig3Data {
    let w = benchmarks::compress();
    let apex = run_apex(scale, &w);
    let point = |p: &mce_apex::ApexPoint| Fig3Point {
        name: p.arch.name().to_owned(),
        cost_gates: p.cost_gates,
        miss_ratio: p.miss_ratio,
    };
    Fig3Data {
        workload: w.name().to_owned(),
        points: apex.points().iter().map(point).collect(),
        selected: apex.selected_points().map(point).collect(),
    }
}

// ---------------------------------------------------------------------------
// Figure 4
// ---------------------------------------------------------------------------

/// One point of the Figure 4 cloud.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4Point {
    /// Total (memory + connectivity) cost, gates.
    pub cost_gates: u64,
    /// Average memory latency, cycles.
    pub latency_cycles: f64,
    /// Average energy per access, nJ.
    pub energy_nj: f64,
    /// True for the Phase-II pareto designs.
    pub on_pareto: bool,
}

/// Figure 4: "The connectivity architecture exploration for the compress
/// benchmark" — cost vs average memory latency over the whole ConEx cloud,
/// with the paper's headline latency improvement across the pareto.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4Data {
    /// Workload name.
    pub workload: String,
    /// Estimated exploration cloud + simulated pareto points.
    pub points: Vec<Fig4Point>,
    /// Best latency achievable under APEX's simple shared-bus connectivity
    /// model — the starting point before connectivity exploration, cycles.
    pub baseline_latency: f64,
    /// Best latency on the explored pareto, cycles.
    pub best_latency: f64,
    /// Relative improvement, percent (the paper reports 36 %).
    pub improvement_pct: f64,
}

impl Fig4Data {
    /// Renders the printed report.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Figure 4 — ConEx connectivity exploration ({}), {} design points\n\n",
            self.workload,
            self.points.len()
        );
        let scatter: Vec<(f64, f64, bool)> = self
            .points
            .iter()
            .map(|p| (p.cost_gates as f64, p.latency_cycles, p.on_pareto))
            .collect();
        out.push_str(&render_scatter(
            &scatter,
            64,
            16,
            "cost [gates]",
            "avg latency [cyc]",
        ));
        out.push('\n');
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .filter(|p| p.on_pareto)
            .map(|p| {
                vec![
                    p.cost_gates.to_string(),
                    format!("{:.2}", p.latency_cycles),
                    format!("{:.2}", p.energy_nj),
                ]
            })
            .collect();
        out.push_str("Pareto designs (cost vs average memory latency):\n");
        out.push_str(&render_table(
            &["cost [gates]", "avg latency [cyc]", "avg energy [nJ]"],
            &rows,
        ));
        out.push_str(&format!(
            "\nAverage memory latency reduced from {:.1} to {:.1} cycles — {:.0}% improvement\n(paper: 10.6 to 6.7 cycles, 36%)\n",
            self.baseline_latency, self.best_latency, self.improvement_pct
        ));
        out
    }
}

/// Runs the Figure 4 experiment.
pub fn fig4(scale: Scale) -> Fig4Data {
    let w = benchmarks::compress();
    let apex = run_apex(scale, &w);
    let conex = run_conex(scale, &w, &apex);
    fig4_from(scale, &w, &apex, &conex)
}

fn fig4_from(scale: Scale, w: &Workload, apex: &ApexResult, conex: &ConexResult) -> Fig4Data {
    // The pre-ConEx reference: the best any selected memory architecture
    // manages under the simple shared-bus connectivity model APEX assumed.
    let trace_len = scale.conex_config().trace_len;
    let baseline_latency = apex
        .selected()
        .into_iter()
        .filter_map(|mem| mce_sim::SystemConfig::with_shared_bus(w, mem).ok())
        .map(|sys| mce_sim::simulate(&sys, w, trace_len).avg_latency_cycles)
        .fold(f64::INFINITY, f64::min);
    let pareto = conex.pareto_cost_latency();
    let mut points: Vec<Fig4Point> = conex
        .estimated()
        .iter()
        .map(|p| Fig4Point {
            cost_gates: p.metrics.cost_gates,
            latency_cycles: p.metrics.latency_cycles,
            energy_nj: p.metrics.energy_nj,
            on_pareto: false,
        })
        .collect();
    points.extend(pareto.iter().map(|p| Fig4Point {
        cost_gates: p.metrics.cost_gates,
        latency_cycles: p.metrics.latency_cycles,
        energy_nj: p.metrics.energy_nj,
        on_pareto: true,
    }));
    let best_latency = pareto
        .iter()
        .map(|p| p.metrics.latency_cycles)
        .fold(f64::INFINITY, f64::min);
    let improvement_pct = if baseline_latency > 0.0 {
        (baseline_latency - best_latency) / baseline_latency * 100.0
    } else {
        0.0
    };
    Fig4Data {
        workload: w.name().to_owned(),
        points,
        baseline_latency,
        best_latency,
        improvement_pct,
    }
}

// ---------------------------------------------------------------------------
// Figure 6
// ---------------------------------------------------------------------------

/// One labelled pareto design of Figure 6.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6Point {
    /// The paper-style label (a, b, c, ...), in cost order.
    pub label: char,
    /// Total cost, gates.
    pub cost_gates: u64,
    /// Average memory latency, cycles.
    pub latency_cycles: f64,
    /// Average energy, nJ.
    pub energy_nj: f64,
    /// Architecture description (memory `|` connectivity).
    pub description: String,
    /// True for traditional cache-only memory configurations.
    pub cache_only: bool,
    /// Latency improvement over the best cache-only design, percent.
    pub improvement_vs_cache_pct: f64,
    /// Cost increase over the best cache-only design, percent.
    pub cost_increase_pct: f64,
}

/// Figure 6: "Analysis of the cost/perf pareto architectures for the
/// compress benchmark" — the labelled designs *a..k* and their improvement
/// over the best traditional cache architecture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6Data {
    /// Workload name.
    pub workload: String,
    /// The labelled pareto designs, in cost order.
    pub points: Vec<Fig6Point>,
}

impl Fig6Data {
    /// Renders the printed report.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Figure 6 — cost/performance pareto analysis ({})\n\n",
            self.workload
        );
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                vec![
                    p.label.to_string(),
                    p.cost_gates.to_string(),
                    format!("{:.2}", p.latency_cycles),
                    format!("{:.2}", p.energy_nj),
                    if p.cache_only {
                        "(cache-only baseline)".to_owned()
                    } else {
                        format!(
                            "+{:.0}% perf, +{:.0}% cost",
                            p.improvement_vs_cache_pct, p.cost_increase_pct
                        )
                    },
                    p.description.clone(),
                ]
            })
            .collect();
        out.push_str(&render_table(
            &[
                "",
                "cost [gates]",
                "latency [cyc]",
                "energy [nJ]",
                "vs best cache-only",
                "architecture",
            ],
            &rows,
        ));
        out
    }
}

/// Runs the Figure 6 experiment.
pub fn fig6(scale: Scale) -> Fig6Data {
    let w = benchmarks::compress();
    let apex = run_apex(scale, &w);
    let conex = run_conex(scale, &w, &apex);
    fig6_from(&w, &conex)
}

fn is_cache_only(p: &DesignPoint) -> bool {
    let mem = p.system.mem();
    mem.on_chip_modules().count() == 1
        && mem
            .on_chip_modules()
            .all(|(_, m)| matches!(m.kind(), mce_memlib::MemModuleKind::Cache(_)))
}

fn fig6_from(w: &Workload, conex: &ConexResult) -> Fig6Data {
    let pareto = conex.pareto_cost_latency();
    // Reference: the best (lowest-latency) traditional cache-only design
    // among everything simulated — the paper's architecture "b".
    let reference = conex
        .simulated()
        .iter()
        .filter(|p| is_cache_only(p))
        .min_by(|a, b| {
            a.metrics
                .latency_cycles
                .total_cmp(&b.metrics.latency_cycles)
        });
    let (ref_lat, ref_cost) = reference
        .map(|p| (p.metrics.latency_cycles, p.metrics.cost_gates as f64))
        .unwrap_or((f64::NAN, f64::NAN));
    let points = pareto
        .iter()
        .enumerate()
        .map(|(i, p)| Fig6Point {
            label: (b'a' + (i % 26) as u8) as char,
            cost_gates: p.metrics.cost_gates,
            latency_cycles: p.metrics.latency_cycles,
            energy_nj: p.metrics.energy_nj,
            description: p.describe(),
            cache_only: is_cache_only(p),
            improvement_vs_cache_pct: (ref_lat - p.metrics.latency_cycles) / ref_lat * 100.0,
            cost_increase_pct: (p.metrics.cost_gates as f64 - ref_cost) / ref_cost * 100.0,
        })
        .collect();
    Fig6Data {
        workload: w.name().to_owned(),
        points,
    }
}

// ---------------------------------------------------------------------------
// Table 1
// ---------------------------------------------------------------------------

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Total cost, gates.
    pub cost_gates: u64,
    /// Average memory latency, cycles.
    pub latency_cycles: f64,
    /// Average energy per access, nJ.
    pub energy_nj: f64,
}

/// Table 1: "Selected cost/performance designs for the connectivity
/// exploration" — per benchmark, the cost/latency/energy of the selected
/// designs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Data {
    /// Rows per benchmark, in (benchmark, rows) pairs.
    pub benchmarks: Vec<(String, Vec<Table1Row>)>,
}

impl Table1Data {
    /// Renders the printed report.
    pub fn render(&self) -> String {
        let mut rows: Vec<Vec<String>> = Vec::new();
        for (name, brs) in &self.benchmarks {
            for (i, r) in brs.iter().enumerate() {
                rows.push(vec![
                    if i == 0 { name.clone() } else { String::new() },
                    r.cost_gates.to_string(),
                    format!("{:.2}", r.latency_cycles),
                    format!("{:.2}", r.energy_nj),
                ]);
            }
        }
        format!(
            "Table 1 — selected cost/performance designs\n\n{}",
            render_table(
                &[
                    "benchmark",
                    "cost [gates]",
                    "avg mem latency [cycles]",
                    "avg energy [nJ]"
                ],
                &rows
            )
        )
    }
}

/// Runs the Table 1 experiment over all three paper benchmarks.
pub fn table1(scale: Scale) -> Table1Data {
    let benchmarks = benchmarks::all()
        .into_iter()
        .map(|w| {
            let apex = run_apex(scale, &w);
            let conex = run_conex(scale, &w, &apex);
            let rows = conex
                .pareto_cost_latency()
                .iter()
                .map(|p| Table1Row {
                    cost_gates: p.metrics.cost_gates,
                    latency_cycles: p.metrics.latency_cycles,
                    energy_nj: p.metrics.energy_nj,
                })
                .collect();
            (w.name().to_owned(), rows)
        })
        .collect();
    Table1Data { benchmarks }
}

// ---------------------------------------------------------------------------
// Table 2
// ---------------------------------------------------------------------------

/// One strategy's coverage results on one benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Cell {
    /// The exploration strategy.
    pub strategy: String,
    /// Wall-clock exploration time, seconds.
    pub time_s: f64,
    /// Full simulations performed.
    pub simulations: usize,
    /// Pareto coverage vs the full search, percent.
    pub coverage_pct: f64,
    /// Average percentile cost distance of missed points.
    pub avg_cost_dist_pct: f64,
    /// Average percentile performance distance.
    pub avg_perf_dist_pct: f64,
    /// Average percentile energy distance.
    pub avg_energy_dist_pct: f64,
}

/// Table 2: "Pareto coverage results" — Pruned vs Neighborhood vs Full per
/// benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Data {
    /// Per-benchmark strategy cells.
    pub benchmarks: Vec<(String, Vec<Table2Cell>)>,
}

impl Table2Data {
    /// Renders the printed report.
    pub fn render(&self) -> String {
        let mut rows = Vec::new();
        for (name, cells) in &self.benchmarks {
            for (i, c) in cells.iter().enumerate() {
                rows.push(vec![
                    if i == 0 { name.clone() } else { String::new() },
                    c.strategy.clone(),
                    format!("{:.2}", c.time_s),
                    c.simulations.to_string(),
                    format!("{:.0}%", c.coverage_pct),
                    format!("{:.2}%", c.avg_cost_dist_pct),
                    format!("{:.2}%", c.avg_perf_dist_pct),
                    format!("{:.2}%", c.avg_energy_dist_pct),
                ]);
            }
        }
        format!(
            "Table 2 — pareto coverage: Pruned vs Neighborhood vs Full\n\n{}",
            render_table(
                &[
                    "benchmark",
                    "strategy",
                    "time [s]",
                    "full sims",
                    "coverage",
                    "cost dist",
                    "perf dist",
                    "energy dist"
                ],
                &rows
            )
        )
    }
}

/// Relative tolerance for counting a pareto point as exactly covered.
const COVERAGE_TOLERANCE: f64 = 0.005;

/// Runs the Table 2 experiment (compress + vocoder, as in the paper — the
/// li full search was infeasible there).
pub fn table2(scale: Scale) -> Table2Data {
    let workloads = [benchmarks::compress(), benchmarks::vocoder()];
    let benchmarks = workloads
        .into_iter()
        .map(|w| {
            let apex = run_apex(scale, &w);
            let mut cells = Vec::new();
            let mut results: Vec<(ExplorationStrategy, ConexResult)> = Vec::new();
            for strategy in [
                ExplorationStrategy::Pruned,
                ExplorationStrategy::Neighborhood,
                ExplorationStrategy::Full,
            ] {
                let cfg = scale.conex_config().with_strategy(strategy);
                let result = ConexExplorer::new(cfg)
                    .explore(&w, apex.selected())
                    .expect("benchmark exploration completed");
                results.push((strategy, result));
            }
            // Reference: the 3-D pareto front of the Full search.
            let full = &results
                .iter()
                .find(|(s, _)| *s == ExplorationStrategy::Full)
                .expect("full strategy present")
                .1;
            let full_metrics: Vec<Metrics> = full.simulated().iter().map(|p| p.metrics).collect();
            let reference: Vec<Metrics> = ParetoFront::of(&full_metrics, &Axis::ALL)
                .indices()
                .iter()
                .map(|&i| full_metrics[i])
                .collect();
            for (strategy, result) in &results {
                let found: Vec<Metrics> = result.simulated().iter().map(|p| p.metrics).collect();
                let report = CoverageReport::compare(&reference, &found, COVERAGE_TOLERANCE);
                cells.push(Table2Cell {
                    strategy: strategy.to_string(),
                    time_s: result.elapsed().as_secs_f64(),
                    simulations: result.simulated().len(),
                    coverage_pct: report.coverage_pct,
                    avg_cost_dist_pct: report.avg_cost_dist_pct,
                    avg_perf_dist_pct: report.avg_perf_dist_pct,
                    avg_energy_dist_pct: report.avg_energy_dist_pct,
                });
            }
            (w.name().to_owned(), cells)
        })
        .collect();
    Table2Data { benchmarks }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_fast_selects_pareto() {
        let d = fig3(Scale::Fast);
        assert!(!d.selected.is_empty());
        for pair in d.selected.windows(2) {
            assert!(pair[0].cost_gates <= pair[1].cost_gates);
            assert!(pair[0].miss_ratio >= pair[1].miss_ratio);
        }
        assert!(d.render().contains("Figure 3"));
    }

    #[test]
    fn fig4_fast_reports_improvement() {
        let d = fig4(Scale::Fast);
        assert!(d.best_latency <= d.baseline_latency);
        assert!(d.improvement_pct >= 0.0);
        assert!(d.render().contains("improvement"));
    }

    #[test]
    fn table2_fast_orders_strategies() {
        let d = table2(Scale::Fast);
        for (name, cells) in &d.benchmarks {
            assert_eq!(cells.len(), 3, "{name}");
            let full = &cells[2];
            assert_eq!(full.strategy, "Full");
            assert!(
                (full.coverage_pct - 100.0).abs() < 1e-9,
                "{name} full covers itself"
            );
            assert!(cells[0].simulations <= cells[1].simulations);
            assert!(cells[1].simulations <= cells[2].simulations);
        }
    }
}
