//! Time-sampling estimation.
//!
//! The paper uses the trace-sampling technique of Kessler, Hill and Wood to
//! make Phase-I estimation fast: the simulator alternates "on-sampling" and
//! "off-sampling" periods with a 1:9 on:off ratio, fully simulating only the
//! on periods. The estimate "does not have a very good absolute accuracy
//! compared to full simulation. However ... the estimation fidelity is
//! sufficient to make good pruning decisions" — the module state carried
//! across skipped periods goes stale (cold-start bias), but the *relative
//! ordering* of design points is preserved, which is all the pruning needs.
//!
//! ## Known pitfall: phase aliasing
//!
//! Systematic on/off sampling has a fixed period (`on_accesses × (1 +
//! off_ratio)`). If the workload's execution-phase schedule shares a
//! harmonic with that period, the on-windows can land in the *same* phases
//! every time and skip others entirely, silently biasing the estimate (the
//! regression test `aliasing_with_phase_period_biases_estimates` constructs
//! exactly this). When estimating phased workloads, pick `on_accesses` so
//! the sampling period and the phase period are co-prime — or use full
//! simulation for final numbers, as Phase II does.

use crate::engine::Simulator;
use crate::stats::SimStats;
use crate::system::SystemConfig;
use mce_appmodel::Workload;
use serde::{Deserialize, Serialize};

/// Configuration of the on/off sampling windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SamplingConfig {
    /// Accesses fully simulated per window.
    pub on_accesses: u32,
    /// Skipped accesses per simulated access (the paper's ratio is 1:9).
    pub off_ratio: u32,
}

impl SamplingConfig {
    /// The paper's configuration: 1:9 on:off.
    pub const fn paper() -> Self {
        SamplingConfig {
            on_accesses: 500,
            off_ratio: 9,
        }
    }

    /// Number of accesses skipped after each on window.
    pub const fn off_accesses(&self) -> u64 {
        self.on_accesses as u64 * self.off_ratio as u64
    }
}

impl Default for SamplingConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Estimates `sys`'s metrics by time-sampled simulation of the first
/// `trace_len` accesses.
///
/// Roughly `1/(1+off_ratio)` of the trace is simulated; the returned stats
/// count only the sampled accesses. With `off_ratio == 0` this is exactly
/// [`simulate`](crate::simulate).
pub fn simulate_sampled(
    sys: &SystemConfig,
    workload: &Workload,
    trace_len: usize,
    config: SamplingConfig,
) -> SimStats {
    let mut sim = Simulator::new(sys, workload);
    let mut in_window = 0u64;
    let mut skipping = false;
    let mut skipped = 0u64;
    for acc in workload.trace(trace_len) {
        if skipping {
            sim.skip(&acc);
            skipped += 1;
            if skipped >= config.off_accesses() {
                skipping = false;
                in_window = 0;
            }
        } else {
            sim.step(&acc);
            in_window += 1;
            if in_window >= config.on_accesses as u64 && config.off_ratio > 0 {
                skipping = true;
                skipped = 0;
            }
        }
    }
    sim.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use mce_appmodel::benchmarks;
    use mce_memlib::{CacheConfig, MemoryArchitecture};

    const N: usize = 40_000;

    fn system(kib: u64) -> (Workload, SystemConfig) {
        let w = benchmarks::compress();
        let mem = MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(kib));
        let sys = SystemConfig::with_shared_bus(&w, mem).unwrap();
        (w, sys)
    }

    #[test]
    fn sampled_simulates_about_a_tenth() {
        let (w, sys) = system(8);
        let s = simulate_sampled(&sys, &w, N, SamplingConfig::paper());
        let expected = N as f64 / 10.0;
        assert!(
            (s.accesses as f64) > 0.7 * expected && (s.accesses as f64) < 1.3 * expected,
            "sampled {} of {}",
            s.accesses,
            N
        );
    }

    #[test]
    fn zero_ratio_equals_full_simulation() {
        let (w, sys) = system(4);
        let full = simulate(&sys, &w, 10_000);
        let sampled = simulate_sampled(
            &sys,
            &w,
            10_000,
            SamplingConfig {
                on_accesses: 100,
                off_ratio: 0,
            },
        );
        assert_eq!(full, sampled);
    }

    #[test]
    fn estimate_tracks_full_simulation_relatively() {
        // The estimator's job: preserve the relative ordering of designs.
        let (w, small_sys) = system(1);
        let (_, big_sys) = system(32);
        let cfg = SamplingConfig::paper();
        let est_small = simulate_sampled(&small_sys, &w, N, cfg);
        let est_big = simulate_sampled(&big_sys, &w, N, cfg);
        let full_small = simulate(&small_sys, &w, N);
        let full_big = simulate(&big_sys, &w, N);
        assert_eq!(
            est_small.avg_latency_cycles > est_big.avg_latency_cycles,
            full_small.avg_latency_cycles > full_big.avg_latency_cycles,
            "estimate must order designs like full simulation"
        );
    }

    #[test]
    fn estimate_within_tolerance_of_full() {
        let (w, sys) = system(8);
        let est = simulate_sampled(&sys, &w, N, SamplingConfig::paper());
        let full = simulate(&sys, &w, N);
        let rel =
            (est.avg_latency_cycles - full.avg_latency_cycles).abs() / full.avg_latency_cycles;
        // Not highly accurate, but within coarse bounds.
        assert!(rel < 0.5, "relative error {rel}");
    }

    #[test]
    fn phased_workload_still_ranked_correctly() {
        // Phase behaviour is what makes time sampling err; the fidelity
        // contract (relative ordering) must still hold on a phased
        // workload like jpeg.
        let w = benchmarks::jpeg();
        let small = SystemConfig::with_shared_bus(
            &w,
            MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(1)),
        )
        .unwrap();
        let big = SystemConfig::with_shared_bus(
            &w,
            MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(16)),
        )
        .unwrap();
        let cfg = SamplingConfig::paper();
        let est_small = simulate_sampled(&small, &w, N, cfg);
        let est_big = simulate_sampled(&big, &w, N, cfg);
        let full_small = simulate(&small, &w, N);
        let full_big = simulate(&big, &w, N);
        assert_eq!(
            est_small.avg_latency_cycles > est_big.avg_latency_cycles,
            full_small.avg_latency_cycles > full_big.avg_latency_cycles
        );
    }

    #[test]
    fn aliasing_with_phase_period_biases_estimates() {
        // jpeg's phase super-period is 10,000 accesses; the paper sampling
        // config's period is 500 × (1+9) = 5,000 — a perfect harmonic. The
        // on-windows land at offsets 0 and 5,000 of every super-period
        // (the dct and quant phases) and never see the expensive entropy
        // phase, so the estimate is far below the truth. This documents
        // the classic systematic-sampling failure mode; Phase II's full
        // simulation is what protects the final numbers.
        let w = benchmarks::jpeg();
        let sys = SystemConfig::with_shared_bus(
            &w,
            MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(4)),
        )
        .unwrap();
        let aliased = simulate_sampled(&sys, &w, N, SamplingConfig::paper());
        let full = simulate(&sys, &w, N);
        assert!(
            aliased.avg_latency_cycles < 0.6 * full.avg_latency_cycles,
            "aliased {} vs full {} — aliasing should bias low",
            aliased.avg_latency_cycles,
            full.avg_latency_cycles
        );
        // A co-prime window width breaks the harmonic and recovers most of
        // the truth.
        let coprime = SamplingConfig {
            on_accesses: 333,
            off_ratio: 9,
        };
        let fixed = simulate_sampled(&sys, &w, N, coprime);
        let rel =
            (fixed.avg_latency_cycles - full.avg_latency_cycles).abs() / full.avg_latency_cycles;
        assert!(rel < 0.4, "co-prime sampling error {rel}");
    }

    #[test]
    fn sampled_time_advances_through_off_periods() {
        let (w, sys) = system(8);
        let s = simulate_sampled(&sys, &w, N, SamplingConfig::paper());
        // Off periods still advance wall-clock: at least one cycle of CPU
        // compute time passes per trace entry, simulated or skipped.
        assert!(s.total_cycles >= N as u64, "total {}", s.total_cycles);
    }
}
