//! Block-compiled trace replay.
//!
//! The counterparts of [`simulate`](crate::simulate) and
//! [`simulate_sampled`](crate::simulate_sampled) that consume a
//! pre-compiled [`TraceBlocks`] instead of running the trace generator.
//! The access sequence fed to the [`Simulator`] is identical in both
//! paths, so the returned [`SimStats`] are bit-identical — the blocks only
//! remove the per-candidate cost of regenerating the trace.
//!
//! Blocks compiled at a pipeline's longest trace length serve every
//! shorter replay (`trace_len` is a prefix length), which is how the
//! estimation and full-simulation stages share one compilation.

use crate::engine::Simulator;
use crate::sampling::SamplingConfig;
use crate::stats::SimStats;
use crate::system::SystemConfig;
use mce_appmodel::{TraceBlocks, Workload};
use mce_obs as obs;

/// Fully simulates the first `trace_len` compiled accesses on `sys`.
///
/// Bit-identical to [`simulate`](crate::simulate) with the same
/// `trace_len`.
///
/// # Panics
///
/// Panics if `trace_len` exceeds the compiled length, or if `blocks` was
/// compiled from a different workload than the one the stats are
/// attributed to (not detectable here — compile and replay from the same
/// [`Workload`]).
pub fn simulate_blocks(
    sys: &SystemConfig,
    workload: &Workload,
    blocks: &TraceBlocks,
    trace_len: usize,
) -> SimStats {
    let _t = obs::time_scope("sim.replay_us");
    let mut sim = Simulator::new(sys, workload);
    for batch in blocks.batches(trace_len) {
        for i in batch {
            sim.step(&blocks.get(i));
        }
    }
    sim.finish()
}

/// [`simulate_blocks`] with a cooperative cancellation check.
///
/// `cancelled` is polled once per compiled block batch — coarse enough
/// to stay off the per-access hot path, fine enough that a tripped
/// deadline or watchdog reclaims the evaluation within one batch. When
/// it trips, the partial simulation is discarded and `None` is returned.
///
/// With a check that never trips, the access sequence and accumulation
/// order are identical to [`simulate_blocks`], so the returned stats are
/// bit-identical — a bounded run that never hits its bounds matches an
/// unbounded one exactly.
///
/// # Panics
///
/// Panics if `trace_len` exceeds the compiled length.
pub fn simulate_blocks_cancellable(
    sys: &SystemConfig,
    workload: &Workload,
    blocks: &TraceBlocks,
    trace_len: usize,
    cancelled: &(dyn Fn() -> bool + Sync),
) -> Option<SimStats> {
    let _t = obs::time_scope("sim.replay_us");
    let mut sim = Simulator::new(sys, workload);
    for batch in blocks.batches(trace_len) {
        if cancelled() {
            return None;
        }
        for i in batch {
            sim.step(&blocks.get(i));
        }
    }
    Some(sim.finish())
}

/// Time-sampled estimation over the first `trace_len` compiled accesses.
///
/// Bit-identical to [`simulate_sampled`](crate::simulate_sampled) with the
/// same `trace_len` and `config`.
///
/// # Panics
///
/// Panics if `trace_len` exceeds the compiled length.
pub fn simulate_sampled_blocks(
    sys: &SystemConfig,
    workload: &Workload,
    blocks: &TraceBlocks,
    trace_len: usize,
    config: SamplingConfig,
) -> SimStats {
    simulate_sampled_blocks_cancellable(sys, workload, blocks, trace_len, config, &|| false)
        .expect("a never-tripping check cannot cancel")
}

/// [`simulate_sampled_blocks`] with a cooperative cancellation check,
/// polled once per compiled block batch (see
/// [`simulate_blocks_cancellable`] for the contract).
///
/// # Panics
///
/// Panics if `trace_len` exceeds the compiled length.
pub fn simulate_sampled_blocks_cancellable(
    sys: &SystemConfig,
    workload: &Workload,
    blocks: &TraceBlocks,
    trace_len: usize,
    config: SamplingConfig,
    cancelled: &(dyn Fn() -> bool + Sync),
) -> Option<SimStats> {
    let _t = obs::time_scope("sim.replay_sampled_us");
    let mut sim = Simulator::new(sys, workload);
    let mut in_window = 0u64;
    let mut skipping = false;
    let mut skipped = 0u64;
    for batch in blocks.batches(trace_len) {
        if cancelled() {
            return None;
        }
        for i in batch {
            let acc = blocks.get(i);
            if skipping {
                sim.skip(&acc);
                skipped += 1;
                if skipped >= config.off_accesses() {
                    skipping = false;
                    in_window = 0;
                }
            } else {
                sim.step(&acc);
                in_window += 1;
                if in_window >= config.on_accesses as u64 && config.off_ratio > 0 {
                    skipping = true;
                    skipped = 0;
                }
            }
        }
    }
    Some(sim.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use crate::sampling::simulate_sampled;
    use mce_appmodel::benchmarks;
    use mce_memlib::{CacheConfig, MemoryArchitecture};

    const N: usize = 20_000;

    fn system(w: &Workload, kib: u64) -> SystemConfig {
        let mem = MemoryArchitecture::cache_only(w, CacheConfig::kilobytes(kib));
        SystemConfig::with_shared_bus(w, mem).unwrap()
    }

    #[test]
    fn full_replay_is_bit_identical() {
        for w in [benchmarks::compress(), benchmarks::vocoder()] {
            let sys = system(&w, 4);
            let blocks = TraceBlocks::compile(&w, N);
            assert_eq!(
                simulate(&sys, &w, N),
                simulate_blocks(&sys, &w, &blocks, N),
                "{}",
                w.name()
            );
        }
    }

    #[test]
    fn sampled_replay_is_bit_identical() {
        for w in [benchmarks::compress(), benchmarks::vocoder()] {
            let sys = system(&w, 4);
            let blocks = TraceBlocks::compile(&w, N);
            let cfg = SamplingConfig::paper();
            assert_eq!(
                simulate_sampled(&sys, &w, N, cfg),
                simulate_sampled_blocks(&sys, &w, &blocks, N, cfg),
                "{}",
                w.name()
            );
        }
    }

    #[test]
    fn long_compilation_serves_short_replays() {
        // One compilation at the longest length a pipeline needs: replay
        // at a shorter prefix must still match the generator exactly.
        let w = benchmarks::li();
        let sys = system(&w, 8);
        let blocks = TraceBlocks::compile(&w, N);
        let short = N / 3;
        assert_eq!(
            simulate(&sys, &w, short),
            simulate_blocks(&sys, &w, &blocks, short)
        );
        let cfg = SamplingConfig::paper();
        assert_eq!(
            simulate_sampled(&sys, &w, short, cfg),
            simulate_sampled_blocks(&sys, &w, &blocks, short, cfg)
        );
    }

    #[test]
    fn cancellable_replay_with_clear_check_is_bit_identical() {
        let w = benchmarks::vocoder();
        let sys = system(&w, 4);
        let blocks = TraceBlocks::compile(&w, N);
        assert_eq!(
            Some(simulate_blocks(&sys, &w, &blocks, N)),
            simulate_blocks_cancellable(&sys, &w, &blocks, N, &|| false)
        );
        let cfg = SamplingConfig::paper();
        assert_eq!(
            Some(simulate_sampled_blocks(&sys, &w, &blocks, N, cfg)),
            simulate_sampled_blocks_cancellable(&sys, &w, &blocks, N, cfg, &|| false)
        );
    }

    #[test]
    fn tripped_check_discards_the_replay() {
        let w = benchmarks::vocoder();
        let sys = system(&w, 4);
        let blocks = TraceBlocks::compile(&w, N);
        assert_eq!(
            simulate_blocks_cancellable(&sys, &w, &blocks, N, &|| true),
            None
        );
        // Tripping mid-replay bails out at the next batch boundary.
        let calls = std::sync::atomic::AtomicUsize::new(0);
        let after_two = || calls.fetch_add(1, std::sync::atomic::Ordering::Relaxed) >= 2;
        assert_eq!(
            simulate_blocks_cancellable(&sys, &w, &blocks, N, &after_two),
            None
        );
        let cfg = SamplingConfig::paper();
        assert_eq!(
            simulate_sampled_blocks_cancellable(&sys, &w, &blocks, N, cfg, &|| true),
            None
        );
    }

    #[test]
    #[should_panic(expected = "compiled with only")]
    fn overlong_replay_panics() {
        let w = benchmarks::vocoder();
        let sys = system(&w, 4);
        let blocks = TraceBlocks::compile(&w, 100);
        let _ = simulate_blocks(&sys, &w, &blocks, 101);
    }
}
