//! # mce-sim — cycle-level memory + connectivity system simulator
//!
//! The SIMPRESS-substitute: replays a workload's access trace through a
//! [`SystemConfig`] (a memory architecture wired up by a connectivity
//! architecture) and produces the three metrics the paper's exploration
//! trades off — gate **cost**, average memory **latency** in cycles
//! (module latency + connectivity latency including bus conflicts and
//! arbitration), and average **energy** per access in nJ.
//!
//! Two fidelity levels, as in the paper:
//!
//! * [`simulate`] — full simulation of the whole trace (Phase II).
//! * [`simulate_sampled`] — Kessler-style time sampling with a configurable
//!   on/off ratio (default 1:9), used for the fast relative estimates that
//!   guide Phase-I pruning.
//!
//! ## Example
//!
//! ```
//! use mce_appmodel::benchmarks;
//! use mce_memlib::{CacheConfig, MemoryArchitecture};
//! use mce_sim::{simulate, SystemConfig};
//!
//! let w = benchmarks::vocoder();
//! let mem = MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(4));
//! let sys = SystemConfig::with_shared_bus(&w, mem).expect("valid system");
//! let stats = simulate(&sys, &w, 20_000);
//! assert!(stats.avg_latency_cycles > 1.0);
//! assert!(stats.avg_energy_nj > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod preset;
pub mod replay;
pub mod sampling;
pub mod stats;
pub mod system;

pub use engine::{simulate, simulate_trace, Simulator};
pub use preset::Preset;
pub use replay::{
    simulate_blocks, simulate_blocks_cancellable, simulate_sampled_blocks,
    simulate_sampled_blocks_cancellable,
};
pub use sampling::{simulate_sampled, SamplingConfig};
pub use stats::{ChannelStats, ModuleStats, SimStats};
pub use system::{ChannelEndpoint, SystemConfig, SystemError};
