//! System configurations: a memory architecture wired by a connectivity
//! architecture.

use mce_appmodel::Workload;
use mce_connlib::{
    Channel, ChannelId, ConnArchError, ConnComponent, ConnComponentKind, ConnectivityArchitecture,
};
use mce_memlib::{ArchError, MemModuleKind, MemoryArchitecture, ModuleId};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// What a communication channel connects, in terms of the memory
/// architecture's endpoints.
///
/// The channel list of a system is derived deterministically from the
/// memory architecture (see [`channel_endpoints`]), so the ConEx stage and
/// the simulator always agree on channel identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChannelEndpoint {
    /// CPU to an on-chip module (demand traffic).
    CpuToModule(ModuleId),
    /// An on-chip module to its on-chip backing store (an L2 cache): the
    /// multi-level extension beyond the paper's single-level template.
    ModuleToModule(ModuleId, ModuleId),
    /// An on-chip module to the off-chip DRAM (fills, prefetches,
    /// writebacks).
    ModuleToDram(ModuleId),
    /// CPU directly to DRAM (data structures mapped off-chip).
    CpuToDram,
}

impl ChannelEndpoint {
    /// True if the channel crosses the chip boundary.
    pub const fn is_off_chip(self) -> bool {
        matches!(
            self,
            ChannelEndpoint::ModuleToDram(_) | ChannelEndpoint::CpuToDram
        )
    }
}

impl fmt::Display for ChannelEndpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelEndpoint::CpuToModule(m) => write!(f, "CPU<->{m}"),
            ChannelEndpoint::ModuleToModule(a, b) => write!(f, "{a}<->{b}"),
            ChannelEndpoint::ModuleToDram(m) => write!(f, "{m}<->DRAM"),
            ChannelEndpoint::CpuToDram => write!(f, "CPU<->DRAM"),
        }
    }
}

/// Derives the communication channels a memory architecture needs:
///
/// 1. one CPU↔module channel per on-chip module that serves at least one
///    data structure (a pure L2 never talks to the CPU directly),
/// 2. one downstream channel per on-chip module that generates miss/
///    prefetch/writeback traffic (every kind except pure SRAM
///    scratchpads): module↔backing for backed modules, module↔DRAM
///    otherwise,
/// 3. a CPU↔DRAM channel if any data structure is mapped directly off-chip.
pub fn channel_endpoints(mem: &MemoryArchitecture, workload: &Workload) -> Vec<ChannelEndpoint> {
    let mut endpoints = Vec::new();
    for (id, module) in mem.on_chip_modules() {
        if mem.serves_data(id) {
            endpoints.push(ChannelEndpoint::CpuToModule(id));
        }
        if !matches!(module.kind(), MemModuleKind::Sram { .. }) {
            match mem.backing_of(id) {
                Some(l2) => endpoints.push(ChannelEndpoint::ModuleToModule(id, l2)),
                None => endpoints.push(ChannelEndpoint::ModuleToDram(id)),
            }
        }
    }
    let dram = mem.dram_id();
    let direct =
        (0..workload.len()).any(|i| mem.serving_module(mce_appmodel::DsId::new(i)) == dram);
    if direct {
        endpoints.push(ChannelEndpoint::CpuToDram);
    }
    endpoints
}

/// Builds the [`Channel`] descriptors matching [`channel_endpoints`].
pub fn channels_for(mem: &MemoryArchitecture, workload: &Workload) -> Vec<Channel> {
    channel_endpoints(mem, workload)
        .into_iter()
        .map(|e| {
            let name = match e {
                ChannelEndpoint::CpuToModule(m) => format!("CPU<->{}", mem.module(m).name()),
                ChannelEndpoint::ModuleToModule(a, b) => {
                    format!("{}<->{}", mem.module(a).name(), mem.module(b).name())
                }
                ChannelEndpoint::ModuleToDram(m) => format!("{}<->DRAM", mem.module(m).name()),
                ChannelEndpoint::CpuToDram => "CPU<->DRAM".to_owned(),
            };
            if e.is_off_chip() {
                Channel::off_chip(name)
            } else {
                Channel::on_chip(name)
            }
        })
        .collect()
}

/// A complete system configuration: memory architecture + connectivity
/// architecture, with the channel list they share.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    mem: MemoryArchitecture,
    conn: ConnectivityArchitecture,
    endpoints: Vec<ChannelEndpoint>,
}

/// Validation failure for a system configuration.
#[derive(Debug)]
pub enum SystemError {
    /// The memory architecture failed validation.
    Memory(ArchError),
    /// The connectivity architecture failed validation.
    Connectivity(ConnArchError),
    /// The connectivity architecture's channel list does not match the
    /// memory architecture's derived channels.
    ChannelMismatch {
        /// Channels the memory architecture needs.
        expected: usize,
        /// Channels the connectivity architecture declares.
        actual: usize,
    },
}

impl fmt::Display for SystemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemError::Memory(e) => write!(f, "memory architecture invalid: {e}"),
            SystemError::Connectivity(e) => write!(f, "connectivity architecture invalid: {e}"),
            SystemError::ChannelMismatch { expected, actual } => {
                write!(
                    f,
                    "channel mismatch: memory needs {expected}, connectivity has {actual}"
                )
            }
        }
    }
}

impl Error for SystemError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SystemError::Memory(e) => Some(e),
            SystemError::Connectivity(e) => Some(e),
            SystemError::ChannelMismatch { .. } => None,
        }
    }
}

impl From<ArchError> for SystemError {
    fn from(e: ArchError) -> Self {
        SystemError::Memory(e)
    }
}

impl From<ConnArchError> for SystemError {
    fn from(e: ConnArchError) -> Self {
        SystemError::Connectivity(e)
    }
}

impl SystemConfig {
    /// Couples a memory architecture with a connectivity architecture.
    ///
    /// # Errors
    ///
    /// Returns a [`SystemError`] if either architecture fails validation or
    /// the connectivity's channel list does not match the channels derived
    /// from the memory architecture.
    pub fn new(
        workload: &Workload,
        mem: MemoryArchitecture,
        conn: ConnectivityArchitecture,
    ) -> Result<Self, SystemError> {
        mem.validate(workload)?;
        let endpoints = channel_endpoints(&mem, workload);
        if endpoints.len() != conn.channels().len() {
            return Err(SystemError::ChannelMismatch {
                expected: endpoints.len(),
                actual: conn.channels().len(),
            });
        }
        conn.validate()?;
        Ok(SystemConfig {
            mem,
            conn,
            endpoints,
        })
    }

    /// The paper's "simple connectivity model" baseline (what APEX assumes):
    /// every on-chip channel on one shared ASB system bus, every off-chip
    /// channel on one off-chip bus.
    ///
    /// # Errors
    ///
    /// Returns a [`SystemError`] if the memory architecture is invalid.
    pub fn with_shared_bus(
        workload: &Workload,
        mem: MemoryArchitecture,
    ) -> Result<Self, SystemError> {
        let channels = channels_for(&mem, workload);
        let mut conn = ConnectivityArchitecture::new(channels.clone());
        let bus = conn.add_link("asb0", ConnComponent::new(ConnComponentKind::AmbaAsb));
        let ext = conn.add_link("ext0", ConnComponent::new(ConnComponentKind::OffChipBus));
        for (i, ch) in channels.iter().enumerate() {
            conn.assign(ChannelId::new(i), if ch.off_chip { ext } else { bus });
        }
        Self::new(workload, mem, conn)
    }

    /// The memory architecture.
    pub fn mem(&self) -> &MemoryArchitecture {
        &self.mem
    }

    /// The connectivity architecture.
    pub fn conn(&self) -> &ConnectivityArchitecture {
        &self.conn
    }

    /// The channel endpoints, index-aligned with
    /// [`ConnectivityArchitecture::channels`].
    pub fn endpoints(&self) -> &[ChannelEndpoint] {
        &self.endpoints
    }

    /// The channel carrying CPU↔`module` traffic.
    pub fn cpu_channel(&self, module: ModuleId) -> Option<ChannelId> {
        self.endpoints
            .iter()
            .position(|e| *e == ChannelEndpoint::CpuToModule(module))
            .map(ChannelId::new)
    }

    /// The channel carrying `module`↔DRAM traffic.
    pub fn dram_channel(&self, module: ModuleId) -> Option<ChannelId> {
        self.endpoints
            .iter()
            .position(|e| *e == ChannelEndpoint::ModuleToDram(module))
            .map(ChannelId::new)
    }

    /// The downstream channel of `module`: module↔backing for backed
    /// modules, module↔DRAM otherwise.
    pub fn downstream_channel(&self, module: ModuleId) -> Option<ChannelId> {
        self.endpoints
            .iter()
            .position(|e| {
                matches!(e,
                    ChannelEndpoint::ModuleToDram(m) if *m == module)
                    || matches!(e,
                    ChannelEndpoint::ModuleToModule(m, _) if *m == module)
            })
            .map(ChannelId::new)
    }

    /// The CPU↔DRAM direct channel, if present.
    pub fn cpu_dram_channel(&self) -> Option<ChannelId> {
        self.endpoints
            .iter()
            .position(|e| *e == ChannelEndpoint::CpuToDram)
            .map(ChannelId::new)
    }

    /// Total gate cost: memory modules + connectivity.
    pub fn gate_cost(&self) -> u64 {
        self.mem.gate_cost() + self.conn.gate_cost()
    }

    /// One-line description: memory composition `|` connectivity
    /// composition.
    pub fn describe(&self) -> String {
        format!("{} | {}", self.mem.describe(), self.conn.describe())
    }
}

impl fmt::Display for SystemConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mce_appmodel::{benchmarks, DsId};
    use mce_memlib::CacheConfig;

    #[test]
    fn cache_only_channels() {
        let w = benchmarks::compress();
        let mem = MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(8));
        let eps = channel_endpoints(&mem, &w);
        // CPU<->cache, cache<->DRAM; no direct CPU<->DRAM (all DS on cache).
        assert_eq!(eps.len(), 2);
        assert!(matches!(eps[0], ChannelEndpoint::CpuToModule(_)));
        assert!(matches!(eps[1], ChannelEndpoint::ModuleToDram(_)));
    }

    #[test]
    fn direct_dram_mapping_adds_channel() {
        let w = benchmarks::vocoder();
        let mem = MemoryArchitecture::builder("partial")
            .module("L1", MemModuleKind::Cache(CacheConfig::kilobytes(2)))
            .map(DsId::new(0), 0)
            .build(&w) // rest falls through to DRAM
            .unwrap();
        let eps = channel_endpoints(&mem, &w);
        assert!(eps.contains(&ChannelEndpoint::CpuToDram));
    }

    #[test]
    fn sram_has_no_dram_channel() {
        let w = benchmarks::compress();
        let mem = MemoryArchitecture::builder("sp")
            .module("sp", MemModuleKind::Sram { bytes: 4096 })
            .module("L1", MemModuleKind::Cache(CacheConfig::kilobytes(4)))
            .map(DsId::new(4), 0)
            .map_rest_to(1)
            .build(&w)
            .unwrap();
        let eps = channel_endpoints(&mem, &w);
        let sram_dram = eps
            .iter()
            .any(|e| matches!(e, ChannelEndpoint::ModuleToDram(m) if *m == ModuleId::new(0)));
        assert!(!sram_dram, "scratchpads never talk to DRAM");
        // But the cache does.
        assert!(eps.contains(&ChannelEndpoint::ModuleToDram(ModuleId::new(1))));
    }

    #[test]
    fn shared_bus_baseline_is_valid() {
        let w = benchmarks::li();
        let mem = MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(8));
        let sys = SystemConfig::with_shared_bus(&w, mem).unwrap();
        assert!(sys.gate_cost() > 0);
        assert!(sys.cpu_channel(ModuleId::new(0)).is_some());
        assert!(sys.dram_channel(ModuleId::new(0)).is_some());
        assert!(sys.cpu_dram_channel().is_none());
    }

    #[test]
    fn channel_mismatch_detected() {
        let w = benchmarks::vocoder();
        let mem = MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(2));
        let conn = ConnectivityArchitecture::new(vec![Channel::on_chip("only_one")]);
        let err = SystemConfig::new(&w, mem, conn).unwrap_err();
        assert!(matches!(err, SystemError::ChannelMismatch { .. }));
    }

    #[test]
    fn describe_mentions_both_sides() {
        let w = benchmarks::vocoder();
        let mem = MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(2));
        let sys = SystemConfig::with_shared_bus(&w, mem).unwrap();
        let d = sys.describe();
        assert!(d.contains("cache"), "{d}");
        assert!(d.contains("ASB"), "{d}");
        assert!(d.contains('|'), "{d}");
    }

    #[test]
    fn endpoint_display() {
        assert_eq!(ChannelEndpoint::CpuToDram.to_string(), "CPU<->DRAM");
        assert_eq!(
            ChannelEndpoint::CpuToModule(ModuleId::new(0)).to_string(),
            "CPU<->m0"
        );
    }
}
