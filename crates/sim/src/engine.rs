//! The trace-replay simulation engine.
//!
//! Replays a workload trace through a [`SystemConfig`]: every access goes to
//! its serving memory module's behavioural model, element transfers move
//! over the connectivity link carrying the CPU↔module channel, and misses
//! additionally pay a DRAM transaction over the module↔DRAM channel. Reads
//! block the CPU (their latency feeds the average-memory-latency metric and
//! delays subsequent accesses); writes are posted but still occupy links and
//! energy. Link contention — the paper's "bus multiplexing, or bus
//! conflicts" — emerges from the reservation tables and arbiters in
//! `mce-connlib`.

use crate::stats::{ChannelStats, DsLatencyStats, ModuleStats, SimStats};
use crate::system::SystemConfig;
use mce_appmodel::{MemAccess, Workload};
use mce_connlib::{ChannelId, LinkState};
use mce_memlib::energy::{dram_transaction_nj, module_access_nj, CPU_INTERFACE_NJ};
use mce_memlib::{DramState, ModuleModel};
use mce_obs as obs;

/// Backpressure bound: posted (non-blocking) traffic may run at most this
/// many cycles ahead of the CPU on any link. When a link's backlog exceeds
/// the bound, the CPU stalls until it drains — modelling the finite write/
/// prefetch buffering of real systems. This also keeps the reservation
/// tables bounded, so heavily oversubscribed design points (which the paper
/// likewise observed as "designs exhibiting very bad performance") simulate
/// in linear time instead of degenerating.
pub const BACKPRESSURE_CYCLES: u64 = 256;

/// Mutable state of one simulation run. Create with [`Simulator::new`],
/// feed accesses in trace order with [`Simulator::step`], and read the
/// result from [`Simulator::finish`].
#[derive(Debug)]
pub struct Simulator<'a> {
    sys: &'a SystemConfig,
    workload: &'a Workload,
    /// Behavioural state per module (None for the DRAM slot — the DRAM is
    /// modelled by `dram` below so row state is shared by all requesters).
    modules: Vec<Option<Box<dyn ModuleModel>>>,
    links: Vec<LinkState>,
    dram: DramState,
    /// Master index of each channel within its link (for arbitration).
    channel_master: Vec<usize>,
    /// Per-link monotonic ready floor, keeping reservation-table calls in
    /// nondecreasing order even when posted writes reorder ready times.
    link_floor: Vec<u64>,
    now: u64,
    prev_tick: u64,
    module_accesses: Vec<u64>,
    module_hits: Vec<u64>,
    ds_accesses: Vec<u64>,
    ds_latency: Vec<u64>,
    accesses: u64,
    reads: u64,
    hits: u64,
    total_latency: u64,
    energy_nj: f64,
    /// Observability tallies, kept as plain fields on the hot path and
    /// flushed to the `mce-obs` counters once, in [`Simulator::finish`].
    stall_events: u64,
    stall_cycles: u64,
    backlog_highwater: u64,
}

impl<'a> Simulator<'a> {
    /// Prepares a cold simulation of `sys` for `workload`.
    pub fn new(sys: &'a SystemConfig, workload: &'a Workload) -> Self {
        let mem = sys.mem();
        let dram_id = mem.dram_id();
        let modules = mem
            .modules()
            .iter()
            .enumerate()
            .map(|(i, m)| {
                if i == dram_id.index() {
                    None
                } else {
                    Some(m.kind().instantiate())
                }
            })
            .collect();
        let conn = sys.conn();
        let links: Vec<LinkState> = conn
            .links()
            .iter()
            .enumerate()
            .map(|(j, l)| LinkState::new(*l.component(), conn.ports(mce_connlib::LinkId::new(j))))
            .collect();
        // Master index = position of the channel among its link's channels.
        let mut seen_per_link = vec![0usize; links.len()];
        let channel_master = (0..conn.channels().len())
            .map(|i| {
                let link = conn
                    .link_of(ChannelId::new(i))
                    .expect("validated system has full assignment");
                let m = seen_per_link[link.index()];
                seen_per_link[link.index()] += 1;
                m
            })
            .collect();
        let n_links = links.len();
        let n_modules = mem.modules().len();
        Simulator {
            sys,
            workload,
            modules,
            links,
            dram: DramState::new(mem.dram_config()),
            channel_master,
            link_floor: vec![0; n_links],
            now: 0,
            prev_tick: 0,
            module_accesses: vec![0; n_modules],
            module_hits: vec![0; n_modules],
            ds_accesses: vec![0; workload.len()],
            ds_latency: vec![0; workload.len()],
            accesses: 0,
            reads: 0,
            hits: 0,
            total_latency: 0,
            energy_nj: 0.0,
            stall_events: 0,
            stall_cycles: 0,
            backlog_highwater: 0,
        }
    }

    /// Current simulated time in cycles.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Schedules `bytes` on the link carrying `channel`, at the earliest
    /// nondecreasing time ≥ `ready`. Returns the completion cycle.
    fn link_transfer(&mut self, channel: ChannelId, ready: u64, bytes: u64) -> u64 {
        let link = self
            .sys
            .conn()
            .link_of(channel)
            .expect("validated system has full assignment");
        let floor = &mut self.link_floor[link.index()];
        let ready = ready.max(*floor);
        *floor = ready;
        let master = self.channel_master[channel.index()];
        self.links[link.index()]
            .transfer(ready, bytes, master)
            .complete
    }

    /// Performs one DRAM transaction and accounts its energy. Returns the
    /// DRAM-internal cycles.
    fn dram_transaction(&mut self, addr: mce_appmodel::Addr, bytes: u64) -> u32 {
        let misses_before = self.dram.row_misses();
        let cycles = self.dram.access_cycles(addr, bytes);
        let row_miss = self.dram.row_misses() > misses_before;
        self.energy_nj += dram_transaction_nj(bytes, row_miss);
        cycles
    }

    /// Demand-fetches `bytes` into `module` from its downstream store —
    /// the next-level cache for backed modules (the multi-level extension),
    /// or the off-chip DRAM — recursing down the (validated acyclic)
    /// backing chain on nested misses. Returns the completion cycle.
    fn fetch_downstream(
        &mut self,
        module: mce_memlib::ModuleId,
        addr: mce_appmodel::Addr,
        bytes: u64,
        ready: u64,
    ) -> u64 {
        let ch = self
            .sys
            .downstream_channel(module)
            .expect("a missing module always has a downstream channel");
        match self.sys.mem().backing_of(module) {
            None => {
                let dram_cycles = self.dram_transaction(addr, bytes);
                let bus_done = self.link_transfer(ch, ready, bytes);
                bus_done + dram_cycles as u64
            }
            Some(l2) => {
                self.energy_nj += module_access_nj(self.sys.mem().module(l2).kind());
                let resp = self.modules[l2.index()]
                    .as_mut()
                    .expect("backing module has a behavioural model")
                    .access(addr, mce_appmodel::AccessKind::Read, ready);
                let link_done = self.link_transfer(ch, ready, bytes);
                let mut done = link_done + resp.service_cycles as u64;
                if resp.demand_fill_bytes > 0 {
                    done = self.fetch_downstream(l2, addr, resp.demand_fill_bytes, done);
                }
                if resp.background_bytes > 0 {
                    self.background_downstream(l2, resp.background_bytes, done);
                }
                done
            }
        }
    }

    /// Schedules `module`'s posted (non-blocking) downstream traffic —
    /// prefetches and writebacks. Over an off-chip channel this is a DRAM
    /// transaction (energy included); over a module↔module channel the
    /// next-level cache absorbs it (its own evictions surface when it is
    /// accessed).
    fn background_downstream(&mut self, module: mce_memlib::ModuleId, bytes: u64, ready: u64) {
        if let Some(ch) = self.sys.downstream_channel(module) {
            let _ = self.link_transfer(ch, ready, bytes);
            if self.sys.mem().backing_of(module).is_none() {
                self.energy_nj += dram_transaction_nj(bytes, false);
            }
        }
    }

    /// Advances CPU time to the access's issue point (compute gap since the
    /// previous trace entry), without performing an access. Used by the
    /// time-sampling estimator for "off" periods.
    pub fn skip(&mut self, acc: &MemAccess) {
        self.now += acc.tick.saturating_sub(self.prev_tick);
        self.prev_tick = acc.tick;
    }

    /// Simulates one access; returns its memory latency in cycles.
    pub fn step(&mut self, acc: &MemAccess) -> u64 {
        self.now += acc.tick.saturating_sub(self.prev_tick);
        self.prev_tick = acc.tick;
        let issue = self.now;

        let mem = self.sys.mem();
        let serving = mem.serving_module(acc.ds);
        let elem = self.workload.data_structure(acc.ds).element_size();
        self.energy_nj += CPU_INTERFACE_NJ;

        let (done, on_chip) = if serving == mem.dram_id() {
            // Direct CPU<->DRAM traffic over the off-chip bus.
            let ch = self
                .sys
                .cpu_dram_channel()
                .expect("direct mapping implies a CPU<->DRAM channel");
            let bus_done = self.link_transfer(ch, issue, elem);
            let dram_cycles = self.dram_transaction(acc.addr, elem);
            (bus_done + dram_cycles as u64, false)
        } else {
            let module = mem.module(serving);
            self.energy_nj += module_access_nj(module.kind());
            let resp = self.modules[serving.index()]
                .as_mut()
                .expect("on-chip module has a behavioural model")
                .access(acc.addr, acc.kind, issue);

            // CPU <-> module element transfer.
            let cpu_ch = self
                .sys
                .cpu_channel(serving)
                .expect("on-chip module has a CPU channel");
            let cpu_done = self.link_transfer(cpu_ch, issue, elem);
            let served = cpu_done + resp.service_cycles as u64;

            let mut done = served;
            if resp.demand_fill_bytes > 0 {
                done = self.fetch_downstream(serving, acc.addr, resp.demand_fill_bytes, served);
            }
            if resp.background_bytes > 0 {
                self.background_downstream(serving, resp.background_bytes, done);
            }
            (done, resp.hit)
        };

        let latency = done.saturating_sub(issue);
        self.ds_accesses[acc.ds.index()] += 1;
        self.ds_latency[acc.ds.index()] += latency;
        self.module_accesses[serving.index()] += 1;
        if on_chip {
            self.module_hits[serving.index()] += 1;
        }
        self.accesses += 1;
        if acc.kind.is_read() {
            self.reads += 1;
            // Reads block the CPU.
            self.now = done;
        } else {
            // Writes are posted, but finite buffering applies backpressure:
            // the CPU stalls once any link's backlog exceeds the bound.
            let horizon: u64 = self
                .links
                .iter()
                .map(LinkState::last_completion)
                .max()
                .unwrap_or(0);
            let backlog = horizon.saturating_sub(self.now);
            if backlog > self.backlog_highwater {
                self.backlog_highwater = backlog;
            }
            if horizon > self.now + BACKPRESSURE_CYCLES {
                self.stall_events += 1;
                self.stall_cycles += horizon - BACKPRESSURE_CYCLES - self.now;
                self.now = horizon - BACKPRESSURE_CYCLES;
            }
        }
        if on_chip {
            self.hits += 1;
        }
        self.total_latency += latency;
        latency
    }

    /// Finalizes the run and produces the statistics.
    pub fn finish(self) -> SimStats {
        // Flush the run's observability tallies in one go (each call is a
        // no-op relaxed load when no sink is installed).
        obs::counter_add("sim.accesses_replayed", self.accesses);
        obs::counter_add("sim.backpressure_stalls", self.stall_events);
        obs::counter_add("sim.backpressure_stall_cycles", self.stall_cycles);
        obs::gauge_max("sim.posted_backlog_highwater", self.backlog_highwater);
        let conn = self.sys.conn();
        let link_energy: f64 = self.links.iter().map(LinkState::energy_nj).sum();
        let total_energy = self.energy_nj + link_energy;
        let links = self
            .links
            .iter()
            .enumerate()
            .map(|(j, l)| ChannelStats {
                name: conn.links()[j].name().to_owned(),
                transfers: l.transfers(),
                bytes: l.bytes(),
                busy_cycles: l.busy_cycles(),
            })
            .collect();
        let modules = self
            .sys
            .mem()
            .modules()
            .iter()
            .enumerate()
            .map(|(i, m)| ModuleStats {
                name: m.name().to_owned(),
                accesses: self.module_accesses[i],
                hits: self.module_hits[i],
            })
            .collect();
        let data_structures = self
            .workload
            .data_structures()
            .iter()
            .enumerate()
            .map(|(i, ds)| DsLatencyStats {
                name: ds.name().to_owned(),
                accesses: self.ds_accesses[i],
                total_latency: self.ds_latency[i],
            })
            .collect();
        SimStats {
            accesses: self.accesses,
            reads: self.reads,
            on_chip_hits: self.hits,
            avg_latency_cycles: if self.accesses == 0 {
                0.0
            } else {
                self.total_latency as f64 / self.accesses as f64
            },
            avg_energy_nj: if self.accesses == 0 {
                0.0
            } else {
                total_energy / self.accesses as f64
            },
            total_cycles: self.now,
            total_energy_nj: total_energy,
            links,
            modules,
            data_structures,
        }
    }
}

/// Fully simulates the first `trace_len` accesses of `workload` on `sys`.
///
/// This is the paper's Phase-II full simulation.
pub fn simulate(sys: &SystemConfig, workload: &Workload, trace_len: usize) -> SimStats {
    simulate_trace(sys, workload, workload.trace(trace_len))
}

/// Replays an arbitrary access stream — e.g. one captured externally and
/// loaded with [`mce_appmodel::trace_io::read_trace`] — through `sys`.
///
/// `workload` supplies the data-structure metadata (element sizes, the
/// DS→module mapping domain); the stream's [`DsId`](mce_appmodel::DsId)s
/// must refer to it, and ticks must be nondecreasing.
pub fn simulate_trace<I>(sys: &SystemConfig, workload: &Workload, trace: I) -> SimStats
where
    I: IntoIterator<Item = mce_appmodel::MemAccess>,
{
    let mut sim = Simulator::new(sys, workload);
    for acc in trace {
        sim.step(&acc);
    }
    sim.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mce_appmodel::benchmarks;
    use mce_connlib::{ChannelId, ConnComponent, ConnComponentKind, ConnectivityArchitecture};
    use mce_memlib::{CacheConfig, MemModuleKind, MemoryArchitecture};

    const N: usize = 20_000;

    fn shared_bus(w: &Workload, mem: MemoryArchitecture) -> SystemConfig {
        SystemConfig::with_shared_bus(w, mem).expect("valid")
    }

    /// A system with dedicated CPU links and AHB off-chip-side sharing.
    fn fast_conn(w: &Workload, mem: MemoryArchitecture) -> SystemConfig {
        let channels = crate::system::channels_for(&mem, w);
        let mut conn = ConnectivityArchitecture::new(channels.clone());
        let ext = conn.add_link("ext0", ConnComponent::new(ConnComponentKind::OffChipBus));
        for (i, ch) in channels.iter().enumerate() {
            if ch.off_chip {
                conn.assign(ChannelId::new(i), ext);
            } else {
                let ded = conn.add_link(
                    format!("ded{i}"),
                    ConnComponent::new(ConnComponentKind::Dedicated),
                );
                conn.assign(ChannelId::new(i), ded);
            }
        }
        SystemConfig::new(w, mem, conn).expect("valid")
    }

    #[test]
    fn bigger_cache_is_faster_on_compress() {
        let w = benchmarks::compress();
        let small = simulate(
            &shared_bus(
                &w,
                MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(1)),
            ),
            &w,
            N,
        );
        let big = simulate(
            &shared_bus(
                &w,
                MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(32)),
            ),
            &w,
            N,
        );
        assert!(
            big.avg_latency_cycles < small.avg_latency_cycles,
            "32K {} vs 1K {}",
            big.avg_latency_cycles,
            small.avg_latency_cycles
        );
        assert!(big.miss_ratio() < small.miss_ratio());
    }

    #[test]
    fn dma_slashes_latency_on_pointer_chasing() {
        let w = benchmarks::li();
        let cache_only = MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(8));
        let with_dma = MemoryArchitecture::builder("dma")
            .module("L1", MemModuleKind::Cache(CacheConfig::kilobytes(8)))
            .module(
                "dma",
                MemModuleKind::SelfIndirectDma {
                    depth: 16,
                    element_bytes: 8,
                },
            )
            .map(mce_appmodel::DsId::new(0), 1) // cons_heap
            .map_rest_to(0)
            .build(&w)
            .unwrap();
        let base = simulate(&shared_bus(&w, cache_only), &w, N);
        let dma = simulate(&shared_bus(&w, with_dma), &w, N);
        assert!(
            dma.avg_latency_cycles < base.avg_latency_cycles,
            "dma {} vs cache {}",
            dma.avg_latency_cycles,
            base.avg_latency_cycles
        );
    }

    #[test]
    fn connectivity_choice_changes_latency_same_memory() {
        let w = benchmarks::compress();
        let mem = MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(8));
        let slow = simulate(&shared_bus(&w, mem.clone()), &w, N);
        let fast = simulate(&fast_conn(&w, mem), &w, N);
        assert!(
            fast.avg_latency_cycles < slow.avg_latency_cycles,
            "fast {} vs slow {}",
            fast.avg_latency_cycles,
            slow.avg_latency_cycles
        );
    }

    #[test]
    fn energy_dominated_by_memory_not_connectivity() {
        // The paper: "the connectivity consumes a small amount of power
        // compared to the memory modules".
        let w = benchmarks::compress();
        let mem = MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(8));
        let sys = shared_bus(&w, mem);
        let mut sim = Simulator::new(&sys, &w);
        for acc in w.trace(N) {
            sim.step(&acc);
        }
        let link_energy: f64 = sim.links.iter().map(LinkState::energy_nj).sum();
        let stats = sim.finish();
        assert!(
            link_energy < 0.25 * stats.total_energy_nj,
            "connectivity {} of total {}",
            link_energy,
            stats.total_energy_nj
        );
    }

    #[test]
    fn stats_are_internally_consistent() {
        let w = benchmarks::vocoder();
        let sys = shared_bus(
            &w,
            MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(4)),
        );
        let s = simulate(&sys, &w, N);
        assert_eq!(s.accesses, N as u64);
        assert!(s.reads <= s.accesses);
        assert!(s.on_chip_hits <= s.accesses);
        assert!(s.total_cycles > 0);
        assert!(s.avg_latency_cycles >= 1.0);
        assert!(s.total_energy_nj > 0.0);
        assert_eq!(s.links.len(), sys.conn().links().len());
    }

    #[test]
    fn simulation_is_deterministic() {
        let w = benchmarks::li();
        let sys = shared_bus(
            &w,
            MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(4)),
        );
        let a = simulate(&sys, &w, 5_000);
        let b = simulate(&sys, &w, 5_000);
        assert_eq!(a, b);
    }

    #[test]
    fn vocoder_is_faster_than_compress_on_same_system() {
        // Stream-dominated traffic with small hot state should behave far
        // better than pointer chasing on an identical memory system.
        let vw = benchmarks::vocoder();
        let cw = benchmarks::compress();
        let v = simulate(
            &shared_bus(
                &vw,
                MemoryArchitecture::cache_only(&vw, CacheConfig::kilobytes(4)),
            ),
            &vw,
            N,
        );
        let c = simulate(
            &shared_bus(
                &cw,
                MemoryArchitecture::cache_only(&cw, CacheConfig::kilobytes(4)),
            ),
            &cw,
            N,
        );
        assert!(
            v.avg_latency_cycles < c.avg_latency_cycles,
            "vocoder {} vs compress {}",
            v.avg_latency_cycles,
            c.avg_latency_cycles
        );
    }

    #[test]
    fn direct_dram_mapping_works() {
        let w = benchmarks::vocoder();
        let mem = MemoryArchitecture::builder("raw").build(&w).unwrap(); // everything off-chip
        let sys = shared_bus(&w, mem);
        let s = simulate(&sys, &w, 2_000);
        assert_eq!(s.on_chip_hits, 0);
        assert!((s.miss_ratio() - 1.0).abs() < 1e-12);
        assert!(s.avg_latency_cycles > 5.0);
    }

    #[test]
    fn per_module_stats_split_traffic() {
        let w = benchmarks::li();
        let mem = MemoryArchitecture::builder("dma")
            .module("L1", MemModuleKind::Cache(CacheConfig::kilobytes(8)))
            .module(
                "dma",
                MemModuleKind::SelfIndirectDma {
                    depth: 16,
                    element_bytes: 8,
                },
            )
            .map(mce_appmodel::DsId::new(0), 1)
            .map_rest_to(0)
            .build(&w)
            .unwrap();
        let sys = shared_bus(&w, mem);
        let s = simulate(&sys, &w, N);
        let by_name = |n: &str| s.modules.iter().find(|m| m.name == n).unwrap();
        let l1 = by_name("L1");
        let dma = by_name("dma");
        assert!(l1.accesses > 0);
        assert!(dma.accesses > 0);
        assert_eq!(
            s.modules.iter().map(|m| m.accesses).sum::<u64>(),
            s.accesses,
            "every access belongs to exactly one module"
        );
        assert!(
            dma.hit_ratio() > l1.hit_ratio(),
            "DMA should out-hit the cache on li"
        );
        assert_eq!(
            s.modules.iter().map(|m| m.hits).sum::<u64>(),
            s.on_chip_hits
        );
    }

    #[test]
    fn simulate_trace_matches_simulate() {
        let w = benchmarks::vocoder();
        let sys = shared_bus(
            &w,
            MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(2)),
        );
        let a = simulate(&sys, &w, 5_000);
        let collected: Vec<_> = w.trace(5_000).collect();
        let b = simulate_trace(&sys, &w, collected);
        assert_eq!(a, b);
    }

    #[test]
    fn external_trace_round_trips_through_csv() {
        let w = benchmarks::vocoder();
        let sys = shared_bus(
            &w,
            MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(2)),
        );
        let mut csv = Vec::new();
        mce_appmodel::write_trace(&mut csv, w.trace(3_000)).unwrap();
        let replayed = mce_appmodel::read_trace(csv.as_slice()).unwrap();
        let a = simulate(&sys, &w, 3_000);
        let b = simulate_trace(&sys, &w, replayed);
        assert_eq!(a, b, "CSV round trip must not change simulation results");
    }

    #[test]
    fn per_ds_latency_identifies_the_culprit() {
        // compress: the self-indirect hash table must show far worse
        // average latency than the stack-like locals on a cache-only
        // system.
        let w = benchmarks::compress();
        let sys = shared_bus(
            &w,
            MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(4)),
        );
        let s = simulate(&sys, &w, N);
        let by_name = |n: &str| {
            s.data_structures
                .iter()
                .find(|d| d.name == n)
                .unwrap_or_else(|| panic!("no ds {n}"))
        };
        let htab = by_name("htab");
        let locals = by_name("locals");
        assert!(
            htab.avg_latency() > 2.0 * locals.avg_latency(),
            "htab {} vs locals {}",
            htab.avg_latency(),
            locals.avg_latency()
        );
        assert_eq!(
            s.data_structures.iter().map(|d| d.accesses).sum::<u64>(),
            s.accesses
        );
    }

    #[test]
    fn zero_length_trace() {
        let w = benchmarks::vocoder();
        let sys = shared_bus(
            &w,
            MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(2)),
        );
        let s = simulate(&sys, &w, 0);
        assert_eq!(s.accesses, 0);
        assert_eq!(s.avg_latency_cycles, 0.0);
    }
}
