//! Simulation statistics.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Per-channel utilization numbers.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ChannelStats {
    /// Channel description (endpoint names).
    pub name: String,
    /// Transfers carried.
    pub transfers: u64,
    /// Bytes moved.
    pub bytes: u64,
    /// Cycles the carrying link was occupied by this system's traffic.
    pub busy_cycles: u64,
}

/// Per-memory-module utilization numbers.
///
/// Counters cover *CPU-demand* accesses: a backing module (an L2 in the
/// multi-level extension) that serves no data structure directly shows
/// zero here — its effect is visible in the per-link byte counters and in
/// the latency instead. This keeps `Σ modules.accesses == SimStats::accesses`.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ModuleStats {
    /// Module instance name.
    pub name: String,
    /// Accesses served by (or demanded of) the module.
    pub accesses: u64,
    /// Accesses served on-chip without a DRAM round trip.
    pub hits: u64,
}

impl ModuleStats {
    /// The module's local hit ratio (0.0 when unused).
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

/// Per-data-structure latency numbers: which application structure is
/// actually hurting.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DsLatencyStats {
    /// Data-structure name.
    pub name: String,
    /// Accesses issued to the structure.
    pub accesses: u64,
    /// Total memory latency its accesses accumulated, cycles.
    pub total_latency: u64,
}

impl DsLatencyStats {
    /// Average latency per access (0.0 when unused).
    pub fn avg_latency(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.accesses as f64
        }
    }
}

/// The metrics the exploration trades off, plus supporting detail.
///
/// `avg_latency_cycles` is the paper's "average memory latency, including
/// the latency due to the memory modules, as well as the latency due to the
/// connectivity" (cache misses, bus multiplexing, bus conflicts).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SimStats {
    /// Accesses simulated.
    pub accesses: u64,
    /// Read accesses.
    pub reads: u64,
    /// Accesses served on-chip ("hits" in the Figure 3 sense).
    pub on_chip_hits: u64,
    /// Average memory latency per access, cycles.
    pub avg_latency_cycles: f64,
    /// Average energy per access, nJ.
    pub avg_energy_nj: f64,
    /// Total simulated time, CPU cycles.
    pub total_cycles: u64,
    /// Total energy, nJ.
    pub total_energy_nj: f64,
    /// Per-link utilization (one entry per connectivity link).
    pub links: Vec<ChannelStats>,
    /// Per-memory-module counters (one entry per module, DRAM included).
    pub modules: Vec<ModuleStats>,
    /// Per-data-structure latency (one entry per structure).
    pub data_structures: Vec<DsLatencyStats>,
}

impl SimStats {
    /// Miss ratio in the paper's Figure 3 sense: the fraction of accesses
    /// that had to go off-chip.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            1.0 - self.on_chip_hits as f64 / self.accesses as f64
        }
    }

    /// Utilization of link `i` relative to total simulated time.
    pub fn link_utilization(&self, i: usize) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.links[i].busy_cycles as f64 / self.total_cycles as f64
        }
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses, avg latency {:.2} cyc, avg energy {:.2} nJ, miss ratio {:.3}",
            self.accesses,
            self.avg_latency_cycles,
            self.avg_energy_nj,
            self.miss_ratio()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_ratio_empty_is_zero() {
        assert_eq!(SimStats::default().miss_ratio(), 0.0);
    }

    #[test]
    fn miss_ratio_computation() {
        let s = SimStats {
            accesses: 100,
            on_chip_hits: 80,
            ..SimStats::default()
        };
        assert!((s.miss_ratio() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn utilization_guards_zero_time() {
        let s = SimStats {
            links: vec![ChannelStats {
                busy_cycles: 10,
                ..ChannelStats::default()
            }],
            ..SimStats::default()
        };
        assert_eq!(s.link_utilization(0), 0.0);
    }

    #[test]
    fn ds_latency_avg() {
        let d = DsLatencyStats {
            name: "htab".into(),
            accesses: 4,
            total_latency: 10,
        };
        assert!((d.avg_latency() - 2.5).abs() < 1e-12);
        assert_eq!(DsLatencyStats::default().avg_latency(), 0.0);
    }

    #[test]
    fn module_hit_ratio() {
        let m = ModuleStats {
            name: "L1".into(),
            accesses: 10,
            hits: 7,
        };
        assert!((m.hit_ratio() - 0.7).abs() < 1e-12);
        assert_eq!(ModuleStats::default().hit_ratio(), 0.0);
    }

    #[test]
    fn display_contains_metrics() {
        let s = SimStats {
            accesses: 10,
            avg_latency_cycles: 5.25,
            avg_energy_nj: 7.5,
            ..SimStats::default()
        };
        let out = s.to_string();
        assert!(out.contains("5.25"), "{out}");
        assert!(out.contains("7.5"), "{out}");
    }
}
