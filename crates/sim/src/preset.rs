//! Exploration scale presets.
//!
//! Every stage configuration in the workspace (`ApexConfig`,
//! `ConexConfig`, the bench experiment scales, the `mce` CLI's `--scale`
//! flag) offers the same two operating points, so the choice is one shared
//! enum instead of per-type `fast()` / `paper()` constructor pairs:
//!
//! * [`Preset::Fast`] — reduced traces and candidate caps; seconds per
//!   run, for tests and smoke checks.
//! * [`Preset::Paper`] — the configuration reproducing the paper's
//!   experiments.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// The two operating points every exploration configuration offers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Preset {
    /// Reduced traces and candidate caps — seconds per run.
    Fast,
    /// The full experiment configuration of the paper.
    Paper,
}

impl fmt::Display for Preset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Preset::Fast => "fast",
            Preset::Paper => "paper",
        })
    }
}

impl FromStr for Preset {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "fast" => Ok(Preset::Fast),
            "paper" => Ok(Preset::Paper),
            other => Err(format!("unknown preset `{other}` (fast|paper)")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_both_presets() {
        assert_eq!("fast".parse::<Preset>().unwrap(), Preset::Fast);
        assert_eq!("paper".parse::<Preset>().unwrap(), Preset::Paper);
    }

    #[test]
    fn rejects_unknown_preset() {
        let err = "medium".parse::<Preset>().unwrap_err();
        assert!(err.contains("medium"), "{err}");
        assert!(err.contains("fast|paper"), "{err}");
    }

    #[test]
    fn display_round_trips() {
        for p in [Preset::Fast, Preset::Paper] {
            assert_eq!(p.to_string().parse::<Preset>().unwrap(), p);
        }
    }
}
