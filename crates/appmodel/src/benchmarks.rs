//! The paper's three evaluation workloads, as synthetic models.
//!
//! The paper evaluated SPEC95 `compress` and `li`, and a GSM `vocoder`
//! voice-encoding application, traced with SHADE on SPARC. We model each as
//! its dominant data structures with the access patterns those programs are
//! known for; the mixes are chosen so that the *memory behaviour* matches the
//! published characteristics:
//!
//! * `compress` and `li` are dominated by cache-hostile pointer/hash traffic,
//!   so their cache-only average latency is high and pattern-specific modules
//!   (self-indirect DMAs, stream buffers) buy an order of magnitude — the
//!   spread Table 1 shows (≈70 → ≈6 cycles).
//! * `vocoder` is a stream-dominated DSP kernel with small hot state, so its
//!   absolute latencies and costs are much smaller (Table 1's ≈16 → ≈3.4
//!   cycles at ≈6× lower cost).
//!
//! Each function returns a fresh [`Workload`]; pass a different seed via
//! [`WorkloadBuilder`] manually if you need trace variation.

use crate::data_structure::DataStructure;
use crate::pattern::AccessPattern;
use crate::workload::{Phase, Workload, WorkloadBuilder};

/// SPEC95 `compress` model: LZW compression.
///
/// Dominated by a large self-indirect hash table of code chains (the
/// `htab`/`codetab` pair), fed by an input byte stream and producing an
/// output code stream, with a small hot working set of locals.
///
/// ```
/// let w = mce_appmodel::benchmarks::compress();
/// assert_eq!(w.name(), "compress");
/// assert!(w.len() >= 5);
/// ```
pub fn compress() -> Workload {
    WorkloadBuilder::new("compress")
        .data_structure(
            // htab: hash-chain probing, value-dependent -> self-indirect.
            DataStructure::new("htab", 256 * 1024, 8, AccessPattern::SelfIndirect)
                .with_hotness(34.0)
                .with_write_fraction(0.30),
        )
        .data_structure(
            // codetab: indexed by hash results.
            DataStructure::new(
                "codetab",
                128 * 1024,
                4,
                AccessPattern::Indexed { index_stride: 4 },
            )
            .with_hotness(14.0)
            .with_write_fraction(0.25),
        )
        .data_structure(
            DataStructure::new(
                "input_stream",
                512 * 1024,
                1,
                AccessPattern::Stream { stride: 1 },
            )
            .with_hotness(18.0)
            .with_write_fraction(0.0),
        )
        .data_structure(
            DataStructure::new(
                "output_stream",
                256 * 1024,
                2,
                AccessPattern::Stream { stride: 2 },
            )
            .with_hotness(9.0)
            .with_write_fraction(1.0),
        )
        .data_structure(
            DataStructure::new("locals", 2 * 1024, 4, AccessPattern::Stack)
                .with_hotness(20.0)
                .with_write_fraction(0.45),
        )
        .data_structure(
            DataStructure::new(
                "globals",
                8 * 1024,
                4,
                AccessPattern::LoopNest {
                    working_set: 512,
                    reuse: 8,
                },
            )
            .with_hotness(5.0)
            .with_write_fraction(0.2),
        )
        .seed(0xC0_4E55)
        .compute_gap(2)
        .build()
}

/// SPEC95 `li` model: the xlisp interpreter.
///
/// Dominated by cons-cell pointer chasing over a garbage-collected heap —
/// the archetypal linked-list (self-indirect) workload — plus a symbol table
/// and an evaluation stack.
///
/// ```
/// let w = mce_appmodel::benchmarks::li();
/// assert_eq!(w.name(), "li");
/// ```
pub fn li() -> Workload {
    WorkloadBuilder::new("li")
        .data_structure(
            DataStructure::new("cons_heap", 512 * 1024, 8, AccessPattern::SelfIndirect)
                .with_hotness(42.0)
                .with_write_fraction(0.20),
        )
        .data_structure(
            DataStructure::new(
                "symbol_table",
                64 * 1024,
                8,
                AccessPattern::Indexed { index_stride: 8 },
            )
            .with_hotness(12.0)
            .with_write_fraction(0.10),
        )
        .data_structure(
            DataStructure::new("eval_stack", 4 * 1024, 4, AccessPattern::Stack)
                .with_hotness(26.0)
                .with_write_fraction(0.50),
        )
        .data_structure(
            DataStructure::new(
                "string_space",
                128 * 1024,
                1,
                AccessPattern::Stream { stride: 1 },
            )
            .with_hotness(8.0)
            .with_write_fraction(0.15),
        )
        .data_structure(
            DataStructure::new(
                "globals",
                4 * 1024,
                4,
                AccessPattern::LoopNest {
                    working_set: 256,
                    reuse: 6,
                },
            )
            .with_hotness(12.0)
            .with_write_fraction(0.2),
        )
        .seed(0x11_51)
        .compute_gap(2)
        .build()
}

/// GSM `vocoder` model: full-rate speech encoder.
///
/// A stream-dominated DSP kernel: speech frames in, coded frames out, with
/// small, intensely reused filter/LPC state. Little irregular traffic, so a
/// modest memory system already performs well — which is why the paper's
/// vocoder costs and latencies are several times smaller than compress/li.
///
/// ```
/// let w = mce_appmodel::benchmarks::vocoder();
/// assert_eq!(w.name(), "vocoder");
/// ```
pub fn vocoder() -> Workload {
    WorkloadBuilder::new("vocoder")
        .data_structure(
            DataStructure::new(
                "speech_in",
                128 * 1024,
                2,
                AccessPattern::Stream { stride: 2 },
            )
            .with_hotness(26.0)
            .with_write_fraction(0.0),
        )
        .data_structure(
            DataStructure::new(
                "frame_out",
                32 * 1024,
                1,
                AccessPattern::Stream { stride: 1 },
            )
            .with_hotness(8.0)
            .with_write_fraction(1.0),
        )
        .data_structure(
            DataStructure::new(
                "lpc_state",
                1024,
                2,
                AccessPattern::LoopNest {
                    working_set: 320,
                    reuse: 12,
                },
            )
            .with_hotness(34.0)
            .with_write_fraction(0.35),
        )
        .data_structure(
            DataStructure::new(
                "filter_taps",
                2 * 1024,
                2,
                AccessPattern::LoopNest {
                    working_set: 512,
                    reuse: 10,
                },
            )
            .with_hotness(22.0)
            .with_write_fraction(0.10),
        )
        .data_structure(
            DataStructure::new(
                "codebook",
                16 * 1024,
                2,
                AccessPattern::Indexed { index_stride: 2 },
            )
            .with_hotness(10.0)
            .with_write_fraction(0.0),
        )
        .seed(0x6537)
        .compute_gap(3)
        .build()
}

/// All three paper workloads, in Table 1 order.
pub fn all() -> Vec<Workload> {
    vec![compress(), li(), vocoder()]
}

/// ADPCM speech codec model (extended set, not in the paper's Table 1).
///
/// Even more stream-dominated than the GSM vocoder: per-sample encode with
/// a tiny predictor state. The cheapest architectures should already serve
/// it well, making it a useful lower-bound workload for regression tests.
pub fn adpcm() -> Workload {
    WorkloadBuilder::new("adpcm")
        .data_structure(
            DataStructure::new("pcm_in", 256 * 1024, 2, AccessPattern::Stream { stride: 2 })
                .with_hotness(35.0)
                .with_write_fraction(0.0),
        )
        .data_structure(
            DataStructure::new(
                "adpcm_out",
                64 * 1024,
                1,
                AccessPattern::Stream { stride: 1 },
            )
            .with_hotness(9.0)
            .with_write_fraction(1.0),
        )
        .data_structure(
            DataStructure::new(
                "predictor",
                256,
                2,
                AccessPattern::LoopNest {
                    working_set: 64,
                    reuse: 16,
                },
            )
            .with_hotness(40.0)
            .with_write_fraction(0.4),
        )
        .data_structure(
            DataStructure::new(
                "step_table",
                512,
                2,
                AccessPattern::Indexed { index_stride: 2 },
            )
            .with_hotness(16.0)
            .with_write_fraction(0.0),
        )
        .seed(0xADCC)
        .compute_gap(3)
        .build()
}

/// JPEG encoder model (extended set): a *phased* workload — block DCT over
/// the image, then quantization table sweeps, then Huffman coding over a
/// pointer-linked symbol table. The phase behaviour is what stresses the
/// time-sampling estimator.
pub fn jpeg() -> Workload {
    WorkloadBuilder::new("jpeg")
        .data_structure(
            // Image blocks: 8x8 tiles -> loop nest with moderate reuse.
            DataStructure::new(
                "image",
                512 * 1024,
                2,
                AccessPattern::LoopNest {
                    working_set: 128,
                    reuse: 4,
                },
            )
            .with_hotness(20.0)
            .with_write_fraction(0.1),
        )
        .data_structure(
            DataStructure::new(
                "dct_coeffs",
                4 * 1024,
                2,
                AccessPattern::LoopNest {
                    working_set: 128,
                    reuse: 8,
                },
            )
            .with_hotness(25.0)
            .with_write_fraction(0.5),
        )
        .data_structure(
            DataStructure::new(
                "quant_tables",
                256,
                2,
                AccessPattern::LoopNest {
                    working_set: 128,
                    reuse: 12,
                },
            )
            .with_hotness(10.0)
            .with_write_fraction(0.0),
        )
        .data_structure(
            DataStructure::new("huffman_tree", 32 * 1024, 8, AccessPattern::SelfIndirect)
                .with_hotness(18.0)
                .with_write_fraction(0.05),
        )
        .data_structure(
            DataStructure::new(
                "bitstream_out",
                128 * 1024,
                1,
                AccessPattern::Stream { stride: 1 },
            )
            .with_hotness(12.0)
            .with_write_fraction(1.0),
        )
        // DCT phase: image + coefficients; quantization: coeffs + tables;
        // entropy coding: huffman tree + output stream.
        .phase(Phase::new("dct", 4_000, vec![2.0, 1.5, 0.1, 0.0, 0.0]))
        .phase(Phase::new("quant", 2_000, vec![0.1, 2.0, 2.0, 0.0, 0.1]))
        .phase(Phase::new("entropy", 4_000, vec![0.0, 0.5, 0.1, 2.5, 2.0]))
        .seed(0x1BE6)
        .compute_gap(2)
        .build()
}

/// The extended (non-paper) workload models used by regression tests and
/// ablations.
pub fn extended() -> Vec<Workload> {
    vec![adpcm(), jpeg()]
}

/// A random but valid workload, for property-based testing of the whole
/// pipeline: 2–6 data structures with random patterns, footprints, element
/// sizes, hotness and write mixes, all drawn deterministically from `seed`.
pub fn random_workload(seed: u64) -> Workload {
    // splitmix64 stream over the seed: no rand dependency surface in the
    // public API, fully reproducible.
    let mut state = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut next = move || {
        let mut x = state;
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    };
    let n = 2 + (next() % 5) as usize;
    let mut builder = WorkloadBuilder::new(format!("random_{seed:x}"));
    for i in 0..n {
        let elem = 1u64 << (next() % 4); // 1..8 B
        let footprint = elem.max(1024 << (next() % 10)); // 1 KiB .. 512 KiB
        let pattern = match next() % 6 {
            0 => AccessPattern::Stream { stride: elem },
            1 => AccessPattern::SelfIndirect,
            2 => AccessPattern::Indexed { index_stride: elem },
            3 => AccessPattern::LoopNest {
                working_set: (64 << (next() % 5)).min(footprint),
                reuse: 2 + (next() % 8) as u32,
            },
            4 => AccessPattern::Random,
            _ => AccessPattern::Stack,
        };
        let hotness = 1.0 + (next() % 20) as f64;
        let write_fraction = (next() % 101) as f64 / 100.0;
        builder = builder.data_structure(
            DataStructure::new(format!("ds{i}"), footprint, elem, pattern)
                .with_hotness(hotness)
                .with_write_fraction(write_fraction),
        );
    }
    builder.seed(next()).build()
}

/// A synthetic mixed workload used by extended tests and ablations: equal
/// parts of every pattern class. Not part of the paper's evaluation.
pub fn synthetic_mix(seed: u64) -> Workload {
    WorkloadBuilder::new("synthetic_mix")
        .data_structure(DataStructure::new(
            "stream",
            64 * 1024,
            4,
            AccessPattern::Stream { stride: 4 },
        ))
        .data_structure(DataStructure::new(
            "chase",
            64 * 1024,
            8,
            AccessPattern::SelfIndirect,
        ))
        .data_structure(DataStructure::new(
            "table",
            64 * 1024,
            4,
            AccessPattern::Indexed { index_stride: 4 },
        ))
        .data_structure(DataStructure::new(
            "loop",
            16 * 1024,
            4,
            AccessPattern::LoopNest {
                working_set: 1024,
                reuse: 4,
            },
        ))
        .data_structure(DataStructure::new(
            "rand",
            64 * 1024,
            4,
            AccessPattern::Random,
        ))
        .data_structure(DataStructure::new(
            "stack",
            4 * 1024,
            4,
            AccessPattern::Stack,
        ))
        .seed(seed)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::AccessPattern;
    use crate::profile::AccessProfile;

    #[test]
    fn all_returns_three_paper_workloads() {
        let names: Vec<String> = all().iter().map(|w| w.name().to_owned()).collect();
        assert_eq!(names, vec!["compress", "li", "vocoder"]);
    }

    #[test]
    fn compress_is_pointer_dominated() {
        let w = compress();
        let p = AccessProfile::from_workload(&w, 50_000);
        // Accesses attributable to self-indirect + indexed structures should
        // be a large share — that is what makes cache-only architectures slow.
        let hostile: u64 = w
            .data_structures()
            .iter()
            .enumerate()
            .filter(|(_, ds)| {
                matches!(
                    ds.pattern(),
                    AccessPattern::SelfIndirect | AccessPattern::Indexed { .. }
                )
            })
            .map(|(i, _)| p.ds_stats(crate::DsId::new(i)).accesses)
            .sum();
        assert!(
            hostile as f64 > 0.35 * p.total_accesses() as f64,
            "hostile share too small: {hostile}"
        );
    }

    #[test]
    fn vocoder_is_stream_dominated() {
        let w = vocoder();
        let p = AccessProfile::from_workload(&w, 50_000);
        let streamy: u64 = w
            .data_structures()
            .iter()
            .enumerate()
            .filter(|(_, ds)| {
                matches!(
                    ds.pattern(),
                    AccessPattern::Stream { .. } | AccessPattern::LoopNest { .. }
                )
            })
            .map(|(i, _)| p.ds_stats(crate::DsId::new(i)).accesses)
            .sum();
        assert!(
            streamy as f64 > 0.7 * p.total_accesses() as f64,
            "stream share too small: {streamy}"
        );
    }

    #[test]
    fn li_has_largest_pointer_footprint() {
        let w = li();
        let chase = w
            .data_structures()
            .iter()
            .find(|d| d.pattern() == AccessPattern::SelfIndirect)
            .expect("li must have a self-indirect structure");
        assert!(chase.footprint() >= 256 * 1024);
    }

    #[test]
    fn workloads_have_disjoint_layouts() {
        for w in all() {
            let layout = w.layout();
            for i in 0..layout.len() {
                for j in (i + 1)..layout.len() {
                    assert!(
                        !layout[i].overlaps(layout[j]),
                        "{}: {i} overlaps {j}",
                        w.name()
                    );
                }
            }
        }
    }

    #[test]
    fn adpcm_is_tiny_and_stream_heavy() {
        let w = adpcm();
        let p = AccessProfile::from_workload(&w, 20_000);
        let hot_state = w
            .data_structures()
            .iter()
            .position(|d| d.name() == "predictor")
            .unwrap();
        assert!(
            p.ds_stats(crate::DsId::new(hot_state)).accesses > 5_000,
            "predictor state must dominate"
        );
    }

    #[test]
    fn jpeg_phases_separate_traffic() {
        let w = jpeg();
        assert_eq!(w.phases().len(), 3);
        let trace: Vec<_> = w.trace(10_000).collect();
        let huffman = w
            .data_structures()
            .iter()
            .position(|d| d.name() == "huffman_tree")
            .unwrap();
        // The DCT phase (first 4000 accesses) never touches the tree.
        let early = trace[..4000]
            .iter()
            .filter(|a| a.ds == crate::DsId::new(huffman))
            .count();
        let late = trace[6000..]
            .iter()
            .filter(|a| a.ds == crate::DsId::new(huffman))
            .count();
        assert_eq!(early, 0);
        assert!(late > 500, "entropy phase must chase the tree: {late}");
    }

    #[test]
    fn extended_set_validates() {
        for w in extended() {
            assert!(w.len() >= 4);
            assert_eq!(w.trace(100).count(), 100);
        }
    }

    #[test]
    fn synthetic_mix_covers_all_patterns() {
        let w = synthetic_mix(1);
        assert_eq!(w.len(), 6);
        let traced: Vec<_> = w.trace(100).collect();
        assert_eq!(traced.len(), 100);
    }
}
