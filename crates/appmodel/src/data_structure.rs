//! Application data-structure descriptors.

use crate::pattern::AccessPattern;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a data structure within its [`Workload`](crate::Workload).
///
/// ```
/// use mce_appmodel::DsId;
/// assert_eq!(DsId::new(2).index(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DsId(usize);

impl DsId {
    /// Creates an id from a raw index.
    pub const fn new(index: usize) -> Self {
        DsId(index)
    }

    /// Returns the raw index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for DsId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ds{}", self.0)
    }
}

/// A modelled application data structure.
///
/// Workloads are composed of these: each one owns a contiguous footprint in
/// the address space, exhibits one [`AccessPattern`], and contributes a share
/// of the dynamic access stream proportional to its `hotness` weight.
///
/// Construct via [`DataStructure::new`] and refine with the builder-style
/// `with_*` methods:
///
/// ```
/// use mce_appmodel::{AccessPattern, DataStructure};
/// let ds = DataStructure::new("hash_table", 64 * 1024, 8, AccessPattern::SelfIndirect)
///     .with_hotness(3.0)
///     .with_write_fraction(0.25);
/// assert_eq!(ds.name(), "hash_table");
/// assert_eq!(ds.footprint(), 64 * 1024);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataStructure {
    name: String,
    footprint: u64,
    element_size: u64,
    pattern: AccessPattern,
    hotness: f64,
    write_fraction: f64,
}

impl DataStructure {
    /// Creates a data structure with hotness 1.0 and a 20 % write mix.
    ///
    /// # Panics
    ///
    /// Panics if `footprint` or `element_size` is zero, or if
    /// `element_size > footprint`.
    pub fn new(
        name: impl Into<String>,
        footprint: u64,
        element_size: u64,
        pattern: AccessPattern,
    ) -> Self {
        assert!(footprint > 0, "footprint must be non-zero");
        assert!(element_size > 0, "element size must be non-zero");
        assert!(element_size <= footprint, "element larger than footprint");
        DataStructure {
            name: name.into(),
            footprint,
            element_size,
            pattern,
            hotness: 1.0,
            write_fraction: 0.2,
        }
    }

    /// Sets the relative share of dynamic accesses this structure receives.
    ///
    /// # Panics
    ///
    /// Panics if `hotness` is not finite and positive.
    pub fn with_hotness(mut self, hotness: f64) -> Self {
        assert!(
            hotness.is_finite() && hotness > 0.0,
            "hotness must be positive"
        );
        self.hotness = hotness;
        self
    }

    /// Sets the fraction of accesses that are writes, in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn with_write_fraction(mut self, fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "write fraction must be in [0,1]"
        );
        self.write_fraction = fraction;
        self
    }

    /// The structure's name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Footprint in bytes.
    pub const fn footprint(&self) -> u64 {
        self.footprint
    }

    /// Element size in bytes (the access granularity).
    pub const fn element_size(&self) -> u64 {
        self.element_size
    }

    /// The access pattern.
    pub const fn pattern(&self) -> AccessPattern {
        self.pattern
    }

    /// Relative dynamic-access weight.
    pub const fn hotness(&self) -> f64 {
        self.hotness
    }

    /// Fraction of accesses that are writes.
    pub const fn write_fraction(&self) -> f64 {
        self.write_fraction
    }
}

impl fmt::Display for DataStructure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} B, {} B/elem, {}, hot={}, wr={:.0}%)",
            self.name,
            self.footprint,
            self.element_size,
            self.pattern,
            self.hotness,
            self.write_fraction * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults() {
        let ds = DataStructure::new("a", 1024, 4, AccessPattern::Random);
        assert_eq!(ds.hotness(), 1.0);
        assert_eq!(ds.write_fraction(), 0.2);
    }

    #[test]
    fn builder_overrides() {
        let ds = DataStructure::new("a", 1024, 4, AccessPattern::Random)
            .with_hotness(5.5)
            .with_write_fraction(0.0);
        assert_eq!(ds.hotness(), 5.5);
        assert_eq!(ds.write_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "element larger")]
    fn element_bigger_than_footprint_rejected() {
        let _ = DataStructure::new("a", 4, 8, AccessPattern::Random);
    }

    #[test]
    #[should_panic(expected = "hotness")]
    fn non_positive_hotness_rejected() {
        let _ = DataStructure::new("a", 8, 8, AccessPattern::Random).with_hotness(0.0);
    }

    #[test]
    #[should_panic(expected = "write fraction")]
    fn bad_write_fraction_rejected() {
        let _ = DataStructure::new("a", 8, 8, AccessPattern::Random).with_write_fraction(1.5);
    }

    #[test]
    fn ds_id_display() {
        assert_eq!(DsId::new(7).to_string(), "ds7");
    }
}
