//! Address newtypes.
//!
//! A trace address is a plain byte address in a flat virtual address space.
//! Newtypes keep byte addresses, block numbers and data-structure offsets
//! from being mixed up across the simulator crates ([C-NEWTYPE]).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Sub};

/// A byte address in the application's flat address space.
///
/// ```
/// use mce_appmodel::Addr;
/// let a = Addr::new(0x1000);
/// assert_eq!(a.offset(16).raw(), 0x1010);
/// assert_eq!(a.block(64), 0x40);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw byte value.
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw byte address.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the address advanced by `bytes`.
    ///
    /// # Panics
    ///
    /// Panics on address-space overflow (debug builds), matching integer
    /// addition semantics.
    pub const fn offset(self, bytes: u64) -> Self {
        Addr(self.0 + bytes)
    }

    /// Returns the block (line) number of this address for a block of
    /// `block_bytes` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `block_bytes` is zero.
    pub const fn block(self, block_bytes: u64) -> u64 {
        assert!(block_bytes > 0, "block size must be non-zero");
        self.0 / block_bytes
    }

    /// Returns the address aligned down to a multiple of `align` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `align` is zero.
    pub const fn align_down(self, align: u64) -> Self {
        assert!(align > 0, "alignment must be non-zero");
        Addr(self.0 - self.0 % align)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

impl From<Addr> for u64 {
    fn from(a: Addr) -> u64 {
        a.0
    }
}

impl Add<u64> for Addr {
    type Output = Addr;
    fn add(self, rhs: u64) -> Addr {
        Addr(self.0 + rhs)
    }
}

impl Sub<Addr> for Addr {
    type Output = u64;
    fn sub(self, rhs: Addr) -> u64 {
        self.0 - rhs.0
    }
}

/// A half-open byte range `[base, base + len)` in the address space.
///
/// Used to describe where a data structure lives so the memory architecture
/// can map addresses back to the module serving them.
///
/// ```
/// use mce_appmodel::{Addr, AddrRange};
/// let r = AddrRange::new(Addr::new(0x1000), 256);
/// assert!(r.contains(Addr::new(0x10ff)));
/// assert!(!r.contains(Addr::new(0x1100)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AddrRange {
    base: Addr,
    len: u64,
}

impl AddrRange {
    /// Creates a range starting at `base` spanning `len` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn new(base: Addr, len: u64) -> Self {
        assert!(len > 0, "address range must be non-empty");
        AddrRange { base, len }
    }

    /// The first address of the range.
    pub const fn base(self) -> Addr {
        self.base
    }

    /// The length of the range in bytes.
    pub const fn len(self) -> u64 {
        self.len
    }

    /// Always false: ranges are non-empty by construction.
    pub const fn is_empty(self) -> bool {
        false
    }

    /// One past the last address of the range.
    pub const fn end(self) -> Addr {
        Addr::new(self.base.raw() + self.len)
    }

    /// Returns true if `addr` falls inside the range.
    pub const fn contains(self, addr: Addr) -> bool {
        addr.raw() >= self.base.raw() && addr.raw() < self.base.raw() + self.len
    }

    /// Returns true if the two ranges share at least one byte.
    pub const fn overlaps(self, other: AddrRange) -> bool {
        self.base.raw() < other.end().raw() && other.base.raw() < self.end().raw()
    }

    /// Clamps an arbitrary offset into the range and returns the address.
    pub const fn at(self, offset: u64) -> Addr {
        Addr::new(self.base.raw() + offset % self.len)
    }
}

impl fmt::Display for AddrRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.base, self.end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_block_and_align() {
        let a = Addr::new(0x1234);
        assert_eq!(a.block(0x100), 0x12);
        assert_eq!(a.align_down(0x100), Addr::new(0x1200));
        assert_eq!(a.align_down(1), a);
    }

    #[test]
    fn addr_arithmetic() {
        let a = Addr::new(100);
        assert_eq!(a + 28, Addr::new(128));
        assert_eq!(Addr::new(128) - a, 28);
        assert_eq!(a.offset(5).raw(), 105);
    }

    #[test]
    fn addr_display_is_hex() {
        assert_eq!(Addr::new(0xdead).to_string(), "0xdead");
        assert_eq!(format!("{:x}", Addr::new(0xbeef)), "beef");
    }

    #[test]
    fn range_contains_boundaries() {
        let r = AddrRange::new(Addr::new(10), 10);
        assert!(r.contains(Addr::new(10)));
        assert!(r.contains(Addr::new(19)));
        assert!(!r.contains(Addr::new(20)));
        assert!(!r.contains(Addr::new(9)));
    }

    #[test]
    fn range_overlap() {
        let a = AddrRange::new(Addr::new(0), 100);
        let b = AddrRange::new(Addr::new(99), 10);
        let c = AddrRange::new(Addr::new(100), 10);
        assert!(a.overlaps(b));
        assert!(b.overlaps(a));
        assert!(!a.overlaps(c));
        assert!(!c.overlaps(a));
    }

    #[test]
    fn range_at_wraps() {
        let r = AddrRange::new(Addr::new(1000), 16);
        assert_eq!(r.at(0), Addr::new(1000));
        assert_eq!(r.at(15), Addr::new(1015));
        assert_eq!(r.at(16), Addr::new(1000));
        assert_eq!(r.at(35), Addr::new(1003));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_range_rejected() {
        let _ = AddrRange::new(Addr::new(0), 0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_block_rejected() {
        let _ = Addr::new(0).block(0);
    }
}
