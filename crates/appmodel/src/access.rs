//! Trace events: a single CPU memory access.

use crate::address::Addr;
use crate::data_structure::DsId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Whether an access reads or writes memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// A load: the CPU stalls until the data arrives, so read latency is the
    /// quantity the paper's "average memory latency" measures.
    Read,
    /// A store: buffered by the memory system but still occupies module and
    /// connectivity bandwidth.
    Write,
}

impl AccessKind {
    /// Returns true for [`AccessKind::Read`].
    pub const fn is_read(self) -> bool {
        matches!(self, AccessKind::Read)
    }

    /// Returns true for [`AccessKind::Write`].
    pub const fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AccessKind::Read => "R",
            AccessKind::Write => "W",
        })
    }
}

/// One memory access issued by the modelled CPU.
///
/// `tick` is the CPU-side issue time in processor cycles, counting the
/// compute work between accesses; the memory system simulator adds memory
/// and connectivity latency on top of it. `ds` identifies the application
/// data structure the access belongs to, which is what lets APEX map data
/// structures to memory modules and ConEx attribute bandwidth to channels.
///
/// ```
/// use mce_appmodel::{Addr, AccessKind, MemAccess, DsId};
/// let a = MemAccess::new(Addr::new(64), AccessKind::Read, DsId::new(0), 12);
/// assert!(a.kind.is_read());
/// assert_eq!(a.tick, 12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemAccess {
    /// Byte address accessed.
    pub addr: Addr,
    /// Read or write.
    pub kind: AccessKind,
    /// Owning data structure.
    pub ds: DsId,
    /// CPU issue time in cycles.
    pub tick: u64,
}

impl MemAccess {
    /// Creates an access event.
    pub const fn new(addr: Addr, kind: AccessKind, ds: DsId, tick: u64) -> Self {
        MemAccess {
            addr,
            kind,
            ds,
            tick,
        }
    }
}

impl fmt::Display for MemAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "@{} {} {} ds{}",
            self.tick,
            self.kind,
            self.addr,
            self.ds.index()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        assert!(AccessKind::Read.is_read());
        assert!(!AccessKind::Read.is_write());
        assert!(AccessKind::Write.is_write());
        assert!(!AccessKind::Write.is_read());
    }

    #[test]
    fn display_round_trip_info() {
        let a = MemAccess::new(Addr::new(0x40), AccessKind::Write, DsId::new(3), 7);
        let s = a.to_string();
        assert!(s.contains("W"), "{s}");
        assert!(s.contains("0x40"), "{s}");
        assert!(s.contains("ds3"), "{s}");
        assert!(s.contains("@7"), "{s}");
    }
}
