//! Access profiling.
//!
//! The ConEx algorithm's first step is "Profile the Memory Modules
//! Architecture" — measuring the bandwidth each communication channel needs.
//! An [`AccessProfile`] is the architecture-independent half of that: the
//! per-data-structure access counts and byte volumes from which per-channel
//! bandwidth is derived once a data-structure→module mapping is chosen.

use crate::access::MemAccess;
use crate::data_structure::DsId;
use crate::workload::Workload;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Per-data-structure dynamic statistics.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DsStats {
    /// Total accesses.
    pub accesses: u64,
    /// Read accesses.
    pub reads: u64,
    /// Write accesses.
    pub writes: u64,
    /// Bytes transferred (accesses × element size).
    pub bytes: u64,
}

impl DsStats {
    /// Average bandwidth in bytes per CPU cycle over `elapsed` cycles.
    ///
    /// Returns 0.0 for an empty window.
    pub fn bandwidth(&self, elapsed: u64) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.bytes as f64 / elapsed as f64
        }
    }
}

/// Summary of a workload's trace: per-structure counts and the elapsed CPU
/// time, from which channel bandwidth requirements are computed.
///
/// ```
/// use mce_appmodel::{benchmarks, AccessProfile};
/// let w = benchmarks::vocoder();
/// let profile = AccessProfile::from_workload(&w, 20_000);
/// assert_eq!(profile.total_accesses(), 20_000);
/// assert!(profile.elapsed_ticks() > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccessProfile {
    workload_name: String,
    per_ds: Vec<DsStats>,
    elapsed_ticks: u64,
}

impl AccessProfile {
    /// Profiles an access stream against its workload.
    ///
    /// # Panics
    ///
    /// Panics if the stream references a [`DsId`] outside the workload.
    pub fn from_trace<I>(workload: &Workload, trace: I) -> Self
    where
        I: IntoIterator<Item = MemAccess>,
    {
        let mut per_ds = vec![DsStats::default(); workload.len()];
        let mut last_tick = 0;
        for acc in trace {
            let stats = &mut per_ds[acc.ds.index()];
            stats.accesses += 1;
            if acc.kind.is_read() {
                stats.reads += 1;
            } else {
                stats.writes += 1;
            }
            stats.bytes += workload.data_structure(acc.ds).element_size();
            last_tick = last_tick.max(acc.tick);
        }
        AccessProfile {
            workload_name: workload.name().to_owned(),
            per_ds,
            elapsed_ticks: last_tick + 1,
        }
    }

    /// Convenience: generates a fresh `len`-access trace of `workload` and
    /// profiles it.
    pub fn from_workload(workload: &Workload, len: usize) -> Self {
        Self::from_trace(workload, workload.trace(len))
    }

    /// Name of the profiled workload.
    pub fn workload_name(&self) -> &str {
        &self.workload_name
    }

    /// Stats for one data structure.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn ds_stats(&self, id: DsId) -> DsStats {
        self.per_ds[id.index()]
    }

    /// Iterator over `(DsId, DsStats)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (DsId, DsStats)> + '_ {
        self.per_ds
            .iter()
            .enumerate()
            .map(|(i, s)| (DsId::new(i), *s))
    }

    /// Number of data structures profiled.
    pub fn len(&self) -> usize {
        self.per_ds.len()
    }

    /// True if the profile covers no data structures.
    pub fn is_empty(&self) -> bool {
        self.per_ds.is_empty()
    }

    /// Total accesses across all structures.
    pub fn total_accesses(&self) -> u64 {
        self.per_ds.iter().map(|s| s.accesses).sum()
    }

    /// Total bytes across all structures.
    pub fn total_bytes(&self) -> u64 {
        self.per_ds.iter().map(|s| s.bytes).sum()
    }

    /// CPU cycles spanned by the profiled window.
    pub fn elapsed_ticks(&self) -> u64 {
        self.elapsed_ticks
    }

    /// Average bandwidth demanded by data structure `id`, bytes/cycle.
    pub fn ds_bandwidth(&self, id: DsId) -> f64 {
        self.ds_stats(id).bandwidth(self.elapsed_ticks)
    }

    /// Data structures ordered by decreasing access count ("most active
    /// access patterns" in APEX terms).
    pub fn hottest_first(&self) -> Vec<DsId> {
        let mut ids: Vec<DsId> = (0..self.per_ds.len()).map(DsId::new).collect();
        ids.sort_by_key(|id| std::cmp::Reverse(self.per_ds[id.index()].accesses));
        ids
    }
}

impl fmt::Display for AccessProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "profile of {} over {} cycles ({} accesses):",
            self.workload_name,
            self.elapsed_ticks,
            self.total_accesses()
        )?;
        for (id, s) in self.iter() {
            writeln!(
                f,
                "  {id}: {} accesses ({} R / {} W), {} B, {:.4} B/cyc",
                s.accesses,
                s.reads,
                s.writes,
                s.bytes,
                s.bandwidth(self.elapsed_ticks)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data_structure::DataStructure;
    use crate::pattern::AccessPattern;
    use crate::workload::WorkloadBuilder;

    fn workload() -> Workload {
        WorkloadBuilder::new("p")
            .data_structure(
                DataStructure::new("a", 4096, 8, AccessPattern::Random).with_hotness(3.0),
            )
            .data_structure(
                DataStructure::new("b", 4096, 4, AccessPattern::Stream { stride: 4 })
                    .with_hotness(1.0),
            )
            .seed(11)
            .build()
    }

    #[test]
    fn counts_add_up() {
        let w = workload();
        let p = AccessProfile::from_workload(&w, 5000);
        assert_eq!(p.total_accesses(), 5000);
        let (a, b) = (p.ds_stats(DsId::new(0)), p.ds_stats(DsId::new(1)));
        assert_eq!(a.accesses + b.accesses, 5000);
        assert_eq!(a.reads + a.writes, a.accesses);
        assert_eq!(b.reads + b.writes, b.accesses);
    }

    #[test]
    fn bytes_use_element_size() {
        let w = workload();
        let p = AccessProfile::from_workload(&w, 1000);
        let a = p.ds_stats(DsId::new(0));
        let b = p.ds_stats(DsId::new(1));
        assert_eq!(a.bytes, a.accesses * 8);
        assert_eq!(b.bytes, b.accesses * 4);
    }

    #[test]
    fn hottest_first_ordering() {
        let w = workload();
        let p = AccessProfile::from_workload(&w, 10_000);
        let order = p.hottest_first();
        assert_eq!(order[0], DsId::new(0), "hotness 3.0 structure should lead");
    }

    #[test]
    fn bandwidth_is_positive_and_bounded() {
        let w = workload();
        let p = AccessProfile::from_workload(&w, 10_000);
        for (id, _) in p.iter() {
            let bw = p.ds_bandwidth(id);
            assert!(bw > 0.0);
            // Can't exceed element_size bytes per cycle per structure.
            assert!(bw <= 8.0);
        }
    }

    #[test]
    fn empty_trace_profile() {
        let w = workload();
        let p = AccessProfile::from_trace(&w, std::iter::empty());
        assert_eq!(p.total_accesses(), 0);
        assert_eq!(p.ds_bandwidth(DsId::new(0)), 0.0);
    }

    #[test]
    fn zero_elapsed_bandwidth_is_zero() {
        let s = DsStats {
            accesses: 5,
            reads: 5,
            writes: 0,
            bytes: 40,
        };
        assert_eq!(s.bandwidth(0), 0.0);
    }
}
