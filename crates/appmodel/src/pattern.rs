//! Access-pattern generators.
//!
//! The paper classifies application traffic by *access pattern*: streams,
//! self-indirect array/list references ("the array references which use the
//! current array element value to compute the index for the next array
//! element access"), indexed (A\[B\[i\]\]) references, loop nests with
//! temporal reuse, and irregular scalar traffic. APEX matches memory modules
//! to these patterns (stream buffers to streams, linked-list DMAs to
//! self-indirect traversals, SRAMs to hot small structures, caches to
//! everything with locality), so the generators here are what ultimately
//! drives the whole exploration.
//!
//! Every generator is deterministic given the workload seed, which keeps the
//! experiments and tests reproducible.

use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The access pattern a data structure exhibits.
///
/// ```
/// use mce_appmodel::AccessPattern;
/// let p = AccessPattern::Stream { stride: 4 };
/// assert_eq!(p.to_string(), "stream(stride=4)");
/// assert!(p.is_prefetchable());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Sequential walk with a fixed stride in bytes (e.g. input/output byte
    /// streams of `compress`, sample buffers of `vocoder`).
    Stream {
        /// Distance in bytes between consecutive accesses.
        stride: u64,
    },
    /// Value-dependent chasing: the value loaded at the current element
    /// determines the next index (linked lists, `li`'s cons cells,
    /// `compress`'s hash-chain probes). Modelled as a deterministic
    /// pseudo-random permutation walk over the footprint — cache-hostile but
    /// perfectly predictable to a module that understands the dependency
    /// (the paper's linked-list/self-indirect DMA).
    SelfIndirect,
    /// Two-level indexed access `A[B[i]]`: a sequential index stream plus a
    /// data access whose location is scattered over the footprint.
    Indexed {
        /// Element size of the sequential index array in bytes.
        index_stride: u64,
    },
    /// Loop nest sweeping a working set repeatedly before moving on: high
    /// temporal locality, the cache-friendly pattern.
    LoopNest {
        /// Bytes touched per reuse window.
        working_set: u64,
        /// Number of sweeps over a window before advancing to the next.
        reuse: u32,
    },
    /// Uniform random accesses over the footprint: irregular scalar and
    /// global traffic with little locality.
    Random,
    /// Stack-like access: random walk biased around a moving top-of-stack,
    /// small working set, very high locality.
    Stack,
}

impl AccessPattern {
    /// True if a pattern-specific memory module (stream buffer or
    /// self-indirect DMA) can prefetch this traffic ahead of the CPU.
    pub const fn is_prefetchable(self) -> bool {
        matches!(
            self,
            AccessPattern::Stream { .. }
                | AccessPattern::SelfIndirect
                | AccessPattern::Indexed { .. }
        )
    }

    /// True if the pattern exhibits enough spatial/temporal locality that a
    /// cache serves it well.
    pub const fn is_cache_friendly(self) -> bool {
        matches!(
            self,
            AccessPattern::Stream { .. } | AccessPattern::LoopNest { .. } | AccessPattern::Stack
        )
    }

    /// Creates the generator state for this pattern over a footprint of
    /// `footprint` bytes with elements of `element_size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `footprint` or `element_size` is zero.
    pub fn generator(self, footprint: u64, element_size: u64) -> PatternGen {
        assert!(footprint > 0, "footprint must be non-zero");
        assert!(element_size > 0, "element size must be non-zero");
        PatternGen {
            pattern: self,
            footprint,
            element_size,
            cursor: 0,
            aux: 0,
            sweep: 0,
        }
    }
}

impl fmt::Display for AccessPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessPattern::Stream { stride } => write!(f, "stream(stride={stride})"),
            AccessPattern::SelfIndirect => write!(f, "self-indirect"),
            AccessPattern::Indexed { index_stride } => write!(f, "indexed(idx={index_stride})"),
            AccessPattern::LoopNest { working_set, reuse } => {
                write!(f, "loop(ws={working_set},reuse={reuse})")
            }
            AccessPattern::Random => write!(f, "random"),
            AccessPattern::Stack => write!(f, "stack"),
        }
    }
}

/// Mutable state that produces the byte-offset sequence of one pattern.
///
/// Offsets are relative to the owning data structure's base address and are
/// always `< footprint`.
#[derive(Debug, Clone)]
pub struct PatternGen {
    pattern: AccessPattern,
    footprint: u64,
    element_size: u64,
    /// Current position (meaning depends on the pattern).
    cursor: u64,
    /// Secondary state: index cursor for `Indexed`, window base for
    /// `LoopNest`, stack depth for `Stack`.
    aux: u64,
    /// Sweep counter for `LoopNest`; phase bit for `Indexed`.
    sweep: u32,
}

/// A deterministic integer hash (splitmix64 finalizer) used to model
/// value-dependent next-element computation for self-indirect traffic.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl PatternGen {
    /// The pattern this generator realizes.
    pub fn pattern(&self) -> AccessPattern {
        self.pattern
    }

    /// Produces the next byte offset within the footprint.
    ///
    /// `rng` is only consulted by the stochastic patterns (`Random`,
    /// `Stack`, and the scatter half of `Indexed`); the regular patterns are
    /// purely a function of their own state so that a prefetching module can
    /// model them exactly.
    pub fn next_offset(&mut self, rng: &mut SmallRng) -> u64 {
        let fp = self.footprint;
        let elem = self.element_size;
        let n_elems = (fp / elem).max(1);
        match self.pattern {
            AccessPattern::Stream { stride } => {
                let off = self.cursor % fp;
                self.cursor = (self.cursor + stride.max(1)) % fp;
                off
            }
            AccessPattern::SelfIndirect => {
                let idx = self.cursor % n_elems;
                let off = idx * elem;
                // Next index is a deterministic function of the current
                // element "value" — a pseudo-random permutation walk.
                self.cursor = mix64(idx.wrapping_add(self.aux)) % n_elems;
                self.aux = self.aux.wrapping_add(1);
                off
            }
            AccessPattern::Indexed { index_stride } => {
                if self.sweep == 0 {
                    // Index read: sequential over the front of the footprint.
                    self.sweep = 1;
                    let off = self.aux % fp;
                    self.aux = (self.aux + index_stride.max(1)) % fp;
                    off
                } else {
                    // Data read: scattered.
                    self.sweep = 0;
                    (rng.gen::<u64>() % n_elems) * elem
                }
            }
            AccessPattern::LoopNest { working_set, reuse } => {
                let ws = working_set.clamp(elem, fp);
                let win_base = self.aux % fp;
                let off = (win_base + self.cursor) % fp;
                self.cursor += elem;
                if self.cursor >= ws {
                    self.cursor = 0;
                    self.sweep += 1;
                    if self.sweep >= reuse.max(1) {
                        self.sweep = 0;
                        self.aux = (self.aux + ws) % fp;
                    }
                }
                off
            }
            AccessPattern::Random => (rng.gen::<u64>() % n_elems) * elem,
            AccessPattern::Stack => {
                // Random walk of the stack depth, accesses near the top.
                if rng.gen::<bool>() {
                    self.aux = (self.aux + 1).min(n_elems.saturating_sub(1));
                } else {
                    self.aux = self.aux.saturating_sub(1);
                }
                self.aux * elem
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    fn offsets(p: AccessPattern, fp: u64, elem: u64, n: usize) -> Vec<u64> {
        let mut g = p.generator(fp, elem);
        let mut r = rng();
        (0..n).map(|_| g.next_offset(&mut r)).collect()
    }

    #[test]
    fn stream_is_sequential_and_wraps() {
        let o = offsets(AccessPattern::Stream { stride: 4 }, 16, 4, 6);
        assert_eq!(o, vec![0, 4, 8, 12, 0, 4]);
    }

    #[test]
    fn all_offsets_within_footprint() {
        let pats = [
            AccessPattern::Stream { stride: 8 },
            AccessPattern::SelfIndirect,
            AccessPattern::Indexed { index_stride: 4 },
            AccessPattern::LoopNest {
                working_set: 64,
                reuse: 3,
            },
            AccessPattern::Random,
            AccessPattern::Stack,
        ];
        for p in pats {
            for off in offsets(p, 1024, 8, 500) {
                assert!(off < 1024, "{p}: offset {off} out of footprint");
            }
        }
    }

    #[test]
    fn self_indirect_is_deterministic() {
        let a = offsets(AccessPattern::SelfIndirect, 4096, 8, 100);
        let b = offsets(AccessPattern::SelfIndirect, 4096, 8, 100);
        assert_eq!(a, b);
    }

    #[test]
    fn self_indirect_scatters() {
        // The walk should touch many distinct elements (cache-hostile).
        let o = offsets(AccessPattern::SelfIndirect, 8192, 8, 512);
        let distinct: std::collections::HashSet<_> = o.iter().collect();
        assert!(
            distinct.len() > 200,
            "only {} distinct offsets",
            distinct.len()
        );
    }

    #[test]
    fn loop_nest_reuses_window() {
        let o = offsets(
            AccessPattern::LoopNest {
                working_set: 32,
                reuse: 4,
            },
            4096,
            8,
            16,
        );
        // First window is offsets 0..32 in element steps, swept 4 times.
        assert_eq!(&o[0..4], &[0, 8, 16, 24]);
        assert_eq!(&o[4..8], &[0, 8, 16, 24]);
    }

    #[test]
    fn loop_nest_advances_after_reuse() {
        let o = offsets(
            AccessPattern::LoopNest {
                working_set: 16,
                reuse: 2,
            },
            4096,
            8,
            8,
        );
        assert_eq!(o, vec![0, 8, 0, 8, 16, 24, 16, 24]);
    }

    #[test]
    fn stack_offsets_are_element_aligned() {
        for off in offsets(AccessPattern::Stack, 4096, 16, 200) {
            assert_eq!(off % 16, 0);
        }
    }

    #[test]
    fn indexed_alternates_sequential_and_scatter() {
        let o = offsets(AccessPattern::Indexed { index_stride: 4 }, 4096, 4, 8);
        // Even positions are the sequential index stream.
        assert_eq!(o[0], 0);
        assert_eq!(o[2], 4);
        assert_eq!(o[4], 8);
        assert_eq!(o[6], 12);
    }

    #[test]
    fn pattern_classification() {
        assert!(AccessPattern::Stream { stride: 1 }.is_prefetchable());
        assert!(AccessPattern::SelfIndirect.is_prefetchable());
        assert!(!AccessPattern::Random.is_prefetchable());
        assert!(AccessPattern::LoopNest {
            working_set: 1,
            reuse: 1
        }
        .is_cache_friendly());
        assert!(!AccessPattern::SelfIndirect.is_cache_friendly());
    }

    #[test]
    #[should_panic(expected = "footprint")]
    fn zero_footprint_rejected() {
        let _ = AccessPattern::Random.generator(0, 4);
    }

    #[test]
    fn display_names() {
        assert_eq!(AccessPattern::SelfIndirect.to_string(), "self-indirect");
        assert_eq!(AccessPattern::Random.to_string(), "random");
    }
}
