//! Trace interchange: write and read access traces as CSV.
//!
//! The synthetic generators stand in for the paper's SHADE tracer, but a
//! user with *real* traces (from an ISS, an FPGA probe, a DBI tool) can
//! replay them through the same simulator: export the format below from
//! their tool and load it with [`read_trace`].
//!
//! Format: one access per line, `tick,kind,ds,addr_hex`, e.g.
//!
//! ```text
//! 0,R,0,10000040
//! 3,W,2,10003008
//! ```

use crate::access::{AccessKind, MemAccess};
use crate::address::Addr;
use crate::data_structure::DsId;
use mce_error::MceError;
use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};
use std::path::Path;

/// A malformed trace line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number.
    pub line: usize,
    /// What was wrong.
    pub reason: String,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.reason)
    }
}

impl Error for ParseTraceError {}

impl From<ParseTraceError> for MceError {
    fn from(e: ParseTraceError) -> Self {
        MceError::TraceParse {
            line: e.line,
            reason: e.reason,
        }
    }
}

/// Writes accesses as CSV to `out`.
///
/// A mutable reference to any writer works (`&mut Vec<u8>`, `&mut File`).
///
/// # Errors
///
/// Returns any I/O error from the writer.
pub fn write_trace<W, I>(mut out: W, trace: I) -> std::io::Result<()>
where
    W: Write,
    I: IntoIterator<Item = MemAccess>,
{
    for acc in trace {
        writeln!(
            out,
            "{},{},{},{:x}",
            acc.tick,
            acc.kind,
            acc.ds.index(),
            acc.addr.raw()
        )?;
    }
    Ok(())
}

/// Reads a CSV trace from `input`.
///
/// Blank lines and lines starting with `#` are ignored.
///
/// # Errors
///
/// Returns [`MceError::TraceParse`] naming the first malformed line, or
/// [`MceError::Io`] wrapping an I/O error from the reader.
pub fn read_trace<R: BufRead>(input: R) -> Result<Vec<MemAccess>, MceError> {
    let mut out = Vec::new();
    for (i, line) in input.lines().enumerate() {
        let line = line.map_err(|e| MceError::io("reading trace", e))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        out.push(parse_line(trimmed).map_err(|reason| ParseTraceError {
            line: i + 1,
            reason,
        })?);
    }
    Ok(out)
}

/// Reads a CSV trace from a file at `path`.
///
/// # Errors
///
/// Returns [`MceError::Io`] if the file cannot be opened or read, and
/// [`MceError::TraceParse`] for the first malformed line.
pub fn load_trace(path: impl AsRef<Path>) -> Result<Vec<MemAccess>, MceError> {
    let path = path.as_ref();
    let file = std::fs::File::open(path)
        .map_err(|e| MceError::io(format!("opening trace file `{}`", path.display()), e))?;
    read_trace(std::io::BufReader::new(file))
}

fn parse_line(line: &str) -> Result<MemAccess, String> {
    let mut parts = line.split(',');
    let mut next = |what: &str| {
        parts
            .next()
            .map(str::trim)
            .ok_or_else(|| format!("missing {what} field"))
    };
    let tick: u64 = next("tick")?
        .parse()
        .map_err(|e| format!("bad tick: {e}"))?;
    let kind = match next("kind")? {
        "R" | "r" => AccessKind::Read,
        "W" | "w" => AccessKind::Write,
        other => return Err(format!("bad kind `{other}` (expected R or W)")),
    };
    let ds: usize = next("ds")?.parse().map_err(|e| format!("bad ds: {e}"))?;
    let addr = u64::from_str_radix(next("addr")?, 16).map_err(|e| format!("bad addr: {e}"))?;
    if parts.next().is_some() {
        return Err("trailing fields".to_owned());
    }
    Ok(MemAccess::new(Addr::new(addr), kind, DsId::new(ds), tick))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;

    #[test]
    fn round_trip_preserves_trace() {
        let w = benchmarks::vocoder();
        let original: Vec<MemAccess> = w.trace(500).collect();
        let mut buf = Vec::new();
        write_trace(&mut buf, original.iter().copied()).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(original, back);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# header\n\n0,R,0,40\n   \n1,W,1,80\n";
        let t = read_trace(text.as_bytes()).unwrap();
        assert_eq!(t.len(), 2);
        assert!(t[0].kind.is_read());
        assert_eq!(t[1].addr.raw(), 0x80);
    }

    #[test]
    fn bad_kind_reports_line() {
        let text = "0,R,0,40\n1,X,0,44\n";
        let err = read_trace(text.as_bytes()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 2"), "{msg}");
        assert!(msg.contains("bad kind"), "{msg}");
    }

    #[test]
    fn bad_address_rejected() {
        let err = read_trace("0,R,0,zz\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("bad addr"));
    }

    #[test]
    fn missing_field_rejected() {
        let err = read_trace("0,R,0\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("missing addr"));
    }

    #[test]
    fn trailing_fields_rejected() {
        let err = read_trace("0,R,0,40,junk\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("trailing"));
    }

    #[test]
    fn parse_error_converts_to_mce_error() {
        let err = read_trace("0,X,0,40\n".as_bytes()).unwrap_err();
        assert!(matches!(err, MceError::TraceParse { line: 1, .. }), "{err}");
    }

    #[test]
    fn load_trace_missing_file_is_io_error() {
        let err = load_trace("/nonexistent/trace.csv").unwrap_err();
        assert!(matches!(err, MceError::Io { .. }), "{err}");
        assert!(err.to_string().contains("opening trace file"));
    }

    #[test]
    fn lowercase_kinds_accepted() {
        let t = read_trace("5,w,2,ff\n".as_bytes()).unwrap();
        assert!(t[0].kind.is_write());
        assert_eq!(t[0].ds.index(), 2);
        assert_eq!(t[0].tick, 5);
    }
}
