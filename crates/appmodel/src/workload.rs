//! Workloads: named sets of data structures that generate traces.

use crate::access::{AccessKind, MemAccess};
use crate::address::{Addr, AddrRange};
use crate::data_structure::{DataStructure, DsId};
use crate::pattern::PatternGen;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Base of the modelled data segment. Data structures are laid out
/// sequentially above it, each aligned to `LAYOUT_ALIGN`.
const LAYOUT_BASE: u64 = 0x1000_0000;
/// Alignment of each data structure's footprint.
const LAYOUT_ALIGN: u64 = 4096;

/// One execution phase of a workload: for `accesses` trace entries, each
/// data structure's hotness is multiplied by its entry in `hotness_scale`.
///
/// Real programs execute in phases (input, compute, output, GC, ...) — the
/// behaviour that makes the paper's time-sampling estimation both necessary
/// and error-prone. A workload with no declared phases behaves as a single
/// uniform phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    name: String,
    accesses: u64,
    hotness_scale: Vec<f64>,
}

impl Phase {
    /// Creates a phase spanning `accesses` trace entries with the given
    /// per-data-structure hotness multipliers.
    ///
    /// # Panics
    ///
    /// Panics if `accesses` is zero or a multiplier is not finite and
    /// non-negative.
    pub fn new(name: impl Into<String>, accesses: u64, hotness_scale: Vec<f64>) -> Self {
        assert!(accesses > 0, "phase must span at least one access");
        assert!(
            hotness_scale.iter().all(|s| s.is_finite() && *s >= 0.0),
            "hotness multipliers must be finite and non-negative"
        );
        Phase {
            name: name.into(),
            accesses,
            hotness_scale,
        }
    }

    /// The phase name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Trace entries the phase spans.
    pub const fn accesses(&self) -> u64 {
        self.accesses
    }

    /// The per-structure hotness multipliers.
    pub fn hotness_scale(&self) -> &[f64] {
        &self.hotness_scale
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "phase {} ({} accesses)", self.name, self.accesses)
    }
}

/// A modelled application: a set of [`DataStructure`]s, an interleaving
/// model, and a deterministic seed.
///
/// The workload is the drop-in replacement for the paper's SHADE-traced
/// SPEC95/GSM binaries: [`Workload::trace`] yields the memory-access stream
/// the simulator replays, and [`AccessProfile`](crate::AccessProfile)
/// summarizes it for the exploration stages.
///
/// ```
/// use mce_appmodel::{AccessPattern, DataStructure, WorkloadBuilder};
///
/// let w = WorkloadBuilder::new("demo")
///     .data_structure(DataStructure::new("buf", 4096, 4, AccessPattern::Stream { stride: 4 }))
///     .seed(7)
///     .build();
/// let n = w.trace(100).count();
/// assert_eq!(n, 100);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    name: String,
    data_structures: Vec<DataStructure>,
    seed: u64,
    /// Mean CPU compute cycles between successive memory accesses.
    compute_gap: u64,
    /// Execution phases, cycled through for the trace's whole length.
    /// Empty means one uniform phase.
    #[serde(default)]
    phases: Vec<Phase>,
}

/// Builder for [`Workload`] ([C-BUILDER]).
#[derive(Debug, Clone)]
pub struct WorkloadBuilder {
    name: String,
    data_structures: Vec<DataStructure>,
    seed: u64,
    compute_gap: u64,
    phases: Vec<Phase>,
}

impl WorkloadBuilder {
    /// Starts a builder for a workload called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        WorkloadBuilder {
            name: name.into(),
            data_structures: Vec::new(),
            seed: 0xC0DE,
            compute_gap: 2,
            phases: Vec::new(),
        }
    }

    /// Adds a data structure.
    pub fn data_structure(mut self, ds: DataStructure) -> Self {
        self.data_structures.push(ds);
        self
    }

    /// Sets the trace-generation seed (default `0xC0DE`).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the mean CPU compute cycles between accesses (default 2).
    pub fn compute_gap(mut self, cycles: u64) -> Self {
        self.compute_gap = cycles;
        self
    }

    /// Appends an execution phase. Phases are cycled through in declaration
    /// order for the whole trace; declaring none yields a single uniform
    /// phase.
    pub fn phase(mut self, phase: Phase) -> Self {
        self.phases.push(phase);
        self
    }

    /// Finalizes the workload.
    ///
    /// # Panics
    ///
    /// Panics if no data structure was added, or if a phase's multiplier
    /// vector does not match the number of data structures.
    pub fn build(self) -> Workload {
        assert!(
            !self.data_structures.is_empty(),
            "workload needs at least one data structure"
        );
        for p in &self.phases {
            assert_eq!(
                p.hotness_scale().len(),
                self.data_structures.len(),
                "phase {} must scale every data structure",
                p.name()
            );
        }
        Workload {
            name: self.name,
            data_structures: self.data_structures,
            seed: self.seed,
            compute_gap: self.compute_gap,
            phases: self.phases,
        }
    }
}

impl Workload {
    /// The workload's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The data structures, indexable by [`DsId`].
    pub fn data_structures(&self) -> &[DataStructure] {
        &self.data_structures
    }

    /// Returns the data structure for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this workload.
    pub fn data_structure(&self, id: DsId) -> &DataStructure {
        &self.data_structures[id.index()]
    }

    /// Number of data structures.
    pub fn len(&self) -> usize {
        self.data_structures.len()
    }

    /// Always false: workloads are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The deterministic seed traces are generated from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Mean CPU compute cycles between accesses.
    pub fn compute_gap(&self) -> u64 {
        self.compute_gap
    }

    /// The declared execution phases (empty = one uniform phase).
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// The address range assigned to each data structure.
    ///
    /// Structures are laid out sequentially from a fixed base, each aligned
    /// to 4 KiB, so ranges never overlap and address→structure lookup is
    /// unambiguous.
    pub fn layout(&self) -> Vec<AddrRange> {
        let mut base = LAYOUT_BASE;
        self.data_structures
            .iter()
            .map(|ds| {
                let range = AddrRange::new(Addr::new(base), ds.footprint());
                let padded = ds.footprint().div_ceil(LAYOUT_ALIGN) * LAYOUT_ALIGN;
                base += padded;
                range
            })
            .collect()
    }

    /// Finds which data structure owns `addr`, if any.
    pub fn owner_of(&self, addr: Addr) -> Option<DsId> {
        self.layout()
            .iter()
            .position(|r| r.contains(addr))
            .map(DsId::new)
    }

    /// Returns a deterministic trace of `len` accesses.
    ///
    /// Interleaving picks each access's data structure with probability
    /// proportional to its hotness; CPU issue ticks advance by
    /// `1 + U(0, 2·compute_gap)` cycles, so the mean inter-access gap is
    /// `1 + compute_gap`.
    pub fn trace(&self, len: usize) -> Trace {
        let rng = SmallRng::seed_from_u64(self.seed);
        let gens = self
            .data_structures
            .iter()
            .map(|ds| ds.pattern().generator(ds.footprint(), ds.element_size()))
            .collect();
        let mut trace = Trace {
            workload: self.clone(),
            layout: self.layout(),
            gens,
            rng,
            weights: Vec::new(),
            total_weight: 0.0,
            remaining: len,
            tick: 0,
            phase_idx: 0,
            phase_left: u64::MAX,
        };
        trace.enter_phase(0);
        trace
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "workload {} ({} data structures):",
            self.name,
            self.len()
        )?;
        for ds in &self.data_structures {
            writeln!(f, "  {ds}")?;
        }
        Ok(())
    }
}

/// Iterator over a workload's deterministic access stream.
///
/// Produced by [`Workload::trace`] ([C-ITER-TY] naming follows the producing
/// method's noun).
#[derive(Debug, Clone)]
pub struct Trace {
    workload: Workload,
    layout: Vec<AddrRange>,
    gens: Vec<PatternGen>,
    rng: SmallRng,
    /// Effective per-structure weights for the current phase.
    weights: Vec<f64>,
    total_weight: f64,
    remaining: usize,
    tick: u64,
    phase_idx: usize,
    phase_left: u64,
}

impl Trace {
    /// Loads phase `idx`'s effective weights (or the uniform weights when
    /// the workload declares no phases).
    fn enter_phase(&mut self, idx: usize) {
        let base = self.workload.data_structures();
        if self.workload.phases().is_empty() {
            self.weights = base.iter().map(|d| d.hotness()).collect();
            self.phase_left = u64::MAX;
        } else {
            let phase = &self.workload.phases()[idx % self.workload.phases().len()];
            self.weights = base
                .iter()
                .zip(phase.hotness_scale())
                .map(|(d, s)| d.hotness() * s)
                .collect();
            self.phase_left = phase.accesses();
        }
        self.phase_idx = idx;
        self.total_weight = self.weights.iter().sum();
        // A phase may zero everything out; fall back to uniform weights so
        // the trace can always progress.
        if self.total_weight <= 0.0 {
            self.weights = base.iter().map(|d| d.hotness()).collect();
            self.total_weight = self.weights.iter().sum();
        }
    }

    /// Picks the next data structure by hotness-weighted sampling under the
    /// current phase, advancing the phase schedule.
    fn pick_ds(&mut self) -> DsId {
        if self.phase_left == 0 {
            self.enter_phase(self.phase_idx + 1);
        }
        self.phase_left = self.phase_left.saturating_sub(1);
        let mut x = self.rng.gen::<f64>() * self.total_weight;
        for (i, w) in self.weights.iter().enumerate() {
            x -= w;
            if x <= 0.0 {
                return DsId::new(i);
            }
        }
        DsId::new(self.workload.len() - 1)
    }
}

impl Iterator for Trace {
    type Item = MemAccess;

    fn next(&mut self) -> Option<MemAccess> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let ds = self.pick_ds();
        let offset = self.gens[ds.index()].next_offset(&mut self.rng);
        let addr = self.layout[ds.index()].base().offset(offset);
        let write_fraction = self.workload.data_structure(ds).write_fraction();
        let kind = if self.rng.gen::<f64>() < write_fraction {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let gap = self.workload.compute_gap();
        let tick = self.tick;
        self.tick += 1 + self.rng.gen_range(0..=2 * gap);
        Some(MemAccess::new(addr, kind, ds, tick))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for Trace {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::AccessPattern;

    fn two_ds_workload() -> Workload {
        WorkloadBuilder::new("t")
            .data_structure(
                DataStructure::new("hot", 8192, 8, AccessPattern::Random).with_hotness(9.0),
            )
            .data_structure(
                DataStructure::new("cold", 4096, 4, AccessPattern::Stream { stride: 4 })
                    .with_hotness(1.0),
            )
            .seed(1)
            .build()
    }

    #[test]
    fn trace_is_deterministic() {
        let w = two_ds_workload();
        let a: Vec<_> = w.trace(1000).collect();
        let b: Vec<_> = w.trace(1000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn trace_respects_len_and_exact_size() {
        let w = two_ds_workload();
        let t = w.trace(321);
        assert_eq!(t.len(), 321);
        assert_eq!(t.count(), 321);
    }

    #[test]
    fn layout_is_disjoint_and_aligned() {
        let w = two_ds_workload();
        let l = w.layout();
        assert_eq!(l.len(), 2);
        assert!(!l[0].overlaps(l[1]));
        assert_eq!(l[0].base().raw() % 4096, 0);
        assert_eq!(l[1].base().raw() % 4096, 0);
    }

    #[test]
    fn owner_of_maps_addresses_back() {
        let w = two_ds_workload();
        for acc in w.trace(500) {
            assert_eq!(w.owner_of(acc.addr), Some(acc.ds));
        }
    }

    #[test]
    fn hotness_controls_interleaving() {
        let w = two_ds_workload();
        let hot = w.trace(10_000).filter(|a| a.ds == DsId::new(0)).count();
        // Expect roughly 90 %; allow generous slack.
        assert!(hot > 8500 && hot < 9500, "hot count {hot}");
    }

    #[test]
    fn ticks_monotonically_increase() {
        let w = two_ds_workload();
        let mut last = None;
        for acc in w.trace(1000) {
            if let Some(prev) = last {
                assert!(acc.tick > prev);
            }
            last = Some(acc.tick);
        }
    }

    #[test]
    fn different_seed_different_trace() {
        let w1 = two_ds_workload();
        let w2 = WorkloadBuilder::new("t")
            .data_structure(
                DataStructure::new("hot", 8192, 8, AccessPattern::Random).with_hotness(9.0),
            )
            .data_structure(
                DataStructure::new("cold", 4096, 4, AccessPattern::Stream { stride: 4 })
                    .with_hotness(1.0),
            )
            .seed(2)
            .build();
        let a: Vec<_> = w1.trace(100).collect();
        let b: Vec<_> = w2.trace(100).collect();
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one data structure")]
    fn empty_workload_rejected() {
        let _ = WorkloadBuilder::new("empty").build();
    }

    #[test]
    fn phases_shift_hotness_over_time() {
        let w = WorkloadBuilder::new("phased")
            .data_structure(DataStructure::new("a", 4096, 4, AccessPattern::Random))
            .data_structure(DataStructure::new("b", 4096, 4, AccessPattern::Random))
            .phase(Phase::new("a_only", 1000, vec![1.0, 0.0]))
            .phase(Phase::new("b_only", 1000, vec![0.0, 1.0]))
            .seed(3)
            .build();
        let trace: Vec<_> = w.trace(2000).collect();
        let first_b = trace[..1000]
            .iter()
            .filter(|x| x.ds == DsId::new(1))
            .count();
        let second_a = trace[1000..]
            .iter()
            .filter(|x| x.ds == DsId::new(0))
            .count();
        assert_eq!(first_b, 0, "phase 1 must not touch b");
        assert_eq!(second_a, 0, "phase 2 must not touch a");
    }

    #[test]
    fn phases_cycle() {
        let w = WorkloadBuilder::new("cyclic")
            .data_structure(DataStructure::new("a", 4096, 4, AccessPattern::Random))
            .data_structure(DataStructure::new("b", 4096, 4, AccessPattern::Random))
            .phase(Phase::new("a", 100, vec![1.0, 0.0]))
            .phase(Phase::new("b", 100, vec![0.0, 1.0]))
            .build();
        let trace: Vec<_> = w.trace(400).collect();
        // Third window (200..300) repeats phase "a".
        assert!(trace[200..300].iter().all(|x| x.ds == DsId::new(0)));
    }

    #[test]
    fn all_zero_phase_falls_back_to_uniform() {
        let w = WorkloadBuilder::new("zeroed")
            .data_structure(DataStructure::new("a", 4096, 4, AccessPattern::Random))
            .phase(Phase::new("dead", 10, vec![0.0]))
            .build();
        assert_eq!(w.trace(20).count(), 20, "trace must still progress");
    }

    #[test]
    fn phaseless_workload_unchanged() {
        let w = two_ds_workload();
        assert!(w.phases().is_empty());
        assert_eq!(w.trace(100).count(), 100);
    }

    #[test]
    #[should_panic(expected = "must scale every data structure")]
    fn phase_scale_arity_checked() {
        let _ = WorkloadBuilder::new("bad")
            .data_structure(DataStructure::new("a", 4096, 4, AccessPattern::Random))
            .phase(Phase::new("p", 10, vec![1.0, 2.0]))
            .build();
    }

    #[test]
    #[should_panic(expected = "at least one access")]
    fn empty_phase_rejected() {
        let _ = Phase::new("p", 0, vec![1.0]);
    }

    #[test]
    fn write_fraction_realized() {
        let w = WorkloadBuilder::new("wr")
            .data_structure(
                DataStructure::new("d", 4096, 4, AccessPattern::Random).with_write_fraction(0.5),
            )
            .build();
        let writes = w.trace(10_000).filter(|a| a.kind.is_write()).count();
        assert!((4500..5500).contains(&writes), "writes {writes}");
    }
}
