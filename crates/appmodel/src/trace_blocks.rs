//! Block-compiled traces: the trace generator's output, pre-decoded once
//! into contiguous structure-of-arrays blocks.
//!
//! The synthetic [`Trace`](crate::Trace) iterator is cheap per access but
//! not free: every `next()` runs the pattern generators, the phase
//! schedule and the PRNG. The exploration replays the *same* trace through
//! hundreds of candidate architectures, so regenerating it per candidate
//! multiplies that cost by the candidate count. [`TraceBlocks::compile`]
//! decodes the trace once into four flat arrays (address, kind, data
//! structure, tick) that replay workers share immutably (`Arc`) and scan
//! in cache-friendly [`BLOCK_LEN`]-sized batches.
//!
//! Because the generators' state never depends on the requested length, a
//! trace of length `n` is an exact prefix of a trace of length `m ≥ n`:
//! blocks compiled at the longest length a pipeline needs serve every
//! shorter replay too ([`TraceBlocks::replay`] takes the length to replay).

use crate::access::{AccessKind, MemAccess};
use crate::address::Addr;
use crate::data_structure::DsId;
use crate::workload::Workload;
use std::ops::Range;

/// Accesses per replay batch. One block of the four arrays (21 KiB) fits
/// comfortably in an L1 data cache alongside the simulator's working set.
pub const BLOCK_LEN: usize = 1024;

/// A workload trace compiled to structure-of-arrays blocks.
///
/// ```
/// use mce_appmodel::{benchmarks, TraceBlocks};
///
/// let w = benchmarks::vocoder();
/// let blocks = TraceBlocks::compile(&w, 10_000);
/// assert_eq!(blocks.len(), 10_000);
/// // Replay is bit-identical to the generator, at any prefix length.
/// assert!(blocks.replay(500).eq(w.trace(500)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceBlocks {
    addrs: Vec<u64>,
    /// 0 = read, 1 = write.
    kinds: Vec<u8>,
    ds: Vec<u32>,
    ticks: Vec<u64>,
}

impl TraceBlocks {
    /// Decodes the first `trace_len` accesses of `workload` into blocks.
    pub fn compile(workload: &Workload, trace_len: usize) -> Self {
        let mut blocks = TraceBlocks {
            addrs: Vec::with_capacity(trace_len),
            kinds: Vec::with_capacity(trace_len),
            ds: Vec::with_capacity(trace_len),
            ticks: Vec::with_capacity(trace_len),
        };
        for acc in workload.trace(trace_len) {
            blocks.addrs.push(acc.addr.raw());
            blocks.kinds.push(acc.kind.is_write() as u8);
            blocks.ds.push(acc.ds.index() as u32);
            blocks.ticks.push(acc.tick);
        }
        blocks
    }

    /// Number of compiled accesses.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// True if no accesses were compiled.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Reconstructs access `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn get(&self, i: usize) -> MemAccess {
        let kind = if self.kinds[i] == 0 {
            AccessKind::Read
        } else {
            AccessKind::Write
        };
        MemAccess::new(
            Addr::new(self.addrs[i]),
            kind,
            DsId::new(self.ds[i] as usize),
            self.ticks[i],
        )
    }

    /// The batch index ranges covering the first `upto` accesses, each at
    /// most [`BLOCK_LEN`] long.
    ///
    /// # Panics
    ///
    /// Panics if `upto > len()` — the blocks were compiled too short for
    /// the requested replay.
    pub fn batches(&self, upto: usize) -> impl Iterator<Item = Range<usize>> {
        assert!(
            upto <= self.len(),
            "replay of {upto} accesses from blocks compiled with only {}",
            self.len()
        );
        (0..upto)
            .step_by(BLOCK_LEN.max(1))
            .map(move |start| start..(start + BLOCK_LEN).min(upto))
    }

    /// Replays the first `upto` accesses, reconstructed in order.
    ///
    /// # Panics
    ///
    /// Panics if `upto > len()`.
    pub fn replay(&self, upto: usize) -> impl Iterator<Item = MemAccess> + '_ {
        self.batches(upto).flatten().map(move |i| self.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;

    #[test]
    fn replay_matches_generator_exactly() {
        for w in [benchmarks::compress(), benchmarks::vocoder()] {
            let blocks = TraceBlocks::compile(&w, 5_000);
            let direct: Vec<MemAccess> = w.trace(5_000).collect();
            let replayed: Vec<MemAccess> = blocks.replay(5_000).collect();
            assert_eq!(direct, replayed, "{}", w.name());
        }
    }

    #[test]
    fn prefix_replay_matches_shorter_trace() {
        // The property the shared-blocks design rests on: a long
        // compilation serves any shorter replay bit-identically.
        let w = benchmarks::li();
        let blocks = TraceBlocks::compile(&w, 8_000);
        let short: Vec<MemAccess> = w.trace(1_234).collect();
        let replayed: Vec<MemAccess> = blocks.replay(1_234).collect();
        assert_eq!(short, replayed);
    }

    #[test]
    fn batches_cover_exactly_once() {
        let w = benchmarks::vocoder();
        let blocks = TraceBlocks::compile(&w, 3 * BLOCK_LEN + 7);
        let ranges: Vec<Range<usize>> = blocks.batches(blocks.len()).collect();
        assert_eq!(ranges.len(), 4);
        assert!(ranges.iter().all(|r| r.len() <= BLOCK_LEN));
        let mut next = 0;
        for r in ranges {
            assert_eq!(r.start, next, "contiguous");
            next = r.end;
        }
        assert_eq!(next, blocks.len());
    }

    #[test]
    fn get_reconstructs_kinds_and_ids() {
        let w = benchmarks::compress();
        let blocks = TraceBlocks::compile(&w, 2_000);
        for (i, acc) in w.trace(2_000).enumerate() {
            assert_eq!(blocks.get(i), acc);
        }
    }

    #[test]
    #[should_panic(expected = "compiled with only")]
    fn replay_past_compiled_length_panics() {
        let w = benchmarks::vocoder();
        let blocks = TraceBlocks::compile(&w, 100);
        let _ = blocks.batches(101);
    }

    #[test]
    fn empty_compile_is_empty() {
        let w = benchmarks::vocoder();
        let blocks = TraceBlocks::compile(&w, 0);
        assert!(blocks.is_empty());
        assert_eq!(blocks.batches(0).count(), 0);
    }
}
