//! # mce-appmodel — synthetic embedded application models
//!
//! This crate is the workload substrate of the ConEx reproduction. The
//! original paper (Grun/Dutt/Nicolau, DATE 2002) profiled SPEC95 `compress`
//! and `li` plus a GSM `vocoder`, compiled for SPARC and traced with SHADE.
//! Neither the binaries nor the tracer are available, and ConEx only ever
//! consumes two things from them:
//!
//! 1. a **memory-access trace** (virtual address, read/write, issuing data
//!    structure, CPU issue time), replayed through the memory + connectivity
//!    system simulator, and
//! 2. an **access profile** (per data structure access counts and bandwidth),
//!    from which the Bandwidth Requirement Graph is built.
//!
//! We therefore model each benchmark as its dominant *data structures*, each
//! with one of the access patterns the paper names — streams, self-indirect
//! (value-dependent) array/list traversals, indexed arrays, random scalar
//! traffic, loop nests with temporal locality — and generate deterministic
//! traces from them. See [`benchmarks`] for the three paper workloads.
//!
//! ## Example
//!
//! ```
//! use mce_appmodel::benchmarks;
//!
//! let workload = benchmarks::compress();
//! let trace: Vec<_> = workload.trace(10_000).collect();
//! assert_eq!(trace.len(), 10_000);
//! let profile = mce_appmodel::AccessProfile::from_trace(&workload, trace.iter().copied());
//! assert!(profile.total_accesses() == 10_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod address;
pub mod benchmarks;
pub mod data_structure;
pub mod pattern;
pub mod profile;
pub mod trace_blocks;
pub mod trace_io;
pub mod workload;

pub use access::{AccessKind, MemAccess};
pub use address::{Addr, AddrRange};
pub use data_structure::{DataStructure, DsId};
pub use pattern::AccessPattern;
pub use profile::{AccessProfile, DsStats};
pub use trace_blocks::{TraceBlocks, BLOCK_LEN};
pub use trace_io::{load_trace, read_trace, write_trace, ParseTraceError};
pub use workload::{Phase, Trace, Workload, WorkloadBuilder};
