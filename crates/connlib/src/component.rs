//! Connectivity components and their attribute tuples.

use crate::arbiter::ArbiterKind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The component classes of the default connectivity IP library.
///
/// These mirror the paper's library: dedicated and MUX-based connections for
/// low latency at high wire cost, the AMBA-style peripheral/system/
/// high-performance busses for shared on-chip transport at increasing
/// bandwidth and controller cost, and the off-chip bus crossing the chip
/// boundary to DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConnComponentKind {
    /// Point-to-point wires between exactly one pair of endpoints: minimal
    /// latency, longest wires (highest per-bit area and energy).
    Dedicated,
    /// A multiplexer sharing one set of wires among a few endpoints; near
    /// dedicated latency plus one select cycle.
    Mux,
    /// AMBA APB-style peripheral bus: narrow, unpipelined, cheap.
    AmbaApb,
    /// AMBA ASB-style system bus: 32-bit, unpipelined, arbitrated.
    AmbaAsb,
    /// AMBA AHB-style high-performance bus: 32-bit, pipelined, split
    /// transactions, expensive controller.
    AmbaAhb,
    /// The off-chip bus to DRAM: narrow and slow (pad-limited), shared by
    /// all off-chip traffic.
    OffChipBus,
}

impl ConnComponentKind {
    /// All on-chip kinds, cheapest controller first.
    pub const ON_CHIP: [ConnComponentKind; 5] = [
        ConnComponentKind::Dedicated,
        ConnComponentKind::Mux,
        ConnComponentKind::AmbaApb,
        ConnComponentKind::AmbaAsb,
        ConnComponentKind::AmbaAhb,
    ];

    /// The default parameter set for this kind.
    ///
    /// Latency/width/pipelining follow the qualitative ordering the paper
    /// describes (Section 4); gate and energy constants are the synthetic
    /// models documented in `DESIGN.md`.
    pub const fn params(self) -> ConnParams {
        match self {
            ConnComponentKind::Dedicated => ConnParams {
                width_bytes: 4,
                cycles_per_beat: 1,
                arbitration_cycles: 0,
                pipelined: true,
                split_transaction: false,
                max_ports: 1,
                outstanding: 1,
                base_gates: 500,
                gates_per_port: 300,
                wire_gates_per_bit: 120, // long point-to-point wires
                energy_per_transfer_nj: 0.25,
                energy_per_byte_nj: 0.012,
                off_chip: false,
                arbiter: ArbiterKind::FixedPriority,
            },
            ConnComponentKind::Mux => ConnParams {
                width_bytes: 4,
                cycles_per_beat: 1,
                arbitration_cycles: 1,
                pipelined: false,
                split_transaction: false,
                max_ports: 4,
                outstanding: 1,
                base_gates: 1_200,
                gates_per_port: 700,
                wire_gates_per_bit: 35,
                energy_per_transfer_nj: 0.18,
                energy_per_byte_nj: 0.010,
                off_chip: false,
                arbiter: ArbiterKind::FixedPriority,
            },
            ConnComponentKind::AmbaApb => ConnParams {
                width_bytes: 2,
                cycles_per_beat: 2,
                arbitration_cycles: 2,
                pipelined: false,
                split_transaction: false,
                max_ports: 8,
                outstanding: 1,
                base_gates: 2_500,
                gates_per_port: 400,
                wire_gates_per_bit: 12, // short shared trunk
                energy_per_transfer_nj: 0.06,
                energy_per_byte_nj: 0.006,
                off_chip: false,
                arbiter: ArbiterKind::FixedPriority,
            },
            ConnComponentKind::AmbaAsb => ConnParams {
                width_bytes: 4,
                cycles_per_beat: 2,
                arbitration_cycles: 2,
                pipelined: false,
                split_transaction: false,
                max_ports: 8,
                outstanding: 1,
                base_gates: 5_000,
                gates_per_port: 600,
                wire_gates_per_bit: 15,
                energy_per_transfer_nj: 0.10,
                energy_per_byte_nj: 0.007,
                off_chip: false,
                arbiter: ArbiterKind::FixedPriority,
            },
            ConnComponentKind::AmbaAhb => ConnParams {
                width_bytes: 4,
                cycles_per_beat: 1,
                arbitration_cycles: 2,
                pipelined: true,
                split_transaction: true,
                max_ports: 16,
                outstanding: 4,
                base_gates: 14_000,
                gates_per_port: 900,
                wire_gates_per_bit: 18, // wider control, burst signals
                energy_per_transfer_nj: 0.16,
                energy_per_byte_nj: 0.008,
                off_chip: false,
                arbiter: ArbiterKind::FixedPriority,
            },
            ConnComponentKind::OffChipBus => ConnParams {
                width_bytes: 2,
                cycles_per_beat: 2,
                arbitration_cycles: 1,
                pipelined: false,
                split_transaction: false,
                max_ports: 8,
                outstanding: 1,
                base_gates: 9_000, // pads and drivers
                gates_per_port: 500,
                wire_gates_per_bit: 0, // off-chip traces are board area
                energy_per_transfer_nj: 0.90,
                energy_per_byte_nj: 0.050,
                off_chip: true,
                arbiter: ArbiterKind::FixedPriority,
            },
        }
    }

    /// Short name used in architecture descriptions.
    pub const fn short_name(self) -> &'static str {
        match self {
            ConnComponentKind::Dedicated => "dedicated",
            ConnComponentKind::Mux => "MUX",
            ConnComponentKind::AmbaApb => "APB",
            ConnComponentKind::AmbaAsb => "ASB",
            ConnComponentKind::AmbaAhb => "AHB",
            ConnComponentKind::OffChipBus => "off-chip bus",
        }
    }
}

impl fmt::Display for ConnComponentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

/// The attribute tuple of a connectivity component — the paper's library
/// entry: latency, pipelining, parallelism, split-transaction support,
/// bitwidth, plus the cost and energy model constants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConnParams {
    /// Data width in bytes per beat.
    pub width_bytes: u32,
    /// Cycles per beat.
    pub cycles_per_beat: u32,
    /// Arbitration cycles per transaction when the component is shared.
    pub arbitration_cycles: u32,
    /// Overlapped address/data phases (back-to-back beats at 1-beat rate).
    pub pipelined: bool,
    /// Split transactions: a master can release the bus while waiting.
    pub split_transaction: bool,
    /// Maximum endpoints attachable.
    pub max_ports: u32,
    /// Concurrent outstanding transactions supported (>1 only with split).
    pub outstanding: u32,
    /// Controller gate cost.
    pub base_gates: u64,
    /// Gate cost per attached port.
    pub gates_per_port: u64,
    /// Wire area in gate-equivalents per data bit (models wire length:
    /// dedicated/MUX wires are long, bus trunks short — refs \[3,8\]).
    pub wire_gates_per_bit: u64,
    /// Energy per transaction, nJ.
    pub energy_per_transfer_nj: f64,
    /// Energy per transferred byte, nJ.
    pub energy_per_byte_nj: f64,
    /// True for components crossing the chip boundary.
    pub off_chip: bool,
    /// Arbitration policy when shared.
    pub arbiter: ArbiterKind,
}

/// A connectivity component: a kind plus (possibly customized) parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConnComponent {
    kind: ConnComponentKind,
    params: ConnParams,
}

impl ConnComponent {
    /// A component with the library-default parameters for `kind`.
    pub const fn new(kind: ConnComponentKind) -> Self {
        ConnComponent {
            kind,
            params: kind.params(),
        }
    }

    /// A component with customized parameters (e.g. a wider AHB).
    pub const fn with_params(kind: ConnComponentKind, params: ConnParams) -> Self {
        ConnComponent { kind, params }
    }

    /// The component kind.
    pub const fn kind(&self) -> ConnComponentKind {
        self.kind
    }

    /// The parameter tuple.
    pub const fn params(&self) -> &ConnParams {
        &self.params
    }

    /// Busy cycles on the component to move `bytes`; `shared` adds the
    /// arbitration overhead of a multi-master configuration.
    ///
    /// A pipelined component streams beats at one `cycles_per_beat` after
    /// the first; an unpipelined one pays the full beat time each beat.
    pub fn transfer_cycles(&self, bytes: u64, shared: bool) -> u32 {
        if bytes == 0 {
            return 0;
        }
        let p = &self.params;
        let beats = bytes.div_ceil(p.width_bytes as u64) as u32;
        let data = if p.pipelined {
            // Address/data overlap: first beat pays the full latency, the
            // rest stream every cycle.
            p.cycles_per_beat + beats.saturating_sub(1)
        } else {
            beats * p.cycles_per_beat
        };
        let arb = if shared { p.arbitration_cycles } else { 0 };
        arb + data
    }

    /// Gate cost of one instance serving `ports` endpoints.
    pub fn gate_cost(&self, ports: u32) -> u64 {
        let p = &self.params;
        p.base_gates
            + p.gates_per_port * ports as u64
            + p.wire_gates_per_bit * (p.width_bytes as u64 * 8) * ports.max(1) as u64
    }

    /// Energy of one transaction moving `bytes`, nJ.
    pub fn transfer_energy_nj(&self, bytes: u64) -> f64 {
        self.params.energy_per_transfer_nj + self.params.energy_per_byte_nj * bytes as f64
    }
}

impl fmt::Display for ConnComponent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}B wide{}{})",
            self.kind,
            self.params.width_bytes,
            if self.params.pipelined {
                ", pipelined"
            } else {
                ""
            },
            if self.params.split_transaction {
                ", split"
            } else {
                ""
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedicated_is_fastest_per_transfer() {
        let ded = ConnComponent::new(ConnComponentKind::Dedicated);
        let apb = ConnComponent::new(ConnComponentKind::AmbaApb);
        let asb = ConnComponent::new(ConnComponentKind::AmbaAsb);
        for bytes in [4u64, 8, 32] {
            assert!(ded.transfer_cycles(bytes, false) < apb.transfer_cycles(bytes, true));
            assert!(ded.transfer_cycles(bytes, false) <= asb.transfer_cycles(bytes, true));
        }
    }

    #[test]
    fn ahb_beats_asb_on_bursts() {
        let ahb = ConnComponent::new(ConnComponentKind::AmbaAhb);
        let asb = ConnComponent::new(ConnComponentKind::AmbaAsb);
        assert!(ahb.transfer_cycles(32, true) < asb.transfer_cycles(32, true));
    }

    #[test]
    fn apb_is_cheapest_on_chip_controller() {
        let apb = ConnComponent::new(ConnComponentKind::AmbaApb).gate_cost(2);
        for k in [ConnComponentKind::AmbaAsb, ConnComponentKind::AmbaAhb] {
            assert!(ConnComponent::new(k).gate_cost(2) > apb, "{k}");
        }
    }

    #[test]
    fn dedicated_wires_cost_more_than_apb_trunk() {
        // Per-port wire area dominates the dedicated link's cost.
        let ded = ConnComponent::new(ConnComponentKind::Dedicated);
        let apb = ConnComponent::new(ConnComponentKind::AmbaApb);
        assert!(ded.gate_cost(1) > apb.gate_cost(1));
    }

    #[test]
    fn zero_bytes_zero_cycles() {
        let c = ConnComponent::new(ConnComponentKind::AmbaAhb);
        assert_eq!(c.transfer_cycles(0, true), 0);
    }

    #[test]
    fn pipelining_amortizes_beats() {
        let ahb = ConnComponent::new(ConnComponentKind::AmbaAhb);
        // 32 bytes over 4-byte beats = 8 beats; pipelined: 1 + 7 = 8 + arb 2.
        assert_eq!(ahb.transfer_cycles(32, true), 10);
        let asb = ConnComponent::new(ConnComponentKind::AmbaAsb);
        // Unpipelined: 8 beats * 2 cycles + arb 2 = 18.
        assert_eq!(asb.transfer_cycles(32, true), 18);
    }

    #[test]
    fn unshared_skips_arbitration() {
        let asb = ConnComponent::new(ConnComponentKind::AmbaAsb);
        assert_eq!(
            asb.transfer_cycles(4, true) - asb.transfer_cycles(4, false),
            asb.params().arbitration_cycles
        );
    }

    #[test]
    fn off_chip_flag() {
        assert!(ConnComponentKind::OffChipBus.params().off_chip);
        for k in ConnComponentKind::ON_CHIP {
            assert!(!k.params().off_chip, "{k}");
        }
    }

    #[test]
    fn energy_scales_with_bytes() {
        let c = ConnComponent::new(ConnComponentKind::OffChipBus);
        assert!(c.transfer_energy_nj(32) > c.transfer_energy_nj(4));
    }

    #[test]
    fn split_implies_outstanding() {
        for k in ConnComponentKind::ON_CHIP {
            let p = k.params();
            if p.outstanding > 1 {
                assert!(p.split_transaction, "{k}: outstanding>1 needs split");
            }
        }
    }

    #[test]
    fn display_mentions_width() {
        let c = ConnComponent::new(ConnComponentKind::AmbaAhb);
        let s = c.to_string();
        assert!(s.contains("AHB"), "{s}");
        assert!(s.contains("pipelined"), "{s}");
    }
}
