//! Bus arbitration models.
//!
//! Shared connectivity components need an arbiter to decide which master
//! proceeds. The paper's library captures this as per-component arbitration
//! latency; the models here additionally make the *policy* explicit so that
//! fairness effects (round-robin), priority inversion (fixed priority) and
//! slot waiting (TDMA) are simulatable and testable.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Declarative arbitration policy, stored in a component's parameter tuple
/// ([`ConnParams::arbiter`](crate::ConnParams)); instantiated into a
/// stateful [`Arbiter`] per link at simulation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ArbiterKind {
    /// Fixed priority with the component's grant latency.
    #[default]
    FixedPriority,
    /// Rotating-token round robin.
    RoundRobin,
    /// Time-division multiple access with the given slot width.
    Tdma {
        /// Cycles per slot.
        slot_cycles: u32,
    },
}

impl ArbiterKind {
    /// Instantiates the runtime arbiter for a link with `ports` attached
    /// masters and the component's `grant_cycles` latency.
    pub fn instantiate(self, grant_cycles: u32, ports: u32) -> Arbiter {
        match self {
            ArbiterKind::FixedPriority => Arbiter::fixed(grant_cycles),
            ArbiterKind::RoundRobin => Arbiter::round_robin(grant_cycles.max(1)),
            ArbiterKind::Tdma { slot_cycles } => {
                Arbiter::tdma(slot_cycles.max(1), ports.max(1) as usize)
            }
        }
    }
}

impl fmt::Display for ArbiterKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArbiterKind::FixedPriority => f.write_str("fixed-priority"),
            ArbiterKind::RoundRobin => f.write_str("round-robin"),
            ArbiterKind::Tdma { slot_cycles } => write!(f, "TDMA({slot_cycles})"),
        }
    }
}

/// Arbitration policy of a shared component.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Arbiter {
    /// Lower master index wins; the configured grant delay applies whenever
    /// more than one port is attached.
    FixedPriority {
        /// Cycles to resolve a grant.
        grant_cycles: u32,
    },
    /// Rotating priority: the grant delay grows with the distance from the
    /// last-granted master, modelling the token walk.
    RoundRobin {
        /// Cycles per position the token must advance.
        cycles_per_hop: u32,
        /// Last granted master (internal state).
        last_granted: usize,
    },
    /// Time-division: master `m` may only start in its slot of a fixed
    /// schedule of `slot_cycles × num_masters` cycles.
    Tdma {
        /// Cycles per slot.
        slot_cycles: u32,
        /// Number of masters in the schedule.
        num_masters: usize,
    },
}

impl Arbiter {
    /// A fixed-priority arbiter with the component's grant latency.
    pub const fn fixed(grant_cycles: u32) -> Self {
        Arbiter::FixedPriority { grant_cycles }
    }

    /// A fresh round-robin arbiter.
    pub const fn round_robin(cycles_per_hop: u32) -> Self {
        Arbiter::RoundRobin {
            cycles_per_hop,
            last_granted: 0,
        }
    }

    /// A TDMA arbiter.
    ///
    /// # Panics
    ///
    /// Panics if `slot_cycles` or `num_masters` is zero.
    pub fn tdma(slot_cycles: u32, num_masters: usize) -> Self {
        assert!(slot_cycles > 0, "TDMA slot must be non-zero");
        assert!(num_masters > 0, "TDMA needs at least one master");
        Arbiter::Tdma {
            slot_cycles,
            num_masters,
        }
    }

    /// Cycles master `master` must wait from `now` before its transfer may
    /// issue, updating arbiter state.
    ///
    /// `contended` is false when the component has a single attached port
    /// (no arbitration needed at all).
    pub fn grant_delay(&mut self, master: usize, now: u64, contended: bool) -> u32 {
        if !contended {
            return 0;
        }
        match self {
            Arbiter::FixedPriority { grant_cycles } => *grant_cycles,
            Arbiter::RoundRobin {
                cycles_per_hop,
                last_granted,
            } => {
                let hops = if master >= *last_granted {
                    master - *last_granted
                } else {
                    // wrap-around distance in a ring of unknown size: use 1
                    1
                } as u32;
                *last_granted = master;
                hops.max(1) * *cycles_per_hop
            }
            Arbiter::Tdma {
                slot_cycles,
                num_masters,
            } => {
                let frame = *slot_cycles as u64 * *num_masters as u64;
                let slot_start = (master % *num_masters) as u64 * *slot_cycles as u64;
                let pos = now % frame;
                let wait = if pos <= slot_start {
                    slot_start - pos
                } else {
                    frame - pos + slot_start
                };
                wait as u32
            }
        }
    }
}

impl fmt::Display for Arbiter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Arbiter::FixedPriority { grant_cycles } => {
                write!(f, "fixed-priority({grant_cycles})")
            }
            Arbiter::RoundRobin { cycles_per_hop, .. } => {
                write!(f, "round-robin({cycles_per_hop})")
            }
            Arbiter::Tdma {
                slot_cycles,
                num_masters,
            } => {
                write!(f, "TDMA({slot_cycles}x{num_masters})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_is_free() {
        let mut a = Arbiter::fixed(3);
        assert_eq!(a.grant_delay(0, 100, false), 0);
    }

    #[test]
    fn fixed_priority_constant_delay() {
        let mut a = Arbiter::fixed(2);
        assert_eq!(a.grant_delay(0, 0, true), 2);
        assert_eq!(a.grant_delay(5, 99, true), 2);
    }

    #[test]
    fn round_robin_tracks_token() {
        let mut a = Arbiter::round_robin(1);
        let d1 = a.grant_delay(3, 0, true); // token walks 0 -> 3
        assert_eq!(d1, 3);
        let d2 = a.grant_delay(3, 10, true); // already at 3: minimum 1 hop
        assert_eq!(d2, 1);
        let d3 = a.grant_delay(1, 20, true); // wrap-around modelled as 1 hop
        assert_eq!(d3, 1);
    }

    #[test]
    fn tdma_waits_for_slot() {
        let mut a = Arbiter::tdma(4, 2); // frame of 8: m0 slot [0,4), m1 [4,8)
        assert_eq!(a.grant_delay(0, 0, true), 0);
        assert_eq!(a.grant_delay(1, 0, true), 4);
        assert_eq!(a.grant_delay(0, 5, true), 3, "wrap to next frame");
        assert_eq!(a.grant_delay(1, 4, true), 0);
    }

    #[test]
    fn tdma_slot_start_boundary() {
        let mut a = Arbiter::tdma(4, 2);
        assert_eq!(a.grant_delay(1, 4, true), 0);
        assert_eq!(a.grant_delay(1, 12, true), 0, "second frame slot start");
    }

    #[test]
    #[should_panic(expected = "at least one master")]
    fn tdma_zero_masters_rejected() {
        let _ = Arbiter::tdma(4, 0);
    }

    #[test]
    fn display_names() {
        assert_eq!(Arbiter::fixed(2).to_string(), "fixed-priority(2)");
        assert_eq!(Arbiter::tdma(4, 3).to_string(), "TDMA(4x3)");
    }
}
