//! # mce-connlib — connectivity IP library
//!
//! The connectivity components the paper's ConEx exploration draws from its
//! IP library: **dedicated point-to-point connections**, **MUX-based
//! connections**, the three **AMBA-style on-chip busses** (APB, ASB, AHB —
//! modelled after the peripheral, system and high-performance busses the
//! paper cites), and the **off-chip bus** to DRAM. Each component carries the
//! attribute tuple the paper's library stores: "resource usage, latency,
//! pipelining, parallelism, split transaction model, and bitwidth".
//!
//! Timing uses **reservation tables** (refs \[11,14,15\] in the paper):
//! transfers reserve the component's address/data-phase resources over time,
//! which captures pipelining, split transactions and resource conflicts.
//! Shared components add arbitration delay from an [`Arbiter`] model.
//!
//! ## Example
//!
//! ```
//! use mce_connlib::{ConnComponentKind, ConnectivityLibrary};
//!
//! let lib = ConnectivityLibrary::amba();
//! let ahb = lib.component(ConnComponentKind::AmbaAhb).expect("AHB in default library");
//! // A 32-byte cache-line fill over the 32-bit pipelined AHB:
//! assert!(ahb.transfer_cycles(32, true) < 20);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbiter;
pub mod arch;
pub mod component;
pub mod library;
pub mod reservation;
pub mod runtime;

pub use arbiter::{Arbiter, ArbiterKind};
pub use arch::{Channel, ChannelId, ConnArchError, ConnLink, ConnectivityArchitecture, LinkId};
pub use component::{ConnComponent, ConnComponentKind, ConnParams};
pub use library::ConnectivityLibrary;
pub use reservation::{OpPattern, ReservationTable};
pub use runtime::{LinkState, TransferTiming};
