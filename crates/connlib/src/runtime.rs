//! Runtime (per-simulation) state of connectivity links.
//!
//! A [`LinkState`] couples a component's reservation table with its arbiter
//! so the system simulator can ask, transfer by transfer, *when does this
//! move of N bytes start and finish* — with queueing delay from earlier
//! transfers, arbitration delay from sharing, and the pipelining behaviour
//! of the component all accounted for.

use crate::arbiter::Arbiter;
use crate::component::ConnComponent;
use crate::reservation::{OpPattern, ReservationTable};
use std::fmt;

/// When a scheduled transfer occupies the link and when its data arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferTiming {
    /// Cycle the transfer was granted the link.
    pub start: u64,
    /// Cycle the last byte arrives.
    pub complete: u64,
}

impl TransferTiming {
    /// Total latency from the ready time used at scheduling.
    pub fn latency_from(&self, ready: u64) -> u64 {
        self.complete.saturating_sub(ready)
    }
}

impl fmt::Display for TransferTiming {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}..{}]", self.start, self.complete)
    }
}

/// Mutable per-link simulation state.
#[derive(Debug, Clone)]
pub struct LinkState {
    component: ConnComponent,
    ports: u32,
    table: ReservationTable,
    arbiter: Arbiter,
    transfers: u64,
    bytes: u64,
    busy_cycles: u64,
    last_completion: u64,
}

impl LinkState {
    /// Creates runtime state for a link with `ports` attached channels,
    /// using the arbitration policy declared in the component's parameters.
    pub fn new(component: ConnComponent, ports: u32) -> Self {
        let p = component.params();
        let arbiter = p.arbiter.instantiate(p.arbitration_cycles, ports);
        Self::with_arbiter(component, ports, arbiter)
    }

    /// Creates runtime state with an explicit arbitration policy.
    pub fn with_arbiter(component: ConnComponent, ports: u32, arbiter: Arbiter) -> Self {
        // Split-transaction components expose `outstanding` independent
        // data-phase slots; others a single occupancy resource.
        let resources = component.params().outstanding.max(1) as usize;
        LinkState {
            component,
            ports,
            table: ReservationTable::new(resources),
            arbiter,
            transfers: 0,
            bytes: 0,
            busy_cycles: 0,
            last_completion: 0,
        }
    }

    /// The backing component.
    pub const fn component(&self) -> &ConnComponent {
        &self.component
    }

    /// Attached channel count.
    pub const fn ports(&self) -> u32 {
        self.ports
    }

    /// Transfers scheduled so far.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Bytes moved so far.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Cycles the link has been occupied so far.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Completion cycle of the latest-finishing transfer scheduled so far.
    ///
    /// The gap between this and the current ready time is the link's
    /// backlog; requesters with finite buffering stall (backpressure) when
    /// it grows too large.
    pub fn last_completion(&self) -> u64 {
        self.last_completion
    }

    /// Energy consumed so far, nJ.
    pub fn energy_nj(&self) -> f64 {
        // Per-transfer fixed cost + per-byte cost, from the component model.
        self.transfers as f64 * self.component.params().energy_per_transfer_nj
            + self.bytes as f64 * self.component.params().energy_per_byte_nj
    }

    /// Schedules a transfer of `bytes` requested by `master`, ready to
    /// start at `ready`. Returns when it starts and completes.
    ///
    /// Ready times must be nondecreasing across calls (trace order), which
    /// is what the reservation table's pruning assumes.
    pub fn transfer(&mut self, ready: u64, bytes: u64, master: usize) -> TransferTiming {
        if bytes == 0 {
            return TransferTiming {
                start: ready,
                complete: ready,
            };
        }
        let p = *self.component.params();
        let contended = self.ports > 1;
        let wait = self.arbiter.grant_delay(master, ready, contended) as u64;
        let beats = bytes.div_ceil(p.width_bytes as u64) as u32;
        // Occupancy: a pipelined bus streams one beat per cycle; an
        // unpipelined one holds the bus for the full beat time.
        let occupancy = if p.pipelined {
            beats
        } else {
            beats * p.cycles_per_beat
        };
        // Split-transaction components may start a transfer on any free
        // slot; the pattern targets resource 0 and earliest_start across
        // slots is emulated by trying each slot.
        let op = OpPattern::single(0, occupancy.max(1));
        let start = if self.table.num_resources() > 1 {
            self.table.advance_horizon(ready);
            let mut best = u64::MAX;
            let mut best_slot = 0;
            for slot in 0..self.table.num_resources() {
                let candidate = self
                    .table
                    .earliest_start(&OpPattern::single(slot, occupancy.max(1)), ready + wait);
                if candidate < best {
                    best = candidate;
                    best_slot = slot;
                }
            }
            let op = OpPattern::single(best_slot, occupancy.max(1));
            self.table.reserve(&op, best);
            best
        } else {
            self.table.schedule(&op, ready + wait)
        };
        // Completion adds the un-arbitrated transfer latency (arbitration
        // was already paid via the arbiter model).
        let complete = start + self.component.transfer_cycles(bytes, false) as u64;
        self.transfers += 1;
        self.bytes += bytes;
        self.busy_cycles += occupancy as u64;
        self.last_completion = self.last_completion.max(complete);
        TransferTiming { start, complete }
    }

    /// Clears all dynamic state.
    pub fn reset(&mut self) {
        self.table.clear();
        self.transfers = 0;
        self.bytes = 0;
        self.busy_cycles = 0;
        self.last_completion = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::ConnComponentKind;

    fn link(kind: ConnComponentKind, ports: u32) -> LinkState {
        LinkState::new(ConnComponent::new(kind), ports)
    }

    #[test]
    fn single_port_has_no_arbitration() {
        let mut l = link(ConnComponentKind::AmbaAsb, 1);
        let t = l.transfer(0, 4, 0);
        assert_eq!(t.start, 0);
        assert_eq!(t.complete, 2); // one 4B beat at 2 cycles
    }

    #[test]
    fn shared_bus_pays_arbitration() {
        let mut l = link(ConnComponentKind::AmbaAsb, 2);
        let t = l.transfer(0, 4, 0);
        assert_eq!(t.start, 2); // 2 arbitration cycles
        assert_eq!(t.complete, 4);
    }

    #[test]
    fn back_to_back_transfers_queue() {
        let mut l = link(ConnComponentKind::AmbaAsb, 1);
        let a = l.transfer(0, 32, 0); // 8 beats * 2 = 16 cycles occupancy
        let b = l.transfer(0, 4, 0);
        assert_eq!(a.start, 0);
        assert!(b.start >= 16, "second transfer must wait: {}", b.start);
    }

    #[test]
    fn pipelined_bus_has_higher_throughput() {
        let mut ahb = link(ConnComponentKind::AmbaAhb, 1);
        let mut asb = link(ConnComponentKind::AmbaAsb, 1);
        let mut ahb_done = 0;
        let mut asb_done = 0;
        for i in 0..10 {
            ahb_done = ahb.transfer(i, 32, 0).complete;
            asb_done = asb.transfer(i, 32, 0).complete;
        }
        assert!(ahb_done < asb_done, "AHB {ahb_done} vs ASB {asb_done}");
    }

    #[test]
    fn split_transactions_overlap() {
        // AHB supports 4 outstanding: simultaneous-ready transfers overlap
        // instead of fully serializing.
        let mut split = link(ConnComponentKind::AmbaAhb, 2);
        let t1 = split.transfer(0, 32, 0);
        let t2 = split.transfer(0, 32, 1);
        assert!(t2.start < t1.complete, "t2 {t2} should overlap t1 {t1}");
    }

    #[test]
    fn zero_byte_transfer_is_free() {
        let mut l = link(ConnComponentKind::Mux, 2);
        let t = l.transfer(7, 0, 0);
        assert_eq!(t.start, 7);
        assert_eq!(t.complete, 7);
        assert_eq!(l.transfers(), 0);
    }

    #[test]
    fn counters_accumulate() {
        let mut l = link(ConnComponentKind::OffChipBus, 1);
        l.transfer(0, 32, 0);
        l.transfer(50, 8, 0);
        assert_eq!(l.transfers(), 2);
        assert_eq!(l.bytes(), 40);
        assert!(l.busy_cycles() > 0);
        assert!(l.energy_nj() > 0.0);
    }

    #[test]
    fn energy_matches_component_model() {
        let mut l = link(ConnComponentKind::OffChipBus, 1);
        l.transfer(0, 32, 0);
        let expected = ConnComponent::new(ConnComponentKind::OffChipBus).transfer_energy_nj(32);
        assert!((l.energy_nj() - expected).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_everything() {
        let mut l = link(ConnComponentKind::AmbaAhb, 2);
        l.transfer(0, 32, 0);
        l.reset();
        assert_eq!(l.transfers(), 0);
        assert_eq!(l.transfer(0, 4, 0).start, 2); // only arbitration remains
    }

    #[test]
    fn latency_from_ready() {
        let t = TransferTiming {
            start: 5,
            complete: 12,
        };
        assert_eq!(t.latency_from(3), 9);
        assert_eq!(t.latency_from(20), 0);
    }

    #[test]
    fn declared_tdma_policy_changes_timing() {
        use crate::arbiter::ArbiterKind;
        let mut params = ConnComponentKind::AmbaAsb.params();
        params.arbiter = ArbiterKind::Tdma { slot_cycles: 8 };
        let tdma = ConnComponent::with_params(ConnComponentKind::AmbaAsb, params);
        let mut tdma_link = LinkState::new(tdma, 2);
        let mut fixed_link = link(ConnComponentKind::AmbaAsb, 2);
        // Master 1 at cycle 0: TDMA must wait for its slot (8 cycles),
        // fixed priority only pays the 2-cycle grant.
        let t = tdma_link.transfer(0, 4, 1);
        let f = fixed_link.transfer(0, 4, 1);
        assert!(t.start > f.start, "TDMA {t} vs fixed {f}");
    }

    #[test]
    fn declared_round_robin_policy_instantiates() {
        use crate::arbiter::ArbiterKind;
        let mut params = ConnComponentKind::Mux.params();
        params.arbiter = ArbiterKind::RoundRobin;
        let l = LinkState::new(
            ConnComponent::with_params(ConnComponentKind::Mux, params),
            3,
        );
        assert!(matches!(l.arbiter, Arbiter::RoundRobin { .. }));
    }
}
