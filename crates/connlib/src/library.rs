//! The connectivity IP library.

use crate::component::{ConnComponent, ConnComponentKind, ConnParams};
use mce_error::MceError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::Path;

/// A library of connectivity components available to the exploration.
///
/// The default [`ConnectivityLibrary::amba`] library contains the six
/// component classes the paper lists; custom components (e.g. a wider AHB)
/// can be added with [`ConnectivityLibrary::add`].
///
/// ```
/// use mce_connlib::{ConnComponent, ConnComponentKind, ConnectivityLibrary};
///
/// let mut lib = ConnectivityLibrary::amba();
/// assert_eq!(lib.len(), 8);
///
/// // Add a custom 64-bit AHB.
/// let mut params = ConnComponentKind::AmbaAhb.params();
/// params.width_bytes = 8;
/// lib.add(ConnComponent::with_params(ConnComponentKind::AmbaAhb, params));
/// assert_eq!(lib.len(), 9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConnectivityLibrary {
    components: Vec<ConnComponent>,
}

impl ConnectivityLibrary {
    /// An empty library.
    pub const fn new() -> Self {
        ConnectivityLibrary {
            components: Vec::new(),
        }
    }

    /// The default library: dedicated, MUX, APB, ASB, AHB on-chip, and
    /// three off-chip bus variants (narrow 8-bit, standard 16-bit, wide
    /// 32-bit — trading pad count and driver energy for fill bandwidth, the
    /// paper's "off-chip busses").
    pub fn amba() -> Self {
        let mut lib = Self::new();
        for kind in ConnComponentKind::ON_CHIP {
            lib.add(ConnComponent::new(kind));
        }
        let standard = ConnComponentKind::OffChipBus.params();
        let narrow = ConnParams {
            width_bytes: 1,
            base_gates: 5_500,
            energy_per_transfer_nj: 0.70,
            ..standard
        };
        let wide = ConnParams {
            width_bytes: 4,
            base_gates: 17_000,
            energy_per_transfer_nj: 1.30,
            ..standard
        };
        lib.add(ConnComponent::with_params(
            ConnComponentKind::OffChipBus,
            narrow,
        ));
        lib.add(ConnComponent::new(ConnComponentKind::OffChipBus));
        lib.add(ConnComponent::with_params(
            ConnComponentKind::OffChipBus,
            wide,
        ));
        lib
    }

    /// Adds a component.
    pub fn add(&mut self, component: ConnComponent) {
        self.components.push(component);
    }

    /// The first component of the given kind, if present.
    pub fn component(&self, kind: ConnComponentKind) -> Option<&ConnComponent> {
        self.components.iter().find(|c| c.kind() == kind)
    }

    /// All components.
    pub fn components(&self) -> &[ConnComponent] {
        &self.components
    }

    /// Iterator over the on-chip components.
    pub fn on_chip(&self) -> impl Iterator<Item = &ConnComponent> {
        self.components.iter().filter(|c| !c.params().off_chip)
    }

    /// Iterator over the off-chip-capable components.
    pub fn off_chip(&self) -> impl Iterator<Item = &ConnComponent> {
        self.components.iter().filter(|c| c.params().off_chip)
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True if the library holds no components.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Parses a library from its JSON form (the same shape `serde_json`
    /// produces for a [`ConnectivityLibrary`]) and validates it.
    ///
    /// # Errors
    ///
    /// Returns [`MceError::Json`] on malformed JSON and
    /// [`MceError::Library`] when the parsed library violates a structural
    /// invariant (see [`ConnectivityLibrary::validate`]).
    pub fn from_json(text: &str) -> Result<Self, MceError> {
        let lib: ConnectivityLibrary = serde_json::from_str(text)
            .map_err(|e| MceError::json("parsing connectivity library", e))?;
        lib.validate()?;
        Ok(lib)
    }

    /// Loads and validates a library from a JSON file at `path`.
    ///
    /// # Errors
    ///
    /// Returns [`MceError::Io`] if the file cannot be read, plus the
    /// [`ConnectivityLibrary::from_json`] errors.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, MceError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| {
            MceError::io(
                format!("reading connectivity library `{}`", path.display()),
                e,
            )
        })?;
        Self::from_json(&text)
    }

    /// Checks the structural invariants the exploration relies on: the
    /// library is non-empty, every component can serve at least one port,
    /// is at least a byte wide, needs at least one cycle per beat, and has
    /// finite non-negative energy coefficients.
    ///
    /// # Errors
    ///
    /// Returns [`MceError::Library`] naming the first violated invariant.
    pub fn validate(&self) -> Result<(), MceError> {
        if self.is_empty() {
            return Err(MceError::library("library has no components"));
        }
        for (i, c) in self.components.iter().enumerate() {
            let p = c.params();
            let fail = |what: &str| {
                Err(MceError::library(format!(
                    "component {i} ({}): {what}",
                    c.kind()
                )))
            };
            if p.width_bytes == 0 {
                return fail("width_bytes must be at least 1");
            }
            if p.cycles_per_beat == 0 {
                return fail("cycles_per_beat must be at least 1");
            }
            if p.max_ports == 0 {
                return fail("max_ports must be at least 1");
            }
            if p.outstanding == 0 {
                return fail("outstanding must be at least 1");
            }
            if !(p.energy_per_transfer_nj.is_finite() && p.energy_per_transfer_nj >= 0.0) {
                return fail("energy_per_transfer_nj must be finite and non-negative");
            }
            if !(p.energy_per_byte_nj.is_finite() && p.energy_per_byte_nj >= 0.0) {
                return fail("energy_per_byte_nj must be finite and non-negative");
            }
        }
        Ok(())
    }
}

impl Default for ConnectivityLibrary {
    fn default() -> Self {
        Self::amba()
    }
}

impl fmt::Display for ConnectivityLibrary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "connectivity library ({} components):", self.len())?;
        for c in &self.components {
            writeln!(f, "  {c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_library_has_all_kinds() {
        let lib = ConnectivityLibrary::amba();
        for kind in ConnComponentKind::ON_CHIP {
            assert!(lib.component(kind).is_some(), "{kind} missing");
        }
        assert!(lib.component(ConnComponentKind::OffChipBus).is_some());
    }

    #[test]
    fn on_off_chip_partition() {
        let lib = ConnectivityLibrary::amba();
        assert_eq!(lib.on_chip().count(), 5);
        assert_eq!(lib.off_chip().count(), 3);
        assert_eq!(lib.on_chip().count() + lib.off_chip().count(), lib.len());
    }

    #[test]
    fn off_chip_widths_span_range() {
        let lib = ConnectivityLibrary::amba();
        let widths: Vec<u32> = lib.off_chip().map(|c| c.params().width_bytes).collect();
        assert!(widths.contains(&1));
        assert!(widths.contains(&2));
        assert!(widths.contains(&4));
    }

    #[test]
    fn empty_library() {
        let lib = ConnectivityLibrary::new();
        assert!(lib.is_empty());
        assert!(lib.component(ConnComponentKind::AmbaAhb).is_none());
    }

    #[test]
    fn default_trait_is_amba() {
        assert_eq!(ConnectivityLibrary::default(), ConnectivityLibrary::amba());
    }

    #[test]
    fn json_round_trip_validates() {
        let lib = ConnectivityLibrary::amba();
        let json = serde_json::to_string(&lib).unwrap();
        let back = ConnectivityLibrary::from_json(&json).unwrap();
        assert_eq!(lib, back);
    }

    #[test]
    fn malformed_json_is_an_error_not_a_panic() {
        let err = ConnectivityLibrary::from_json("{not json").unwrap_err();
        assert!(matches!(err, MceError::Json { .. }), "{err}");
    }

    #[test]
    fn empty_library_fails_validation() {
        let err = ConnectivityLibrary::from_json(r#"{"components":[]}"#).unwrap_err();
        assert!(matches!(err, MceError::Library { .. }), "{err}");
        assert!(err.to_string().contains("no components"), "{err}");
    }

    #[test]
    fn zero_width_component_rejected() {
        let mut lib = ConnectivityLibrary::new();
        let mut params = ConnComponentKind::AmbaAhb.params();
        params.width_bytes = 0;
        lib.add(ConnComponent::with_params(
            ConnComponentKind::AmbaAhb,
            params,
        ));
        let json = serde_json::to_string(&lib).unwrap();
        let err = ConnectivityLibrary::from_json(&json).unwrap_err();
        assert!(err.to_string().contains("width_bytes"), "{err}");
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = ConnectivityLibrary::load("/nonexistent/lib.json").unwrap_err();
        assert!(matches!(err, MceError::Io { .. }), "{err}");
    }
}
