//! The connectivity IP library.

use crate::component::{ConnComponent, ConnComponentKind, ConnParams};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A library of connectivity components available to the exploration.
///
/// The default [`ConnectivityLibrary::amba`] library contains the six
/// component classes the paper lists; custom components (e.g. a wider AHB)
/// can be added with [`ConnectivityLibrary::add`].
///
/// ```
/// use mce_connlib::{ConnComponent, ConnComponentKind, ConnectivityLibrary};
///
/// let mut lib = ConnectivityLibrary::amba();
/// assert_eq!(lib.len(), 8);
///
/// // Add a custom 64-bit AHB.
/// let mut params = ConnComponentKind::AmbaAhb.params();
/// params.width_bytes = 8;
/// lib.add(ConnComponent::with_params(ConnComponentKind::AmbaAhb, params));
/// assert_eq!(lib.len(), 9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConnectivityLibrary {
    components: Vec<ConnComponent>,
}

impl ConnectivityLibrary {
    /// An empty library.
    pub const fn new() -> Self {
        ConnectivityLibrary {
            components: Vec::new(),
        }
    }

    /// The default library: dedicated, MUX, APB, ASB, AHB on-chip, and
    /// three off-chip bus variants (narrow 8-bit, standard 16-bit, wide
    /// 32-bit — trading pad count and driver energy for fill bandwidth, the
    /// paper's "off-chip busses").
    pub fn amba() -> Self {
        let mut lib = Self::new();
        for kind in ConnComponentKind::ON_CHIP {
            lib.add(ConnComponent::new(kind));
        }
        let standard = ConnComponentKind::OffChipBus.params();
        let narrow = ConnParams {
            width_bytes: 1,
            base_gates: 5_500,
            energy_per_transfer_nj: 0.70,
            ..standard
        };
        let wide = ConnParams {
            width_bytes: 4,
            base_gates: 17_000,
            energy_per_transfer_nj: 1.30,
            ..standard
        };
        lib.add(ConnComponent::with_params(
            ConnComponentKind::OffChipBus,
            narrow,
        ));
        lib.add(ConnComponent::new(ConnComponentKind::OffChipBus));
        lib.add(ConnComponent::with_params(
            ConnComponentKind::OffChipBus,
            wide,
        ));
        lib
    }

    /// Adds a component.
    pub fn add(&mut self, component: ConnComponent) {
        self.components.push(component);
    }

    /// The first component of the given kind, if present.
    pub fn component(&self, kind: ConnComponentKind) -> Option<&ConnComponent> {
        self.components.iter().find(|c| c.kind() == kind)
    }

    /// All components.
    pub fn components(&self) -> &[ConnComponent] {
        &self.components
    }

    /// Iterator over the on-chip components.
    pub fn on_chip(&self) -> impl Iterator<Item = &ConnComponent> {
        self.components.iter().filter(|c| !c.params().off_chip)
    }

    /// Iterator over the off-chip-capable components.
    pub fn off_chip(&self) -> impl Iterator<Item = &ConnComponent> {
        self.components.iter().filter(|c| c.params().off_chip)
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True if the library holds no components.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }
}

impl Default for ConnectivityLibrary {
    fn default() -> Self {
        Self::amba()
    }
}

impl fmt::Display for ConnectivityLibrary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "connectivity library ({} components):", self.len())?;
        for c in &self.components {
            writeln!(f, "  {c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_library_has_all_kinds() {
        let lib = ConnectivityLibrary::amba();
        for kind in ConnComponentKind::ON_CHIP {
            assert!(lib.component(kind).is_some(), "{kind} missing");
        }
        assert!(lib.component(ConnComponentKind::OffChipBus).is_some());
    }

    #[test]
    fn on_off_chip_partition() {
        let lib = ConnectivityLibrary::amba();
        assert_eq!(lib.on_chip().count(), 5);
        assert_eq!(lib.off_chip().count(), 3);
        assert_eq!(lib.on_chip().count() + lib.off_chip().count(), lib.len());
    }

    #[test]
    fn off_chip_widths_span_range() {
        let lib = ConnectivityLibrary::amba();
        let widths: Vec<u32> = lib.off_chip().map(|c| c.params().width_bytes).collect();
        assert!(widths.contains(&1));
        assert!(widths.contains(&2));
        assert!(widths.contains(&4));
    }

    #[test]
    fn empty_library() {
        let lib = ConnectivityLibrary::new();
        assert!(lib.is_empty());
        assert!(lib.component(ConnComponentKind::AmbaAhb).is_none());
    }

    #[test]
    fn default_trait_is_amba() {
        assert_eq!(ConnectivityLibrary::default(), ConnectivityLibrary::amba());
    }
}
