//! Connectivity architectures: channels assigned to component instances.

use crate::component::{ConnComponent, ConnComponentKind};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Index of a communication channel within a
/// [`ConnectivityArchitecture`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ChannelId(usize);

impl ChannelId {
    /// Creates an id from a raw index.
    pub const fn new(index: usize) -> Self {
        ChannelId(index)
    }

    /// Returns the raw index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

/// Index of a link (component instance) within a
/// [`ConnectivityArchitecture`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId(usize);

impl LinkId {
    /// Creates an id from a raw index.
    pub const fn new(index: usize) -> Self {
        LinkId(index)
    }

    /// Returns the raw index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "link{}", self.0)
    }
}

/// A communication channel between two endpoints of the memory system
/// (CPU↔module or module↔DRAM). Channels are *what must be connected*;
/// links are *what connects them*.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Channel {
    /// Human-readable endpoint description, e.g. `"CPU<->L1"`.
    pub name: String,
    /// True if the channel crosses the chip boundary (must be carried by an
    /// off-chip-capable component).
    pub off_chip: bool,
}

impl Channel {
    /// Creates an on-chip channel.
    pub fn on_chip(name: impl Into<String>) -> Self {
        Channel {
            name: name.into(),
            off_chip: false,
        }
    }

    /// Creates an off-chip channel.
    pub fn off_chip(name: impl Into<String>) -> Self {
        Channel {
            name: name.into(),
            off_chip: true,
        }
    }
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}",
            self.name,
            if self.off_chip { " (off-chip)" } else { "" }
        )
    }
}

/// A component instance carrying one or more channels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConnLink {
    name: String,
    component: ConnComponent,
}

impl ConnLink {
    /// Creates a named link backed by `component`.
    pub fn new(name: impl Into<String>, component: ConnComponent) -> Self {
        ConnLink {
            name: name.into(),
            component,
        }
    }

    /// The instance name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The backing component.
    pub const fn component(&self) -> &ConnComponent {
        &self.component
    }
}

impl fmt::Display for ConnLink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.name, self.component)
    }
}

/// Validation failure for a connectivity architecture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConnArchError {
    /// A channel has no link assigned.
    UnassignedChannel(ChannelId),
    /// An assignment references a link that does not exist.
    BadLinkId(LinkId),
    /// An off-chip channel was assigned to an on-chip-only component (or
    /// vice versa).
    BoundaryMismatch {
        /// The offending channel.
        channel: ChannelId,
        /// The link it was assigned to.
        link: LinkId,
    },
    /// A link carries more channels than its component supports.
    TooManyPorts {
        /// The overloaded link.
        link: LinkId,
        /// Channels assigned.
        assigned: u32,
        /// The component's port limit.
        limit: u32,
    },
}

impl fmt::Display for ConnArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConnArchError::UnassignedChannel(ch) => write!(f, "channel {ch} has no link"),
            ConnArchError::BadLinkId(l) => write!(f, "assignment references unknown {l}"),
            ConnArchError::BoundaryMismatch { channel, link } => {
                write!(f, "chip-boundary mismatch: {channel} on {link}")
            }
            ConnArchError::TooManyPorts {
                link,
                assigned,
                limit,
            } => {
                write!(f, "{link} carries {assigned} channels, limit {limit}")
            }
        }
    }
}

impl Error for ConnArchError {}

/// A connectivity architecture: the set of communication channels of a
/// memory architecture, the component instances (links) chosen from the
/// library, and the channel→link assignment.
///
/// ```
/// use mce_connlib::{Channel, ConnComponent, ConnComponentKind, ConnectivityArchitecture};
///
/// let mut arch = ConnectivityArchitecture::new(vec![
///     Channel::on_chip("CPU<->L1"),
///     Channel::on_chip("CPU<->sbuf"),
///     Channel::off_chip("L1<->DRAM"),
/// ]);
/// let ahb = arch.add_link("ahb0", ConnComponent::new(ConnComponentKind::AmbaAhb));
/// let off = arch.add_link("ext0", ConnComponent::new(ConnComponentKind::OffChipBus));
/// arch.assign(mce_connlib::ChannelId::new(0), ahb);
/// arch.assign(mce_connlib::ChannelId::new(1), ahb);
/// arch.assign(mce_connlib::ChannelId::new(2), off);
/// assert!(arch.validate().is_ok());
/// assert!(arch.gate_cost() > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConnectivityArchitecture {
    channels: Vec<Channel>,
    links: Vec<ConnLink>,
    assignment: Vec<Option<LinkId>>,
}

impl ConnectivityArchitecture {
    /// Creates an architecture over the given channels with no links yet.
    pub fn new(channels: Vec<Channel>) -> Self {
        let n = channels.len();
        ConnectivityArchitecture {
            channels,
            links: Vec::new(),
            assignment: vec![None; n],
        }
    }

    /// Adds a component instance and returns its id.
    pub fn add_link(&mut self, name: impl Into<String>, component: ConnComponent) -> LinkId {
        self.links.push(ConnLink::new(name, component));
        LinkId::new(self.links.len() - 1)
    }

    /// Assigns `channel` to be carried by `link`.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn assign(&mut self, channel: ChannelId, link: LinkId) {
        self.assignment[channel.index()] = Some(link);
    }

    /// The channels.
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }

    /// The links.
    pub fn links(&self) -> &[ConnLink] {
        &self.links
    }

    /// The link carrying `channel`, if assigned.
    pub fn link_of(&self, channel: ChannelId) -> Option<LinkId> {
        self.assignment.get(channel.index()).copied().flatten()
    }

    /// Number of channels assigned to `link`.
    pub fn ports(&self, link: LinkId) -> u32 {
        self.assignment.iter().filter(|a| **a == Some(link)).count() as u32
    }

    /// Checks assignment completeness, chip-boundary compatibility and port
    /// limits.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConnArchError`] found.
    pub fn validate(&self) -> Result<(), ConnArchError> {
        for (i, assigned) in self.assignment.iter().enumerate() {
            let ch = ChannelId::new(i);
            let link = assigned.ok_or(ConnArchError::UnassignedChannel(ch))?;
            let l = self
                .links
                .get(link.index())
                .ok_or(ConnArchError::BadLinkId(link))?;
            if self.channels[i].off_chip != l.component().params().off_chip {
                return Err(ConnArchError::BoundaryMismatch { channel: ch, link });
            }
        }
        for (j, l) in self.links.iter().enumerate() {
            let link = LinkId::new(j);
            let assigned = self.ports(link);
            let limit = l.component().params().max_ports;
            if assigned > limit {
                return Err(ConnArchError::TooManyPorts {
                    link,
                    assigned,
                    limit,
                });
            }
        }
        Ok(())
    }

    /// Total gate cost of all links (controllers + wires).
    pub fn gate_cost(&self) -> u64 {
        self.links
            .iter()
            .enumerate()
            .map(|(j, l)| l.component().gate_cost(self.ports(LinkId::new(j))))
            .sum()
    }

    /// Short composition string, e.g. `"AHB(2ch) + dedicated(1ch) +
    /// off-chip bus(1ch)"`. Links carrying no channel are omitted.
    pub fn describe(&self) -> String {
        self.links
            .iter()
            .enumerate()
            .filter(|(j, _)| self.ports(LinkId::new(*j)) > 0)
            .map(|(j, l)| {
                let c = l.component();
                // Off-chip variants differ only by width; make it visible.
                let width = if c.params().off_chip {
                    format!("/{}b", c.params().width_bytes * 8)
                } else {
                    String::new()
                };
                format!("{}{}({}ch)", c.kind(), width, self.ports(LinkId::new(j)))
            })
            .collect::<Vec<_>>()
            .join(" + ")
    }

    /// The kinds used by at least one channel, deduplicated in link order.
    pub fn kinds_used(&self) -> Vec<ConnComponentKind> {
        let mut kinds = Vec::new();
        for (j, l) in self.links.iter().enumerate() {
            if self.ports(LinkId::new(j)) > 0 && !kinds.contains(&l.component().kind()) {
                kinds.push(l.component().kind());
            }
        }
        kinds
    }
}

impl fmt::Display for ConnectivityArchitecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_channel_arch() -> ConnectivityArchitecture {
        ConnectivityArchitecture::new(vec![
            Channel::on_chip("CPU<->L1"),
            Channel::on_chip("CPU<->dma"),
            Channel::off_chip("L1<->DRAM"),
        ])
    }

    #[test]
    fn valid_assignment_passes() {
        let mut a = three_channel_arch();
        let bus = a.add_link("ahb", ConnComponent::new(ConnComponentKind::AmbaAhb));
        let ext = a.add_link("ext", ConnComponent::new(ConnComponentKind::OffChipBus));
        a.assign(ChannelId::new(0), bus);
        a.assign(ChannelId::new(1), bus);
        a.assign(ChannelId::new(2), ext);
        assert!(a.validate().is_ok());
        assert_eq!(a.ports(bus), 2);
        assert_eq!(a.ports(ext), 1);
    }

    #[test]
    fn unassigned_channel_detected() {
        let mut a = three_channel_arch();
        let bus = a.add_link("ahb", ConnComponent::new(ConnComponentKind::AmbaAhb));
        a.assign(ChannelId::new(0), bus);
        assert_eq!(
            a.validate(),
            Err(ConnArchError::UnassignedChannel(ChannelId::new(1)))
        );
    }

    #[test]
    fn off_chip_channel_needs_off_chip_link() {
        let mut a = three_channel_arch();
        let bus = a.add_link("ahb", ConnComponent::new(ConnComponentKind::AmbaAhb));
        a.assign(ChannelId::new(0), bus);
        a.assign(ChannelId::new(1), bus);
        a.assign(ChannelId::new(2), bus);
        assert!(matches!(
            a.validate(),
            Err(ConnArchError::BoundaryMismatch { .. })
        ));
    }

    #[test]
    fn on_chip_channel_rejects_off_chip_link() {
        let mut a = three_channel_arch();
        let ext = a.add_link("ext", ConnComponent::new(ConnComponentKind::OffChipBus));
        a.assign(ChannelId::new(0), ext);
        a.assign(ChannelId::new(1), ext);
        a.assign(ChannelId::new(2), ext);
        assert!(matches!(
            a.validate(),
            Err(ConnArchError::BoundaryMismatch { .. })
        ));
    }

    #[test]
    fn dedicated_port_limit_enforced() {
        let mut a = three_channel_arch();
        let ded = a.add_link("d0", ConnComponent::new(ConnComponentKind::Dedicated));
        let ext = a.add_link("ext", ConnComponent::new(ConnComponentKind::OffChipBus));
        a.assign(ChannelId::new(0), ded);
        a.assign(ChannelId::new(1), ded); // over the 1-port limit
        a.assign(ChannelId::new(2), ext);
        assert!(matches!(
            a.validate(),
            Err(ConnArchError::TooManyPorts { .. })
        ));
    }

    #[test]
    fn dangling_link_detected() {
        let mut a = three_channel_arch();
        a.assign(ChannelId::new(0), LinkId::new(5));
        assert_eq!(a.validate(), Err(ConnArchError::BadLinkId(LinkId::new(5))));
    }

    #[test]
    fn cost_counts_only_real_ports() {
        let mut a = three_channel_arch();
        let bus = a.add_link("ahb", ConnComponent::new(ConnComponentKind::AmbaAhb));
        let ext = a.add_link("ext", ConnComponent::new(ConnComponentKind::OffChipBus));
        a.assign(ChannelId::new(0), bus);
        a.assign(ChannelId::new(1), bus);
        a.assign(ChannelId::new(2), ext);
        let expected = ConnComponent::new(ConnComponentKind::AmbaAhb).gate_cost(2)
            + ConnComponent::new(ConnComponentKind::OffChipBus).gate_cost(1);
        assert_eq!(a.gate_cost(), expected);
    }

    #[test]
    fn describe_skips_unused_links() {
        let mut a = three_channel_arch();
        let bus = a.add_link("ahb", ConnComponent::new(ConnComponentKind::AmbaAhb));
        let _unused = a.add_link("apb", ConnComponent::new(ConnComponentKind::AmbaApb));
        let ext = a.add_link("ext", ConnComponent::new(ConnComponentKind::OffChipBus));
        a.assign(ChannelId::new(0), bus);
        a.assign(ChannelId::new(1), bus);
        a.assign(ChannelId::new(2), ext);
        let d = a.describe();
        assert!(d.contains("AHB(2ch)"), "{d}");
        assert!(!d.contains("APB"), "{d}");
    }

    #[test]
    fn kinds_used_deduplicates() {
        let mut a =
            ConnectivityArchitecture::new(vec![Channel::on_chip("a"), Channel::on_chip("b")]);
        let m1 = a.add_link("m1", ConnComponent::new(ConnComponentKind::Mux));
        let m2 = a.add_link("m2", ConnComponent::new(ConnComponentKind::Mux));
        a.assign(ChannelId::new(0), m1);
        a.assign(ChannelId::new(1), m2);
        assert_eq!(a.kinds_used(), vec![ConnComponentKind::Mux]);
    }

    #[test]
    fn error_display_nonempty() {
        let errs = [
            ConnArchError::UnassignedChannel(ChannelId::new(0)),
            ConnArchError::BadLinkId(LinkId::new(1)),
            ConnArchError::BoundaryMismatch {
                channel: ChannelId::new(0),
                link: LinkId::new(0),
            },
            ConnArchError::TooManyPorts {
                link: LinkId::new(0),
                assigned: 3,
                limit: 1,
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
