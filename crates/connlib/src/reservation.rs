//! Reservation tables for transfer timing.
//!
//! The paper estimates connectivity performance with Reservation Tables
//! (refs [11, 14, 15]): an operation class declares which resources it
//! occupies at which relative time steps, and a transfer can issue at the
//! earliest time where none of its resource usages collides with an
//! existing reservation. This captures latency, pipelining (the data phase
//! of beat *n* overlaps the address phase of beat *n+1*) and resource
//! conflicts (two transfers contending for the same bus) in one mechanism.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// An operation's resource-usage pattern: `(resource, start_offset, length)`
/// entries relative to the operation's issue cycle.
///
/// ```
/// use mce_connlib::OpPattern;
/// // A 2-beat unpipelined bus transfer: the single bus resource is busy
/// // for 4 cycles from issue.
/// let op = OpPattern::new(vec![(0, 0, 4)]);
/// assert_eq!(op.duration(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpPattern {
    usages: Vec<(usize, u32, u32)>,
}

impl OpPattern {
    /// Creates a pattern from `(resource, start_offset, length)` triples.
    ///
    /// # Panics
    ///
    /// Panics if the pattern is empty or any usage has zero length.
    pub fn new(usages: Vec<(usize, u32, u32)>) -> Self {
        assert!(!usages.is_empty(), "operation pattern must use a resource");
        assert!(
            usages.iter().all(|&(_, _, len)| len > 0),
            "zero-length usage"
        );
        OpPattern { usages }
    }

    /// A pattern occupying a single resource for `cycles` from issue.
    pub fn single(resource: usize, cycles: u32) -> Self {
        Self::new(vec![(resource, 0, cycles)])
    }

    /// The usage triples.
    pub fn usages(&self) -> &[(usize, u32, u32)] {
        &self.usages
    }

    /// Total duration from issue to the last busy cycle.
    pub fn duration(&self) -> u32 {
        self.usages
            .iter()
            .map(|&(_, start, len)| start + len)
            .max()
            .unwrap_or(0)
    }

    /// Highest resource index referenced.
    pub fn max_resource(&self) -> usize {
        self.usages.iter().map(|&(r, _, _)| r).max().unwrap_or(0)
    }
}

impl fmt::Display for OpPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op[")?;
        for (i, (r, s, l)) in self.usages.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "r{r}@{s}+{l}")?;
        }
        write!(f, "]")
    }
}

/// A busy interval `[start, end)` on one resource.
type Interval = (u64, u64);

/// A reservation table over a fixed set of resources.
///
/// Reservations are inserted in nondecreasing ready-time order (the
/// simulator replays a time-ordered trace), which lets the table prune
/// intervals that can no longer conflict. [`ReservationTable::earliest_start`]
/// performs the classic forward scan for the first conflict-free issue slot.
#[derive(Debug, Clone)]
pub struct ReservationTable {
    resources: Vec<VecDeque<Interval>>,
    /// Earliest ready time seen; reservations entirely before this can be
    /// pruned lazily.
    horizon: u64,
}

impl ReservationTable {
    /// Creates a table with `resources` independent resources.
    ///
    /// # Panics
    ///
    /// Panics if `resources` is zero.
    pub fn new(resources: usize) -> Self {
        assert!(resources > 0, "need at least one resource");
        ReservationTable {
            resources: vec![VecDeque::new(); resources],
            horizon: 0,
        }
    }

    /// Number of resources.
    pub fn num_resources(&self) -> usize {
        self.resources.len()
    }

    /// True if `op` issued at `t` collides with an existing reservation.
    pub fn conflicts(&self, op: &OpPattern, t: u64) -> bool {
        op.usages().iter().any(|&(r, start, len)| {
            let s = t + start as u64;
            let e = s + len as u64;
            self.resources[r].iter().any(|&(bs, be)| s < be && bs < e)
        })
    }

    /// Earliest `t >= ready` at which `op` can issue without conflicts.
    ///
    /// # Panics
    ///
    /// Panics if `op` references a resource outside the table.
    pub fn earliest_start(&self, op: &OpPattern, ready: u64) -> u64 {
        assert!(
            op.max_resource() < self.resources.len(),
            "operation references unknown resource"
        );
        let mut t = ready;
        // Jump-scan: on a conflict, hop to the end of the earliest blocking
        // interval rather than stepping cycle by cycle.
        loop {
            let mut blocked_until = None;
            for &(r, start, len) in op.usages() {
                let s = t + start as u64;
                let e = s + len as u64;
                for &(bs, be) in &self.resources[r] {
                    if s < be && bs < e {
                        let candidate = be.saturating_sub(start as u64);
                        blocked_until = Some(match blocked_until {
                            Some(prev) if prev >= candidate => prev,
                            _ => candidate,
                        });
                    }
                }
            }
            match blocked_until {
                Some(next) if next > t => t = next,
                Some(_) => t += 1, // defensive: guarantee progress
                None => return t,
            }
        }
    }

    /// Records `op` issued at `t`.
    pub fn reserve(&mut self, op: &OpPattern, t: u64) {
        for &(r, start, len) in op.usages() {
            let s = t + start as u64;
            self.resources[r].push_back((s, s + len as u64));
        }
    }

    /// Convenience: find the earliest start at or after `ready`, reserve it,
    /// and return the issue time.
    ///
    /// Also advances the pruning horizon to `ready`: reservations that ended
    /// before `ready` can never conflict with this or any later call (ready
    /// times are nondecreasing) and are dropped.
    pub fn schedule(&mut self, op: &OpPattern, ready: u64) -> u64 {
        self.prune(ready);
        let t = self.earliest_start(op, ready);
        self.reserve(op, t);
        t
    }

    /// Advances the pruning horizon to `ready`, dropping reservations that
    /// ended at or before it. Callers that bypass [`ReservationTable::schedule`]
    /// (e.g. to pick among slots manually) should call this with each new
    /// nondecreasing ready time to keep the table bounded.
    pub fn advance_horizon(&mut self, ready: u64) {
        self.prune(ready);
    }

    /// Drops intervals that end at or before the new horizon. Sound because
    /// ready times are nondecreasing.
    fn prune(&mut self, ready: u64) {
        if ready > self.horizon {
            self.horizon = ready;
            for res in &mut self.resources {
                while matches!(res.front(), Some(&(_, end)) if end <= self.horizon) {
                    res.pop_front();
                }
            }
        }
    }

    /// Clears all reservations.
    pub fn clear(&mut self) {
        for r in &mut self.resources {
            r.clear();
        }
        self.horizon = 0;
    }

    /// Total reserved busy cycles currently tracked (for utilization stats).
    pub fn busy_cycles(&self) -> u64 {
        self.resources
            .iter()
            .flat_map(|r| r.iter())
            .map(|&(s, e)| e - s)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_table_issues_immediately() {
        let t = ReservationTable::new(1);
        let op = OpPattern::single(0, 4);
        assert_eq!(t.earliest_start(&op, 10), 10);
    }

    #[test]
    fn sequential_transfers_serialize() {
        let mut t = ReservationTable::new(1);
        let op = OpPattern::single(0, 4);
        assert_eq!(t.schedule(&op, 0), 0);
        assert_eq!(t.schedule(&op, 0), 4);
        assert_eq!(t.schedule(&op, 0), 8);
    }

    #[test]
    fn gap_is_found_between_reservations() {
        let mut t = ReservationTable::new(1);
        let long = OpPattern::single(0, 4);
        let short = OpPattern::single(0, 2);
        t.reserve(&long, 0); // busy [0,4)
        t.reserve(&long, 10); // busy [10,14)
        assert_eq!(t.earliest_start(&short, 0), 4, "fits in the [4,10) gap");
    }

    #[test]
    fn pipelined_pattern_overlaps_phases() {
        // Two-resource pipeline: address phase (r0) 1 cycle, data phase (r1)
        // 1 cycle offset by 1. Back-to-back ops issue every cycle.
        let mut t = ReservationTable::new(2);
        let op = OpPattern::new(vec![(0, 0, 1), (1, 1, 1)]);
        assert_eq!(t.schedule(&op, 0), 0);
        assert_eq!(t.schedule(&op, 0), 1);
        assert_eq!(t.schedule(&op, 0), 2);
    }

    #[test]
    fn unpipelined_pattern_serializes_fully() {
        // One resource held for both phases: ops issue every 2 cycles.
        let mut t = ReservationTable::new(1);
        let op = OpPattern::single(0, 2);
        assert_eq!(t.schedule(&op, 0), 0);
        assert_eq!(t.schedule(&op, 0), 2);
    }

    #[test]
    fn conflicts_detects_overlap() {
        let mut t = ReservationTable::new(1);
        let op = OpPattern::single(0, 3);
        t.reserve(&op, 5);
        assert!(t.conflicts(&op, 4));
        assert!(t.conflicts(&op, 7));
        assert!(!t.conflicts(&op, 8));
        assert!(!t.conflicts(&op, 2));
    }

    #[test]
    fn multi_resource_conflict_on_any() {
        let mut t = ReservationTable::new(2);
        t.reserve(&OpPattern::single(1, 4), 0);
        let op = OpPattern::new(vec![(0, 0, 1), (1, 0, 1)]);
        assert_eq!(t.earliest_start(&op, 0), 4, "r1 busy blocks the op");
    }

    #[test]
    fn pruning_keeps_behavior() {
        let mut t = ReservationTable::new(1);
        let op = OpPattern::single(0, 2);
        for i in 0..1000 {
            t.schedule(&op, i * 2);
        }
        // Old intervals pruned, future scheduling still correct.
        assert!(t.busy_cycles() < 100);
        assert_eq!(t.schedule(&op, 2000), 2000);
    }

    #[test]
    fn clear_resets() {
        let mut t = ReservationTable::new(1);
        t.schedule(&OpPattern::single(0, 10), 0);
        t.clear();
        assert_eq!(t.earliest_start(&OpPattern::single(0, 1), 0), 0);
    }

    #[test]
    fn duration_and_max_resource() {
        let op = OpPattern::new(vec![(0, 0, 2), (3, 1, 4)]);
        assert_eq!(op.duration(), 5);
        assert_eq!(op.max_resource(), 3);
    }

    #[test]
    #[should_panic(expected = "unknown resource")]
    fn out_of_range_resource_panics() {
        let t = ReservationTable::new(1);
        let op = OpPattern::single(5, 1);
        let _ = t.earliest_start(&op, 0);
    }

    #[test]
    #[should_panic(expected = "zero-length")]
    fn zero_length_usage_rejected() {
        let _ = OpPattern::new(vec![(0, 0, 0)]);
    }

    #[test]
    fn display_pattern() {
        let op = OpPattern::new(vec![(0, 0, 2), (1, 2, 1)]);
        assert_eq!(op.to_string(), "op[r0@0+2, r1@2+1]");
    }
}
