//! The Bandwidth Requirement Graph (BRG).
//!
//! "The nodes in the BRG represent the memory and processing cores in the
//! system ... and the arcs represent the channels of communication between
//! these modules. The BRG arcs are labeled with the average bandwidth
//! requirement between the two modules."
//!
//! The BRG is built by *profiling the memory modules architecture*: the
//! trace is replayed through the behavioural module models (no connectivity
//! timing — that is what we are about to explore), counting the bytes each
//! channel must carry: element transfers on the CPU↔module channels, demand
//! fills plus prefetch/writeback traffic on the module↔DRAM channels.

use mce_appmodel::{MemAccess, TraceBlocks, Workload};
use mce_connlib::Channel;
use mce_memlib::{MemoryArchitecture, ModuleModel};
use mce_sim::system::{channel_endpoints, channels_for, ChannelEndpoint};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One arc of the BRG: a communication channel with its measured bandwidth
/// requirement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BrgArc {
    /// What the channel connects.
    pub endpoint: ChannelEndpoint,
    /// The channel descriptor (name + chip-boundary flag).
    pub channel: Channel,
    /// Bytes the channel must carry over the profiled window.
    pub bytes: u64,
    /// Average bandwidth requirement, bytes per CPU cycle.
    pub bandwidth: f64,
}

impl fmt::Display for BrgArc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:.4} B/cyc ({} B)",
            self.channel, self.bandwidth, self.bytes
        )
    }
}

/// The Bandwidth Requirement Graph of one memory architecture under one
/// workload.
///
/// ```
/// use mce_appmodel::benchmarks;
/// use mce_conex::Brg;
/// use mce_memlib::{CacheConfig, MemoryArchitecture};
///
/// let w = benchmarks::compress();
/// let mem = MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(8));
/// let brg = Brg::profile(&w, &mem, 10_000);
/// assert_eq!(brg.arcs().len(), 2); // CPU<->L1 and L1<->DRAM
/// assert!(brg.arcs().iter().all(|a| a.bandwidth > 0.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Brg {
    arcs: Vec<BrgArc>,
    elapsed_cycles: u64,
}

impl Brg {
    /// Profiles `mem` under the first `trace_len` accesses of `workload`.
    ///
    /// # Panics
    ///
    /// Panics if the memory architecture is invalid for the workload.
    pub fn profile(workload: &Workload, mem: &MemoryArchitecture, trace_len: usize) -> Self {
        Self::profile_accesses(workload, mem, workload.trace(trace_len))
    }

    /// [`Brg::profile`] over pre-compiled trace blocks: replays the first
    /// `trace_len` compiled accesses instead of running the generator.
    /// Bit-identical to [`Brg::profile`] with the same `trace_len`.
    ///
    /// # Panics
    ///
    /// Panics if the memory architecture is invalid for the workload or
    /// `trace_len` exceeds the compiled length.
    pub fn profile_blocks(
        workload: &Workload,
        mem: &MemoryArchitecture,
        blocks: &TraceBlocks,
        trace_len: usize,
    ) -> Self {
        Self::profile_accesses(workload, mem, blocks.replay(trace_len))
    }

    fn profile_accesses(
        workload: &Workload,
        mem: &MemoryArchitecture,
        accesses: impl Iterator<Item = MemAccess>,
    ) -> Self {
        mem.validate(workload)
            .expect("memory architecture must be valid");
        let endpoints = channel_endpoints(mem, workload);
        let channels = channels_for(mem, workload);
        let mut bytes = vec![0u64; endpoints.len()];

        // Instantiate behavioural models for the on-chip modules.
        let dram_id = mem.dram_id();
        let mut models: Vec<Option<Box<dyn ModuleModel>>> = mem
            .modules()
            .iter()
            .enumerate()
            .map(|(i, m)| {
                if i == dram_id.index() {
                    None
                } else {
                    Some(m.kind().instantiate())
                }
            })
            .collect();

        let idx_of = |e: ChannelEndpoint| endpoints.iter().position(|x| *x == e);
        let mut last_tick = 0;
        for acc in accesses {
            last_tick = acc.tick;
            let serving = mem.serving_module(acc.ds);
            let elem = workload.data_structure(acc.ds).element_size();
            if serving == dram_id {
                if let Some(i) = idx_of(ChannelEndpoint::CpuToDram) {
                    bytes[i] += elem;
                }
                continue;
            }
            if let Some(i) = idx_of(ChannelEndpoint::CpuToModule(serving)) {
                bytes[i] += elem;
            }
            let resp = models[serving.index()]
                .as_mut()
                .expect("on-chip module has a model")
                .access(acc.addr, acc.kind, acc.tick);
            // Downstream traffic walks the (validated acyclic) backing
            // chain: a backed module's fills hit its L2, whose own misses
            // continue toward the DRAM.
            let mut module = serving;
            let mut demand = resp.demand_fill_bytes;
            let mut background = resp.background_bytes;
            while demand + background > 0 {
                match mem.backing_of(module) {
                    None => {
                        if let Some(i) = idx_of(ChannelEndpoint::ModuleToDram(module)) {
                            bytes[i] += demand + background;
                        }
                        break;
                    }
                    Some(l2) => {
                        if let Some(i) = idx_of(ChannelEndpoint::ModuleToModule(module, l2)) {
                            bytes[i] += demand + background;
                        }
                        if demand == 0 {
                            // Posted traffic is absorbed by the L2.
                            break;
                        }
                        let l2_resp = models[l2.index()]
                            .as_mut()
                            .expect("backing module has a model")
                            .access(acc.addr, mce_appmodel::AccessKind::Read, acc.tick);
                        module = l2;
                        demand = l2_resp.demand_fill_bytes;
                        background = l2_resp.background_bytes;
                    }
                }
            }
        }

        let elapsed_cycles = last_tick + 1;
        let arcs = endpoints
            .into_iter()
            .zip(channels)
            .zip(bytes)
            .map(|((endpoint, channel), b)| BrgArc {
                endpoint,
                channel,
                bytes: b,
                bandwidth: b as f64 / elapsed_cycles as f64,
            })
            .collect();
        Brg {
            arcs,
            elapsed_cycles,
        }
    }

    /// The arcs, in canonical channel order (the same order
    /// [`channel_endpoints`] produces).
    pub fn arcs(&self) -> &[BrgArc] {
        &self.arcs
    }

    /// CPU cycles spanned by the profiling window.
    pub fn elapsed_cycles(&self) -> u64 {
        self.elapsed_cycles
    }

    /// Total bytes over all channels.
    pub fn total_bytes(&self) -> u64 {
        self.arcs.iter().map(|a| a.bytes).sum()
    }

    /// Indices of the on-chip arcs.
    pub fn on_chip_arcs(&self) -> Vec<usize> {
        self.arcs
            .iter()
            .enumerate()
            .filter(|(_, a)| !a.channel.off_chip)
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of the off-chip arcs.
    pub fn off_chip_arcs(&self) -> Vec<usize> {
        self.arcs
            .iter()
            .enumerate()
            .filter(|(_, a)| a.channel.off_chip)
            .map(|(i, _)| i)
            .collect()
    }
}

impl fmt::Display for Brg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "BRG over {} cycles:", self.elapsed_cycles)?;
        for arc in &self.arcs {
            writeln!(f, "  {arc}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mce_appmodel::{benchmarks, DsId};
    use mce_memlib::{CacheConfig, MemModuleKind};

    const N: usize = 20_000;

    #[test]
    fn cache_only_brg_has_two_arcs() {
        let w = benchmarks::compress();
        let mem = MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(8));
        let brg = Brg::profile(&w, &mem, N);
        assert_eq!(brg.arcs().len(), 2);
        assert_eq!(brg.on_chip_arcs().len(), 1);
        assert_eq!(brg.off_chip_arcs().len(), 1);
    }

    #[test]
    fn cpu_channel_bandwidth_reflects_element_traffic() {
        let w = benchmarks::compress();
        let mem = MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(8));
        let brg = Brg::profile(&w, &mem, N);
        let cpu_arc = &brg.arcs()[brg.on_chip_arcs()[0]];
        // Element bytes moved = profile total bytes.
        let profile = mce_appmodel::AccessProfile::from_workload(&w, N);
        assert_eq!(cpu_arc.bytes, profile.total_bytes());
    }

    #[test]
    fn hostile_traffic_needs_more_offchip_bandwidth() {
        // compress on a tiny cache moves more fill bytes than on a big one.
        let w = benchmarks::compress();
        let small = Brg::profile(
            &w,
            &MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(1)),
            N,
        );
        let big = Brg::profile(
            &w,
            &MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(32)),
            N,
        );
        let off = |b: &Brg| b.arcs()[b.off_chip_arcs()[0]].bytes;
        assert!(off(&small) > off(&big), "{} vs {}", off(&small), off(&big));
    }

    #[test]
    fn multi_module_brg_splits_traffic() {
        let w = benchmarks::li();
        let mem = MemoryArchitecture::builder("dma")
            .module("L1", MemModuleKind::Cache(CacheConfig::kilobytes(4)))
            .module(
                "dma",
                MemModuleKind::SelfIndirectDma {
                    depth: 16,
                    element_bytes: 8,
                },
            )
            .map(DsId::new(0), 1)
            .map_rest_to(0)
            .build(&w)
            .unwrap();
        let brg = Brg::profile(&w, &mem, N);
        // CPU<->L1, L1<->DRAM, CPU<->dma, dma<->DRAM.
        assert_eq!(brg.arcs().len(), 4);
        assert!(brg.arcs().iter().all(|a| a.bytes > 0), "{brg}");
    }

    #[test]
    fn bandwidths_consistent_with_bytes() {
        let w = benchmarks::vocoder();
        let mem = MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(4));
        let brg = Brg::profile(&w, &mem, N);
        for arc in brg.arcs() {
            let expect = arc.bytes as f64 / brg.elapsed_cycles() as f64;
            assert!((arc.bandwidth - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn profile_blocks_matches_generator_profile() {
        let w = benchmarks::compress();
        let mem = MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(4));
        let blocks = TraceBlocks::compile(&w, N);
        assert_eq!(
            Brg::profile(&w, &mem, N),
            Brg::profile_blocks(&w, &mem, &blocks, N)
        );
        // A longer compilation serves shorter profiling windows too.
        let short = N / 4;
        assert_eq!(
            Brg::profile(&w, &mem, short),
            Brg::profile_blocks(&w, &mem, &blocks, short)
        );
    }

    #[test]
    fn profile_is_deterministic() {
        let w = benchmarks::li();
        let mem = MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(8));
        assert_eq!(Brg::profile(&w, &mem, N), Brg::profile(&w, &mem, N));
    }
}
