//! Phase-I estimation of candidate architectures.
//!
//! Candidates are ranked with the time-sampling estimator (`mce-sim`'s
//! Kessler-style 1:9 on/off sampling) rather than full simulation — "we use
//! it only for relative incremental decisions to guide the design space
//! search, and the estimation fidelity is sufficient to make good pruning
//! decisions". Full simulation of the shortlist happens in Phase II
//! ([`explore`](crate::explore)).

use crate::design_point::{DesignPoint, Metrics};
use mce_appmodel::Workload;
use mce_connlib::ConnectivityArchitecture;
use mce_memlib::MemoryArchitecture;
use mce_sim::{simulate, simulate_sampled, SamplingConfig, SystemConfig};

/// Builds the system and estimates its metrics by sampled simulation.
///
/// Returns `None` if the memory + connectivity combination does not form a
/// valid system (the enumeration can propose infeasible pairings when used
/// with custom libraries).
pub fn estimate_candidate(
    workload: &Workload,
    mem: &MemoryArchitecture,
    conn: ConnectivityArchitecture,
    trace_len: usize,
    sampling: SamplingConfig,
) -> Option<DesignPoint> {
    let sys = SystemConfig::new(workload, mem.clone(), conn).ok()?;
    let stats = simulate_sampled(&sys, workload, trace_len, sampling);
    let metrics = Metrics::new(
        sys.gate_cost(),
        stats.avg_latency_cycles,
        stats.avg_energy_nj,
    );
    Some(DesignPoint::new(sys, metrics, true))
}

/// Re-evaluates a design point with full simulation (Phase II), replacing
/// its estimated metrics with measured ones.
pub fn refine_with_full_simulation(
    point: &DesignPoint,
    workload: &Workload,
    trace_len: usize,
) -> DesignPoint {
    let stats = simulate(&point.system, workload, trace_len);
    let metrics = Metrics::new(
        point.system.gate_cost(),
        stats.avg_latency_cycles,
        stats.avg_energy_nj,
    );
    DesignPoint::new(point.system.clone(), metrics, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brg::Brg;
    use crate::cluster::{cluster_levels, ClusterOrder};
    use mce_appmodel::benchmarks;
    use mce_connlib::ConnectivityLibrary;
    use mce_memlib::CacheConfig;

    const N: usize = 20_000;

    #[test]
    fn estimate_produces_sane_metrics() {
        let w = benchmarks::vocoder();
        let mem = MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(4));
        let brg = Brg::profile(&w, &mem, N);
        let levels = cluster_levels(&brg, ClusterOrder::LowestFirst);
        let lib = ConnectivityLibrary::amba();
        let conn = crate::allocate::enumerate_allocations(&brg, &levels[0], &lib, 1)
            .pop()
            .expect("at least one allocation");
        let p = estimate_candidate(&w, &mem, conn, N, SamplingConfig::paper())
            .expect("valid candidate");
        assert!(p.estimated);
        assert!(
            p.metrics.cost_gates > mem.gate_cost(),
            "includes connectivity cost"
        );
        assert!(p.metrics.latency_cycles > 0.0);
        assert!(p.metrics.energy_nj > 0.0);
    }

    #[test]
    fn refinement_clears_estimated_flag_and_keeps_cost() {
        let w = benchmarks::vocoder();
        let mem = MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(4));
        let sys = SystemConfig::with_shared_bus(&w, mem).unwrap();
        let est = DesignPoint::new(sys, Metrics::new(0, 1.0, 1.0), true);
        let refined = refine_with_full_simulation(&est, &w, N);
        assert!(!refined.estimated);
        assert_eq!(refined.metrics.cost_gates, refined.system.gate_cost());
        assert!(refined.metrics.latency_cycles > 1.0);
    }

    #[test]
    fn estimate_faster_than_full_but_comparable() {
        let w = benchmarks::compress();
        let mem = MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(8));
        let sys = SystemConfig::with_shared_bus(&w, mem.clone()).unwrap();
        let full = simulate(&sys, &w, N);
        let brg = Brg::profile(&w, &mem, N);
        let levels = cluster_levels(&brg, ClusterOrder::LowestFirst);
        let lib = ConnectivityLibrary::amba();
        // Find the allocation matching the shared-bus baseline is not the
        // point; just check estimates are the right order of magnitude.
        let conn = crate::allocate::enumerate_allocations(&brg, levels.last().unwrap(), &lib, 10);
        for c in conn {
            let p = estimate_candidate(&w, &mem, c, N, SamplingConfig::paper()).unwrap();
            assert!(p.metrics.latency_cycles > 0.2 * full.avg_latency_cycles);
            assert!(p.metrics.latency_cycles < 5.0 * full.avg_latency_cycles);
        }
    }
}
