//! Allocation of logical connections to connectivity components.
//!
//! "For each such clustering level, we then explore all feasible
//! assignments of the clusters to connectivity components from the
//! library" — a cluster of `k` channels can be carried by any library
//! component on the right side of the chip boundary with at least `k`
//! ports. Each assignment instantiates one component per cluster and yields
//! a complete [`ConnectivityArchitecture`] candidate.

use crate::brg::Brg;
use crate::cluster::Clustering;
use mce_connlib::{ChannelId, ConnComponent, ConnectivityArchitecture, ConnectivityLibrary};

/// Enumerates the feasible allocations of `clustering`'s clusters to
/// `library` components, up to `max` architectures (the cross product is
/// walked in mixed-radix order and truncated).
///
/// Returns an empty vector if some cluster has no feasible component (e.g.
/// a 3-channel cluster when the library only has dedicated links).
pub fn enumerate_allocations(
    brg: &Brg,
    clustering: &Clustering,
    library: &ConnectivityLibrary,
    max: usize,
) -> Vec<ConnectivityArchitecture> {
    enumerate_allocations_filtered(brg, clustering, library, max, 0.0)
}

/// Peak sustained bandwidth of a component, bytes per cycle.
fn peak_bandwidth(c: &ConnComponent) -> f64 {
    let p = c.params();
    p.width_bytes as f64 / p.cycles_per_beat.max(1) as f64
}

/// Like [`enumerate_allocations`], additionally requiring each component's
/// peak bandwidth to be at least `min_headroom ×` the cluster's measured
/// bandwidth requirement — the paper's "map each such cluster to
/// connectivity modules" *based on the bandwidth requirement*. With
/// `min_headroom = 0.0` no filtering occurs; values around 2–4 prune
/// allocations that would saturate (a hot cluster on a narrow APB) before
/// any simulation is spent on them.
pub fn enumerate_allocations_filtered(
    brg: &Brg,
    clustering: &Clustering,
    library: &ConnectivityLibrary,
    max: usize,
    min_headroom: f64,
) -> Vec<ConnectivityArchitecture> {
    // Candidate components per cluster.
    let candidates: Vec<Vec<&ConnComponent>> = clustering
        .clusters
        .iter()
        .map(|cluster| {
            library
                .components()
                .iter()
                .filter(|c| {
                    c.params().off_chip == cluster.off_chip
                        && c.params().max_ports as usize >= cluster.len()
                        && (min_headroom <= 0.0
                            || peak_bandwidth(c) >= cluster.bandwidth * min_headroom)
                })
                .collect()
        })
        .collect();
    if candidates.iter().any(Vec::is_empty) {
        return Vec::new();
    }

    let total: usize = candidates
        .iter()
        .map(Vec::len)
        .try_fold(1usize, |acc, n| acc.checked_mul(n))
        .unwrap_or(usize::MAX);
    let count = total.min(max);

    let channels: Vec<_> = brg.arcs().iter().map(|a| a.channel.clone()).collect();
    let mut out = Vec::with_capacity(count);
    let mut digits = vec![0usize; candidates.len()];
    for _ in 0..count {
        // Materialize the architecture for the current digit vector.
        let mut arch = ConnectivityArchitecture::new(channels.clone());
        for (ci, cluster) in clustering.clusters.iter().enumerate() {
            let component = *candidates[ci][digits[ci]];
            let link = arch.add_link(format!("l{ci}"), component);
            for &arc in &cluster.arcs {
                arch.assign(ChannelId::new(arc), link);
            }
        }
        debug_assert!(
            arch.validate().is_ok(),
            "enumerated allocation must validate"
        );
        out.push(arch);

        // Mixed-radix increment.
        for (d, c) in digits.iter_mut().zip(&candidates) {
            *d += 1;
            if *d < c.len() {
                break;
            }
            *d = 0;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{cluster_levels, ClusterOrder};
    use mce_appmodel::benchmarks;
    use mce_connlib::ConnComponentKind;
    use mce_memlib::{CacheConfig, MemoryArchitecture};

    const N: usize = 15_000;

    fn cache_brg() -> Brg {
        let w = benchmarks::vocoder();
        let mem = MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(4));
        Brg::profile(&w, &mem, N)
    }

    #[test]
    fn singleton_clusters_get_full_component_choice() {
        let brg = cache_brg();
        let levels = cluster_levels(&brg, ClusterOrder::LowestFirst);
        let lib = ConnectivityLibrary::amba();
        // Level 0: one on-chip singleton (5 on-chip kinds) × one off-chip
        // singleton (3 off-chip widths) = 15 allocations.
        let allocs = enumerate_allocations(&brg, &levels[0], &lib, 1000);
        assert_eq!(allocs.len(), 15);
    }

    #[test]
    fn all_enumerated_allocations_validate() {
        let brg = cache_brg();
        let lib = ConnectivityLibrary::amba();
        for level in cluster_levels(&brg, ClusterOrder::LowestFirst) {
            for arch in enumerate_allocations(&brg, &level, &lib, 1000) {
                assert!(arch.validate().is_ok());
            }
        }
    }

    #[test]
    fn multi_channel_clusters_exclude_dedicated() {
        let w = benchmarks::li();
        let mem = MemoryArchitecture::builder("two")
            .module(
                "L1",
                mce_memlib::MemModuleKind::Cache(CacheConfig::kilobytes(4)),
            )
            .module(
                "dma",
                mce_memlib::MemModuleKind::SelfIndirectDma {
                    depth: 16,
                    element_bytes: 8,
                },
            )
            .map(mce_appmodel::DsId::new(0), 1)
            .map_rest_to(0)
            .build(&w)
            .unwrap();
        let brg = Brg::profile(&w, &mem, N);
        let levels = cluster_levels(&brg, ClusterOrder::LowestFirst);
        let lib = ConnectivityLibrary::amba();
        let last = levels.last().unwrap(); // fully merged: 2-channel on-chip cluster
        for arch in enumerate_allocations(&brg, last, &lib, 1000) {
            for kind in arch.kinds_used() {
                assert_ne!(
                    kind,
                    ConnComponentKind::Dedicated,
                    "dedicated links cannot carry 2 channels"
                );
            }
        }
    }

    #[test]
    fn cap_truncates() {
        let brg = cache_brg();
        let levels = cluster_levels(&brg, ClusterOrder::LowestFirst);
        let lib = ConnectivityLibrary::amba();
        let allocs = enumerate_allocations(&brg, &levels[0], &lib, 3);
        assert_eq!(allocs.len(), 3);
    }

    #[test]
    fn empty_when_no_feasible_component() {
        let brg = cache_brg();
        let levels = cluster_levels(&brg, ClusterOrder::LowestFirst);
        // A library with only on-chip components can't carry off-chip arcs.
        let mut lib = ConnectivityLibrary::new();
        lib.add(ConnComponent::new(ConnComponentKind::AmbaAhb));
        let allocs = enumerate_allocations(&brg, &levels[0], &lib, 1000);
        assert!(allocs.is_empty());
    }

    #[test]
    fn bandwidth_filter_prunes_narrow_components() {
        // A very hot cluster should lose the narrow components once the
        // headroom filter is on.
        let w = benchmarks::compress();
        let mem = MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(1));
        let brg = Brg::profile(&w, &mem, N);
        let levels = cluster_levels(&brg, ClusterOrder::LowestFirst);
        let lib = ConnectivityLibrary::amba();
        let unfiltered = enumerate_allocations(&brg, &levels[0], &lib, 1000);
        let filtered = enumerate_allocations_filtered(&brg, &levels[0], &lib, 1000, 50.0);
        assert!(
            filtered.len() < unfiltered.len(),
            "{} vs {}",
            filtered.len(),
            unfiltered.len()
        );
        // Zero headroom is the unfiltered behaviour.
        let zero = enumerate_allocations_filtered(&brg, &levels[0], &lib, 1000, 0.0);
        assert_eq!(zero.len(), unfiltered.len());
    }

    #[test]
    fn allocations_are_distinct() {
        let brg = cache_brg();
        let levels = cluster_levels(&brg, ClusterOrder::LowestFirst);
        let lib = ConnectivityLibrary::amba();
        let allocs = enumerate_allocations(&brg, &levels[0], &lib, 1000);
        for i in 0..allocs.len() {
            for j in (i + 1)..allocs.len() {
                assert_ne!(allocs[i], allocs[j], "duplicate allocation {i}/{j}");
            }
        }
    }
}
