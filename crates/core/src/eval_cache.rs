//! The cross-scenario evaluation cache.
//!
//! Candidate evaluations recur across the exploration: Phase I re-derives
//! the same (memory, connectivity) pairings at different clustering
//! levels, strategy comparisons (Table 2) re-estimate identical candidate
//! sets, and repeated CLI runs redo everything. The [`EvalCache`] memoizes
//! evaluated [`Metrics`] under the canonical structural key of
//! [`design_point`](crate::design_point), so any evaluation with the same
//! structure — across scenarios, strategies, or runs (via
//! [`EvalCache::save`] / [`EvalCache::load`]) — is answered without
//! simulating.
//!
//! The cache is N-way lock-striped: keys map to one of up to
//! [`MAX_SHARDS`] shards, each an independently locked FIFO-bounded map,
//! so concurrent readers rarely contend. Statistics are atomics,
//! readable at any time without locking the shards. Zero dependencies
//! beyond the standard library; the spill format is hand-written JSON
//! read back with `mce_obs`'s parser, so it never drifts with a
//! serialization framework.
//!
//! Determinism: the evaluation engine probes and populates the cache
//! serially (only the simulations between run in parallel), so hit/miss
//! totals — and, more importantly, results — are identical for any thread
//! count. See [`engine`](crate::engine).

use crate::design_point::{CanonKey, Metrics};
use mce_error::MceError;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Upper bound on the number of lock stripes.
pub const MAX_SHARDS: usize = 16;

/// Default capacity (total resident entries across all shards).
pub const DEFAULT_CAPACITY: usize = 65_536;

/// Version tag of the spill format. Version 2 added the per-entry
/// checksum field; version-1 files are rejected (re-warm the cache).
const SPILL_VERSION: u64 = 2;

/// Aggregate cache statistics, monotonically increasing over the cache's
/// lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries stored.
    pub inserts: u64,
    /// Entries evicted by the FIFO capacity bound.
    pub evictions: u64,
}

struct Shard {
    map: HashMap<CanonKey, Metrics>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<CanonKey>,
}

/// A sharded, capacity-bounded memoization cache of evaluated metrics.
pub struct EvalCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
}

impl EvalCache {
    /// A cache with the [`DEFAULT_CAPACITY`].
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// A cache holding at most `capacity` entries in total.
    ///
    /// The capacity is divided evenly across up to [`MAX_SHARDS`] lock
    /// stripes (fewer when `capacity` is small); each stripe evicts its
    /// oldest entry when its quota fills, so total residency never
    /// exceeds `capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let shard_count = capacity.min(MAX_SHARDS);
        let shards = (0..shard_count)
            .map(|_| {
                Mutex::new(Shard {
                    map: HashMap::new(),
                    order: VecDeque::new(),
                })
            })
            .collect();
        EvalCache {
            shards,
            per_shard_cap: (capacity / shard_count).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: CanonKey) -> &Mutex<Shard> {
        // The key is already a high-quality hash; the high lane picks the
        // stripe without further mixing.
        &self.shards[(key.hi as usize) % self.shards.len()]
    }

    /// Looks up a key, counting a hit or miss.
    pub fn get(&self, key: CanonKey) -> Option<Metrics> {
        let found = self.peek(key);
        match found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Looks up a key without touching the hit/miss statistics.
    ///
    /// For probes whose outcome may be thrown away: the evaluation
    /// engine peeks during the batch probe phase and calls
    /// [`tally_probes`](EvalCache::tally_probes) only when the batch
    /// commits, so a discarded (cancelled or budget-exhausted) batch
    /// leaves the lifetime statistics — which checkpoints persist —
    /// untouched.
    pub fn peek(&self, key: CanonKey) -> Option<Metrics> {
        self.shard(key)
            .lock()
            .expect("cache shard poisoned")
            .map
            .get(&key)
            .copied()
    }

    /// Records the hit/miss outcomes of [`peek`](EvalCache::peek)ed
    /// probes after their batch committed.
    pub fn tally_probes(&self, hits: u64, misses: u64) {
        self.hits.fetch_add(hits, Ordering::Relaxed);
        self.misses.fetch_add(misses, Ordering::Relaxed);
    }

    /// Stores an evaluation. Returns `false` (and changes nothing) if the
    /// key was already present; evicts the shard's oldest entry when its
    /// quota is full.
    pub fn insert(&self, key: CanonKey, metrics: Metrics) -> bool {
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        if shard.map.contains_key(&key) {
            return false;
        }
        if shard.order.len() >= self.per_shard_cap {
            if let Some(oldest) = shard.order.pop_front() {
                shard.map.remove(&oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.map.insert(key, metrics);
        shard.order.push_back(key);
        self.inserts.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total capacity (entries) across all shards.
    pub fn capacity(&self) -> usize {
        self.per_shard_cap * self.shards.len()
    }

    /// A snapshot of the lifetime statistics.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    // -- checkpoint support ------------------------------------------------

    /// Every resident entry in exact insertion (FIFO) order: shards in
    /// stripe order, each shard's queue oldest-first.
    ///
    /// Feeding this to [`EvalCache::from_entries_fifo`] with the same
    /// capacity reconstructs an identical cache — same membership *and*
    /// same future eviction order — which checkpoint/resume relies on to
    /// keep a resumed run's hit/miss/eviction sequence bit-identical.
    pub fn entries_fifo(&self) -> Vec<(CanonKey, Metrics)> {
        let mut entries = Vec::with_capacity(self.len());
        for shard in &self.shards {
            let shard = shard.lock().expect("cache shard poisoned");
            for key in &shard.order {
                if let Some(m) = shard.map.get(key) {
                    entries.push((*key, *m));
                }
            }
        }
        entries
    }

    /// Rebuilds a cache from [`EvalCache::entries_fifo`] output.
    ///
    /// Statistics start at zero (the inserts performed here are then
    /// erased); restore the originals with [`EvalCache::restore_stats`].
    pub fn from_entries_fifo(
        entries: impl IntoIterator<Item = (CanonKey, Metrics)>,
        capacity: usize,
    ) -> Self {
        let cache = Self::with_capacity(capacity);
        for (key, m) in entries {
            cache.insert(key, m);
        }
        cache.restore_stats(CacheStats::default());
        cache
    }

    /// Overwrites the lifetime statistics (checkpoint restore).
    pub fn restore_stats(&self, stats: CacheStats) {
        self.hits.store(stats.hits, Ordering::Relaxed);
        self.misses.store(stats.misses, Ordering::Relaxed);
        self.inserts.store(stats.inserts, Ordering::Relaxed);
        self.evictions.store(stats.evictions, Ordering::Relaxed);
    }

    // -- spill / warm-start ------------------------------------------------

    /// Serializes every resident entry to the JSON spill form.
    ///
    /// Keys and f64 bit patterns are hex strings — exact round-trips with
    /// no dependence on any reader's float precision — and each entry
    /// carries an FNV-1a checksum over its other four fields, so a
    /// corrupted entry (a flipped bit inside a hex digit still parses) is
    /// detected rather than silently wrong. Entries are sorted by key, so
    /// the output is byte-stable regardless of insertion or shard order.
    pub fn to_spill_json(&self) -> String {
        let mut entries: Vec<(CanonKey, Metrics)> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("cache shard poisoned");
            entries.extend(shard.map.iter().map(|(k, m)| (*k, *m)));
        }
        entries.sort_unstable_by_key(|(k, _)| *k);
        let mut out = String::with_capacity(64 + entries.len() * 116);
        out.push_str("{\"version\":");
        out.push_str(&SPILL_VERSION.to_string());
        out.push_str(",\"entries\":[");
        for (i, (key, m)) in entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let [key, cost, lat, energy, check] = format_spill_entry(key, m);
            out.push_str(&format!(
                "[\"{key}\",\"{cost}\",\"{lat}\",\"{energy}\",\"{check}\"]"
            ));
        }
        out.push_str("]}");
        out
    }

    /// Writes the spill JSON to `path` atomically (write a sibling
    /// temporary, then rename), so a crash mid-save never leaves a
    /// truncated spill behind.
    ///
    /// # Errors
    ///
    /// Returns [`MceError::Io`] if the file cannot be written.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), MceError> {
        mce_error::atomic_write(path, self.to_spill_json().as_bytes())
    }

    /// Parses a spill document into a fresh cache with the given
    /// `capacity`, rejecting the whole document on any bad entry.
    ///
    /// # Errors
    ///
    /// Returns [`MceError::Json`] on malformed documents, unknown
    /// versions, or entries that are truncated, checksum-mismatched, or
    /// carry non-finite / negative metrics.
    pub fn from_spill_json(text: &str, capacity: usize) -> Result<Self, MceError> {
        Self::parse_spill(text, capacity, false).map(|(cache, _)| cache)
    }

    /// [`EvalCache::from_spill_json`] in salvage mode: individually
    /// corrupt entries are skipped (returned as the dropped count)
    /// instead of failing the load; only document-level damage — not
    /// valid JSON, wrong version, missing `entries` — is an error.
    ///
    /// # Errors
    ///
    /// Returns [`MceError::Json`] on document-level damage.
    pub fn from_spill_json_salvage(text: &str, capacity: usize) -> Result<(Self, usize), MceError> {
        Self::parse_spill(text, capacity, true)
    }

    fn parse_spill(text: &str, capacity: usize, salvage: bool) -> Result<(Self, usize), MceError> {
        let ctx = "parsing eval cache spill";
        let doc = mce_obs::json::parse(text).map_err(|e| MceError::json(ctx, e))?;
        let version = doc
            .get("version")
            .and_then(|v| v.as_u64())
            .ok_or_else(|| MceError::json(ctx, "missing `version`"))?;
        if version != SPILL_VERSION {
            return Err(MceError::json(
                ctx,
                format!("unsupported spill version {version} (expected {SPILL_VERSION})"),
            ));
        }
        let entries = doc
            .get("entries")
            .and_then(|v| v.as_array())
            .ok_or_else(|| MceError::json(ctx, "missing `entries` array"))?;
        let cache = Self::with_capacity(capacity);
        let mut dropped = 0usize;
        for (i, entry) in entries.iter().enumerate() {
            match parse_spill_entry(entry) {
                Ok((key, m)) => {
                    cache.insert(key, m);
                }
                Err(why) if salvage => {
                    let _ = why;
                    dropped += 1;
                }
                Err(why) => {
                    return Err(MceError::json(ctx, format!("entry {i}: {why}")));
                }
            }
        }
        cache.restore_stats(CacheStats::default());
        Ok((cache, dropped))
    }

    /// Loads a spill file into a fresh cache with the given `capacity`,
    /// salvaging what it can: individually corrupt entries are dropped
    /// (with an `eval_cache.salvage_dropped` counter and a log line), and
    /// only an unreadable, non-JSON or wrong-version file is an error.
    ///
    /// # Errors
    ///
    /// Returns [`MceError::Io`] if the file cannot be read, or
    /// [`MceError::Json`] on document-level damage.
    pub fn load(path: impl AsRef<Path>, capacity: usize) -> Result<Self, MceError> {
        Self::load_salvage(path, capacity).map(|(cache, _)| cache)
    }

    /// [`EvalCache::load`], also returning how many corrupt entries were
    /// dropped.
    ///
    /// # Errors
    ///
    /// As [`EvalCache::load`].
    pub fn load_salvage(
        path: impl AsRef<Path>,
        capacity: usize,
    ) -> Result<(Self, usize), MceError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| MceError::io(format!("reading eval cache `{}`", path.display()), e))?;
        let (cache, dropped) = Self::from_spill_json_salvage(&text, capacity)?;
        if dropped > 0 {
            mce_obs::counter_add("eval_cache.salvage_dropped", dropped as u64);
            mce_obs::info(|| {
                format!(
                    "eval cache `{}`: dropped {dropped} corrupt entr{} during load",
                    path.display(),
                    if dropped == 1 { "y" } else { "ies" }
                )
            });
        }
        Ok((cache, dropped))
    }
}

/// FNV-1a 64 over an entry's four serialized fields (with a separator
/// folded in after each), the per-entry corruption check of spill
/// version 2.
fn entry_checksum(key_hex: &str, cost: &str, lat_hex: &str, energy_hex: &str) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for field in [key_hex, cost, lat_hex, energy_hex] {
        for b in field.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(PRIME);
        }
        h = (h ^ 0xff).wrapping_mul(PRIME);
    }
    h
}

/// Formats one cache entry as its five spill fields — key hex, decimal
/// gate cost, the two f64 metric bit patterns, and the FNV-1a checksum
/// over the other four. Shared by the spill format and the session
/// checkpoint, so both carry the same per-entry corruption detection.
pub fn format_spill_entry(key: &CanonKey, m: &Metrics) -> [String; 5] {
    let key = key.to_hex();
    let cost = m.cost_gates.to_string();
    let lat = format!("{:016x}", m.latency_cycles.to_bits());
    let energy = format!("{:016x}", m.energy_nj.to_bits());
    let check = format!("{:016x}", entry_checksum(&key, &cost, &lat, &energy));
    [key, cost, lat, energy, check]
}

/// Decodes one spill entry produced by [`format_spill_entry`], verifying
/// shape, checksum and metric sanity. The error is a short reason,
/// suitable for wrapping in [`MceError::Json`].
pub fn parse_spill_entry(entry: &mce_obs::json::Value) -> Result<(CanonKey, Metrics), String> {
    let fields = entry
        .as_array()
        .filter(|f| f.len() == 5)
        .ok_or("expected 5 fields")?;
    let field = |j: usize, what: &str| fields[j].as_str().ok_or_else(|| format!("bad {what}"));
    let (key_hex, cost, lat, energy) = (
        field(0, "key")?,
        field(1, "cost")?,
        field(2, "latency")?,
        field(3, "energy")?,
    );
    let check = u64::from_str_radix(field(4, "checksum")?, 16).map_err(|_| "bad checksum")?;
    if check != entry_checksum(key_hex, cost, lat, energy) {
        return Err("checksum mismatch".to_owned());
    }
    let key = CanonKey::from_hex(key_hex).ok_or("bad key")?;
    let cost_gates: u64 = cost.parse().map_err(|_| "bad cost")?;
    let bits = |s: &str, what: &str| u64::from_str_radix(s, 16).map_err(|_| format!("bad {what}"));
    let latency_cycles = f64::from_bits(bits(lat, "latency")?);
    let energy_nj = f64::from_bits(bits(energy, "energy")?);
    if !(latency_cycles.is_finite()
        && latency_cycles >= 0.0
        && energy_nj.is_finite()
        && energy_nj >= 0.0)
    {
        return Err("non-finite or negative metrics".to_owned());
    }
    Ok((
        key,
        Metrics {
            cost_gates,
            latency_cycles,
            energy_nj,
        },
    ))
}

impl Default for EvalCache {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for EvalCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalCache")
            .field("len", &self.len())
            .field("capacity", &self.capacity())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> CanonKey {
        CanonKey {
            hi: i.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            lo: i,
        }
    }

    fn metrics(i: u64) -> Metrics {
        Metrics::new(i, i as f64 + 0.5, i as f64 * 0.25)
    }

    #[test]
    fn get_after_insert_round_trips() {
        let cache = EvalCache::with_capacity(64);
        assert_eq!(cache.get(key(1)), None);
        assert!(cache.insert(key(1), metrics(1)));
        assert_eq!(cache.get(key(1)), Some(metrics(1)));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 1, 1));
    }

    #[test]
    fn double_insert_is_a_noop() {
        let cache = EvalCache::with_capacity(64);
        assert!(cache.insert(key(1), metrics(1)));
        assert!(!cache.insert(key(1), metrics(2)));
        assert_eq!(cache.get(key(1)), Some(metrics(1)), "first value wins");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn capacity_bounds_residency() {
        let capacity = 100;
        let cache = EvalCache::with_capacity(capacity);
        for i in 0..10 * capacity as u64 {
            cache.insert(key(i), metrics(i));
        }
        assert!(
            cache.len() <= capacity,
            "{} resident > capacity {capacity}",
            cache.len()
        );
        let s = cache.stats();
        assert_eq!(s.inserts - s.evictions, cache.len() as u64);
        assert!(s.evictions > 0);
    }

    #[test]
    fn eviction_is_fifo_within_a_shard() {
        // Capacity 1 → a single shard with quota 1: each insert evicts
        // the previous entry.
        let cache = EvalCache::with_capacity(1);
        cache.insert(key(1), metrics(1));
        cache.insert(key(2), metrics(2));
        assert_eq!(cache.get(key(1)), None, "oldest evicted");
        assert_eq!(cache.get(key(2)), Some(metrics(2)));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn tiny_capacities_still_work() {
        for capacity in 1..=5 {
            let cache = EvalCache::with_capacity(capacity);
            for i in 0..20 {
                cache.insert(key(i), metrics(i));
            }
            assert!(cache.len() <= capacity, "capacity {capacity}");
            assert!(!cache.is_empty());
        }
    }

    #[test]
    fn spill_round_trips_exactly() {
        let cache = EvalCache::with_capacity(64);
        // Metrics chosen to stress float round-tripping.
        let values = [
            (key(1), Metrics::new(42, 1.0 / 3.0, 2.0 / 7.0)),
            (key(2), Metrics::new(u64::MAX, f64::MIN_POSITIVE, 0.0)),
            (key(3), Metrics::new(0, 1e300, 12.125)),
        ];
        for (k, m) in values {
            cache.insert(k, m);
        }
        let spill = cache.to_spill_json();
        let back = EvalCache::from_spill_json(&spill, 64).unwrap();
        assert_eq!(back.len(), 3);
        for (k, m) in values {
            let got = back.get(k).expect("entry survived");
            assert_eq!(got.cost_gates, m.cost_gates);
            assert_eq!(got.latency_cycles.to_bits(), m.latency_cycles.to_bits());
            assert_eq!(got.energy_nj.to_bits(), m.energy_nj.to_bits());
        }
    }

    #[test]
    fn spill_is_deterministic() {
        // Same contents inserted in different orders → identical bytes.
        let a = EvalCache::with_capacity(64);
        let b = EvalCache::with_capacity(64);
        for i in 0..20 {
            a.insert(key(i), metrics(i));
            b.insert(key(19 - i), metrics(19 - i));
        }
        assert_eq!(a.to_spill_json(), b.to_spill_json());
    }

    #[test]
    fn save_and_load_via_file() {
        let path = std::env::temp_dir().join(format!("mce_eval_cache_{}.json", std::process::id()));
        let cache = EvalCache::with_capacity(16);
        cache.insert(key(7), metrics(7));
        cache.save(&path).unwrap();
        let back = EvalCache::load(&path, 16).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back.get(key(7)), Some(metrics(7)));
    }

    /// A syntactically valid v2 entry whose fields are nonsense (the
    /// checksum is correct, so deeper validation must catch it).
    fn checksummed_entry(key: &str, cost: &str, lat: &str, energy: &str) -> String {
        format!(
            "[\"{key}\",\"{cost}\",\"{lat}\",\"{energy}\",\"{:016x}\"]",
            super::entry_checksum(key, cost, lat, energy)
        )
    }

    #[test]
    fn malformed_spills_are_errors() {
        let nan = checksummed_entry(
            "00000000000000000000000000000001",
            "1",
            "7ff8000000000000",
            "0",
        );
        let short_key = checksummed_entry("short", "1", "0", "0");
        for bad in [
            "{not json".to_owned(),
            "{}".to_owned(),
            r#"{"version":99,"entries":[]}"#.to_owned(),
            // Version 1 (pre-checksum) spills are rejected, not guessed at.
            r#"{"version":1,"entries":[["short","1","0","0"]]}"#.to_owned(),
            format!(r#"{{"version":2,"entries":[{short_key}]}}"#),
            r#"{"version":2,"entries":[[1,2,3,4,5]]}"#.to_owned(),
            // A four-field (v1-shaped) entry inside a v2 document.
            r#"{"version":2,"entries":[["00000000000000000000000000000001","1","0","0"]]}"#
                .to_owned(),
            // NaN latency bits behind a valid checksum.
            format!(r#"{{"version":2,"entries":[{nan}]}}"#),
        ] {
            let err = EvalCache::from_spill_json(&bad, 16).unwrap_err();
            assert!(matches!(err, MceError::Json { .. }), "{bad}: {err}");
        }
    }

    #[test]
    fn corrupt_entries_fail_their_checksum() {
        let cache = EvalCache::with_capacity(16);
        cache.insert(key(1), metrics(1));
        let spill = cache.to_spill_json();
        // Flip one hex digit inside the latency field: still valid JSON,
        // still parseable hex — only the checksum knows.
        let lat = format!("{:016x}", metrics(1).latency_cycles.to_bits());
        let tampered_digit = if lat.as_bytes()[0] == b'0' { "1" } else { "0" };
        let tampered = spill.replace(&lat, &format!("{tampered_digit}{}", &lat[1..]));
        assert_ne!(spill, tampered, "tampering must change the document");
        let err = EvalCache::from_spill_json(&tampered, 16).unwrap_err();
        assert!(matches!(err, MceError::Json { .. }), "{err}");
    }

    #[test]
    fn salvage_skips_corrupt_entries_and_keeps_the_rest() {
        let cache = EvalCache::with_capacity(16);
        cache.insert(key(1), metrics(1));
        cache.insert(key(2), metrics(2));
        let spill = cache.to_spill_json();
        // Corrupt exactly one entry's checksum field.
        let k1 = key(1).to_hex();
        let cost = metrics(1).cost_gates.to_string();
        let lat = format!("{:016x}", metrics(1).latency_cycles.to_bits());
        let energy = format!("{:016x}", metrics(1).energy_nj.to_bits());
        let good = checksummed_entry(&k1, &cost, &lat, &energy);
        let bad = format!("[\"{k1}\",\"{cost}\",\"{lat}\",\"{energy}\",\"0000000000000000\"]");
        let tampered = spill.replace(&good, &bad);
        assert_ne!(spill, tampered);
        let (back, dropped) = EvalCache::from_spill_json_salvage(&tampered, 16).unwrap();
        assert_eq!(dropped, 1);
        assert_eq!(back.len(), 1);
        assert_eq!(back.get(key(2)), Some(metrics(2)));
        // Salvage never rescues document-level damage.
        assert!(EvalCache::from_spill_json_salvage("{nope", 16).is_err());
        assert!(
            EvalCache::from_spill_json_salvage(r#"{"version":1,"entries":[]}"#, 16).is_err(),
            "version mismatch stays fatal in salvage mode"
        );
    }

    #[test]
    fn entries_fifo_round_trips_order_and_stats() {
        // Capacity 2 → one or two shards with tiny quotas; insert enough
        // to exercise eviction, then rebuild and check the clone evicts
        // identically.
        let cache = EvalCache::with_capacity(4);
        for i in 0..6 {
            cache.insert(key(i), metrics(i));
        }
        let entries = cache.entries_fifo();
        assert_eq!(entries.len(), cache.len());
        let clone = EvalCache::from_entries_fifo(entries.clone(), 4);
        assert_eq!(clone.entries_fifo(), entries, "FIFO order preserved");
        assert_eq!(clone.stats(), CacheStats::default(), "stats start fresh");
        clone.restore_stats(cache.stats());
        assert_eq!(clone.stats(), cache.stats());
        // The same future insert produces the same eviction on both.
        cache.insert(key(100), metrics(100));
        clone.insert(key(100), metrics(100));
        assert_eq!(clone.entries_fifo(), cache.entries_fifo());
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = EvalCache::load("/nonexistent/cache.json", 16).unwrap_err();
        assert!(matches!(err, MceError::Io { .. }), "{err}");
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache = std::sync::Arc::new(EvalCache::with_capacity(256));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let cache = cache.clone();
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        let k = key(t * 1000 + i);
                        cache.insert(k, metrics(i));
                        let _ = cache.get(k);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(cache.len() <= cache.capacity());
        assert!(cache.stats().inserts >= 256);
    }
}
