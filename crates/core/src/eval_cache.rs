//! The cross-scenario evaluation cache.
//!
//! Candidate evaluations recur across the exploration: Phase I re-derives
//! the same (memory, connectivity) pairings at different clustering
//! levels, strategy comparisons (Table 2) re-estimate identical candidate
//! sets, and repeated CLI runs redo everything. The [`EvalCache`] memoizes
//! evaluated [`Metrics`] under the canonical structural key of
//! [`design_point`](crate::design_point), so any evaluation with the same
//! structure — across scenarios, strategies, or runs (via
//! [`EvalCache::save`] / [`EvalCache::load`]) — is answered without
//! simulating.
//!
//! The cache is N-way lock-striped: keys map to one of up to
//! [`MAX_SHARDS`] shards, each an independently locked FIFO-bounded map,
//! so concurrent readers rarely contend. Statistics are atomics,
//! readable at any time without locking the shards. Zero dependencies
//! beyond the standard library; the spill format is hand-written JSON
//! read back with `mce_obs`'s parser, so it never drifts with a
//! serialization framework.
//!
//! Determinism: the evaluation engine probes and populates the cache
//! serially (only the simulations between run in parallel), so hit/miss
//! totals — and, more importantly, results — are identical for any thread
//! count. See [`engine`](crate::engine).

use crate::design_point::{CanonKey, Metrics};
use mce_error::MceError;
use std::collections::{HashMap, VecDeque};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Upper bound on the number of lock stripes.
pub const MAX_SHARDS: usize = 16;

/// Default capacity (total resident entries across all shards).
pub const DEFAULT_CAPACITY: usize = 65_536;

/// Version tag of the spill format.
const SPILL_VERSION: u64 = 1;

/// Aggregate cache statistics, monotonically increasing over the cache's
/// lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries stored.
    pub inserts: u64,
    /// Entries evicted by the FIFO capacity bound.
    pub evictions: u64,
}

struct Shard {
    map: HashMap<CanonKey, Metrics>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<CanonKey>,
}

/// A sharded, capacity-bounded memoization cache of evaluated metrics.
pub struct EvalCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
}

impl EvalCache {
    /// A cache with the [`DEFAULT_CAPACITY`].
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// A cache holding at most `capacity` entries in total.
    ///
    /// The capacity is divided evenly across up to [`MAX_SHARDS`] lock
    /// stripes (fewer when `capacity` is small); each stripe evicts its
    /// oldest entry when its quota fills, so total residency never
    /// exceeds `capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let shard_count = capacity.min(MAX_SHARDS);
        let shards = (0..shard_count)
            .map(|_| {
                Mutex::new(Shard {
                    map: HashMap::new(),
                    order: VecDeque::new(),
                })
            })
            .collect();
        EvalCache {
            shards,
            per_shard_cap: (capacity / shard_count).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: CanonKey) -> &Mutex<Shard> {
        // The key is already a high-quality hash; the high lane picks the
        // stripe without further mixing.
        &self.shards[(key.hi as usize) % self.shards.len()]
    }

    /// Looks up a key, counting a hit or miss.
    pub fn get(&self, key: CanonKey) -> Option<Metrics> {
        let found = self.shard(key).lock().expect("cache shard poisoned").map.get(&key).copied();
        match found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Stores an evaluation. Returns `false` (and changes nothing) if the
    /// key was already present; evicts the shard's oldest entry when its
    /// quota is full.
    pub fn insert(&self, key: CanonKey, metrics: Metrics) -> bool {
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        if shard.map.contains_key(&key) {
            return false;
        }
        if shard.order.len() >= self.per_shard_cap {
            if let Some(oldest) = shard.order.pop_front() {
                shard.map.remove(&oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.map.insert(key, metrics);
        shard.order.push_back(key);
        self.inserts.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total capacity (entries) across all shards.
    pub fn capacity(&self) -> usize {
        self.per_shard_cap * self.shards.len()
    }

    /// A snapshot of the lifetime statistics.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    // -- spill / warm-start ------------------------------------------------

    /// Serializes every resident entry to the JSON spill form.
    ///
    /// Keys and f64 bit patterns are hex strings — exact round-trips with
    /// no dependence on any reader's float precision. Entries are sorted
    /// by key, so the output is byte-stable regardless of insertion or
    /// shard order.
    pub fn to_spill_json(&self) -> String {
        let mut entries: Vec<(CanonKey, Metrics)> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("cache shard poisoned");
            entries.extend(shard.map.iter().map(|(k, m)| (*k, *m)));
        }
        entries.sort_unstable_by_key(|(k, _)| *k);
        let mut out = String::with_capacity(64 + entries.len() * 96);
        out.push_str("{\"version\":");
        out.push_str(&SPILL_VERSION.to_string());
        out.push_str(",\"entries\":[");
        for (i, (key, m)) in entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "[\"{}\",\"{}\",\"{:016x}\",\"{:016x}\"]",
                key.to_hex(),
                m.cost_gates,
                m.latency_cycles.to_bits(),
                m.energy_nj.to_bits()
            ));
        }
        out.push_str("]}");
        out
    }

    /// Writes the spill JSON to `path`.
    ///
    /// # Errors
    ///
    /// Returns [`MceError::Io`] if the file cannot be written.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), MceError> {
        let path = path.as_ref();
        std::fs::write(path, self.to_spill_json())
            .map_err(|e| MceError::io(format!("writing eval cache `{}`", path.display()), e))
    }

    /// Parses a spill document into a fresh cache with the given
    /// `capacity`.
    ///
    /// # Errors
    ///
    /// Returns [`MceError::Json`] on malformed documents, unknown
    /// versions, or entries carrying non-finite / negative metrics.
    pub fn from_spill_json(text: &str, capacity: usize) -> Result<Self, MceError> {
        let ctx = "parsing eval cache spill";
        let doc = mce_obs::json::parse(text).map_err(|e| MceError::json(ctx, e))?;
        let version = doc
            .get("version")
            .and_then(|v| v.as_u64())
            .ok_or_else(|| MceError::json(ctx, "missing `version`"))?;
        if version != SPILL_VERSION {
            return Err(MceError::json(
                ctx,
                format!("unsupported spill version {version}"),
            ));
        }
        let entries = doc
            .get("entries")
            .and_then(|v| v.as_array())
            .ok_or_else(|| MceError::json(ctx, "missing `entries` array"))?;
        let cache = Self::with_capacity(capacity);
        for (i, entry) in entries.iter().enumerate() {
            let fields = entry
                .as_array()
                .filter(|f| f.len() == 4)
                .ok_or_else(|| MceError::json(ctx, format!("entry {i}: expected 4 fields")))?;
            let field = |j: usize, what: &str| {
                fields[j]
                    .as_str()
                    .ok_or_else(|| MceError::json(ctx, format!("entry {i}: bad {what}")))
            };
            let key = CanonKey::from_hex(field(0, "key")?)
                .ok_or_else(|| MceError::json(ctx, format!("entry {i}: bad key")))?;
            let cost_gates: u64 = field(1, "cost")?
                .parse()
                .map_err(|_| MceError::json(ctx, format!("entry {i}: bad cost")))?;
            let bits = |j: usize, what: &str| {
                u64::from_str_radix(field(j, what)?, 16)
                    .map_err(|_| MceError::json(ctx, format!("entry {i}: bad {what}")))
            };
            let latency_cycles = f64::from_bits(bits(2, "latency")?);
            let energy_nj = f64::from_bits(bits(3, "energy")?);
            if !(latency_cycles.is_finite() && latency_cycles >= 0.0)
                || !(energy_nj.is_finite() && energy_nj >= 0.0)
            {
                return Err(MceError::json(
                    ctx,
                    format!("entry {i}: non-finite or negative metrics"),
                ));
            }
            cache.insert(
                key,
                Metrics {
                    cost_gates,
                    latency_cycles,
                    energy_nj,
                },
            );
        }
        Ok(cache)
    }

    /// Loads a spill file into a fresh cache with the given `capacity`.
    ///
    /// # Errors
    ///
    /// Returns [`MceError::Io`] if the file cannot be read, plus the
    /// [`EvalCache::from_spill_json`] errors.
    pub fn load(path: impl AsRef<Path>, capacity: usize) -> Result<Self, MceError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| MceError::io(format!("reading eval cache `{}`", path.display()), e))?;
        Self::from_spill_json(&text, capacity)
    }
}

impl Default for EvalCache {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for EvalCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalCache")
            .field("len", &self.len())
            .field("capacity", &self.capacity())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> CanonKey {
        CanonKey {
            hi: i.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            lo: i,
        }
    }

    fn metrics(i: u64) -> Metrics {
        Metrics::new(i, i as f64 + 0.5, i as f64 * 0.25)
    }

    #[test]
    fn get_after_insert_round_trips() {
        let cache = EvalCache::with_capacity(64);
        assert_eq!(cache.get(key(1)), None);
        assert!(cache.insert(key(1), metrics(1)));
        assert_eq!(cache.get(key(1)), Some(metrics(1)));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 1, 1));
    }

    #[test]
    fn double_insert_is_a_noop() {
        let cache = EvalCache::with_capacity(64);
        assert!(cache.insert(key(1), metrics(1)));
        assert!(!cache.insert(key(1), metrics(2)));
        assert_eq!(cache.get(key(1)), Some(metrics(1)), "first value wins");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn capacity_bounds_residency() {
        let capacity = 100;
        let cache = EvalCache::with_capacity(capacity);
        for i in 0..10 * capacity as u64 {
            cache.insert(key(i), metrics(i));
        }
        assert!(
            cache.len() <= capacity,
            "{} resident > capacity {capacity}",
            cache.len()
        );
        let s = cache.stats();
        assert_eq!(s.inserts - s.evictions, cache.len() as u64);
        assert!(s.evictions > 0);
    }

    #[test]
    fn eviction_is_fifo_within_a_shard() {
        // Capacity 1 → a single shard with quota 1: each insert evicts
        // the previous entry.
        let cache = EvalCache::with_capacity(1);
        cache.insert(key(1), metrics(1));
        cache.insert(key(2), metrics(2));
        assert_eq!(cache.get(key(1)), None, "oldest evicted");
        assert_eq!(cache.get(key(2)), Some(metrics(2)));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn tiny_capacities_still_work() {
        for capacity in 1..=5 {
            let cache = EvalCache::with_capacity(capacity);
            for i in 0..20 {
                cache.insert(key(i), metrics(i));
            }
            assert!(cache.len() <= capacity, "capacity {capacity}");
            assert!(!cache.is_empty());
        }
    }

    #[test]
    fn spill_round_trips_exactly() {
        let cache = EvalCache::with_capacity(64);
        // Metrics chosen to stress float round-tripping.
        let values = [
            (key(1), Metrics::new(42, 1.0 / 3.0, 2.0 / 7.0)),
            (key(2), Metrics::new(u64::MAX, f64::MIN_POSITIVE, 0.0)),
            (key(3), Metrics::new(0, 1e300, 12.125)),
        ];
        for (k, m) in values {
            cache.insert(k, m);
        }
        let spill = cache.to_spill_json();
        let back = EvalCache::from_spill_json(&spill, 64).unwrap();
        assert_eq!(back.len(), 3);
        for (k, m) in values {
            let got = back.get(k).expect("entry survived");
            assert_eq!(got.cost_gates, m.cost_gates);
            assert_eq!(got.latency_cycles.to_bits(), m.latency_cycles.to_bits());
            assert_eq!(got.energy_nj.to_bits(), m.energy_nj.to_bits());
        }
    }

    #[test]
    fn spill_is_deterministic() {
        // Same contents inserted in different orders → identical bytes.
        let a = EvalCache::with_capacity(64);
        let b = EvalCache::with_capacity(64);
        for i in 0..20 {
            a.insert(key(i), metrics(i));
            b.insert(key(19 - i), metrics(19 - i));
        }
        assert_eq!(a.to_spill_json(), b.to_spill_json());
    }

    #[test]
    fn save_and_load_via_file() {
        let path = std::env::temp_dir().join(format!("mce_eval_cache_{}.json", std::process::id()));
        let cache = EvalCache::with_capacity(16);
        cache.insert(key(7), metrics(7));
        cache.save(&path).unwrap();
        let back = EvalCache::load(&path, 16).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back.get(key(7)), Some(metrics(7)));
    }

    #[test]
    fn malformed_spills_are_errors() {
        for bad in [
            "{not json",
            "{}",
            r#"{"version":99,"entries":[]}"#,
            r#"{"version":1,"entries":[["short","1","0","0"]]}"#,
            r#"{"version":1,"entries":[[1,2,3,4]]}"#,
            // NaN latency bits.
            r#"{"version":1,"entries":[["00000000000000000000000000000001","1","7ff8000000000000","0"]]}"#,
        ] {
            let err = EvalCache::from_spill_json(bad, 16).unwrap_err();
            assert!(matches!(err, MceError::Json { .. }), "{bad}: {err}");
        }
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = EvalCache::load("/nonexistent/cache.json", 16).unwrap_err();
        assert!(matches!(err, MceError::Io { .. }), "{err}");
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache = std::sync::Arc::new(EvalCache::with_capacity(256));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let cache = cache.clone();
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        let k = key(t * 1000 + i);
                        cache.insert(k, metrics(i));
                        let _ = cache.get(k);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(cache.len() <= cache.capacity());
        assert!(cache.stats().inserts >= 256);
    }
}
