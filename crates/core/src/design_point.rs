//! Design points: a complete system configuration with its metrics, and
//! the canonical structural hashing that identifies a design point for
//! cross-scenario memoization.
//!
//! ## Canonical hashing
//!
//! The evaluation engine caches metrics under a [`CanonKey`]: a 128-bit
//! structural digest of *(workload, memory architecture, connectivity
//! architecture, trace length, evaluation mode)*. The digest is
//! **canonical**: it covers exactly the structure that determines the
//! simulated metrics and nothing else —
//!
//! * memory-architecture and connectivity names are excluded (they label
//!   reports, never timing, energy or gate cost);
//! * connectivity links are hashed as an unordered set of
//!   (component, assigned-channel-indices) fingerprints, so two
//!   architectures that differ only in link declaration order or link
//!   names collide deliberately — they describe the same hardware. (For
//!   such permuted twins the simulator's link-order energy summation can
//!   differ in the last ulp; the cache canonically returns the
//!   first-evaluated metrics for both.)
//!
//! The hash is a hand-rolled dual-lane FNV-1a over the structural fields
//! (no serialization framework in the loop), so it is stable across runs,
//! platforms and serde versions.

use mce_appmodel::{AccessPattern, Workload};
use mce_connlib::{ConnComponent, ConnectivityArchitecture, LinkId};
use mce_memlib::{
    MemModuleKind, MemoryArchitecture, ReplacementPolicy, WriteMissPolicy, WritePolicy,
};
use mce_sim::{SamplingConfig, SystemConfig};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The three metrics the exploration trades off.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Total gate cost (memory modules + connectivity).
    pub cost_gates: u64,
    /// Average memory latency per access, cycles.
    pub latency_cycles: f64,
    /// Average energy per access, nJ.
    pub energy_nj: f64,
}

impl Metrics {
    /// Creates a metrics triple.
    ///
    /// # Panics
    ///
    /// Panics if latency or energy is not finite and non-negative.
    pub fn new(cost_gates: u64, latency_cycles: f64, energy_nj: f64) -> Self {
        assert!(
            latency_cycles.is_finite() && latency_cycles >= 0.0,
            "latency must be finite and non-negative"
        );
        assert!(
            energy_nj.is_finite() && energy_nj >= 0.0,
            "energy must be finite and non-negative"
        );
        Metrics {
            cost_gates,
            latency_cycles,
            energy_nj,
        }
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} gates, {:.2} cyc, {:.2} nJ",
            self.cost_gates, self.latency_cycles, self.energy_nj
        )
    }
}

/// A combined memory + connectivity design with its measured (or estimated)
/// metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// The full system configuration (re-simulatable).
    pub system: SystemConfig,
    /// The metrics this point was ranked by.
    pub metrics: Metrics,
    /// True if `metrics` came from time-sampled estimation (Phase I) rather
    /// than full simulation (Phase II).
    pub estimated: bool,
}

impl DesignPoint {
    /// Creates a design point.
    pub fn new(system: SystemConfig, metrics: Metrics, estimated: bool) -> Self {
        DesignPoint {
            system,
            metrics,
            estimated,
        }
    }

    /// One-line architecture description (memory `|` connectivity).
    pub fn describe(&self) -> String {
        self.system.describe()
    }
}

impl fmt::Display for DesignPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{} — {}",
            self.describe(),
            if self.estimated { " (est.)" } else { "" },
            self.metrics
        )
    }
}

// ---------------------------------------------------------------------------
// Canonical structural hashing
// ---------------------------------------------------------------------------

/// A 128-bit canonical digest identifying one evaluation of one design
/// point (see the module docs for what it covers and deliberately omits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CanonKey {
    /// High 64 bits (standard FNV-1a lane).
    pub hi: u64,
    /// Low 64 bits (second, decorrelated lane).
    pub lo: u64,
}

impl CanonKey {
    /// Renders the key as 32 lowercase hex digits (the spill-file form).
    pub fn to_hex(self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }

    /// Parses the [`CanonKey::to_hex`] form.
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 32 {
            return None;
        }
        let hi = u64::from_str_radix(&s[..16], 16).ok()?;
        let lo = u64::from_str_radix(&s[16..], 16).ok()?;
        Some(CanonKey { hi, lo })
    }
}

impl fmt::Display for CanonKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// Which evaluation a cache entry holds: Phase-I time-sampled estimation
/// (keyed by its sampling window) or Phase-II full simulation. The two
/// never alias — a sampled estimate must not satisfy a full-simulation
/// lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalMode {
    /// Time-sampled estimation with the given windows.
    Estimated(SamplingConfig),
    /// Full simulation of the whole trace prefix.
    Full,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// Second lane: offset from the upper half of the 128-bit FNV basis; the
/// multiplier is any odd constant decorrelated from the FNV prime.
const LANE2_OFFSET: u64 = 0x6c62_272e_07bb_0142;
const LANE2_PRIME: u64 = 0x9e37_79b9_7f4a_7c15;

/// Dual-lane FNV-1a over structural fields. Each lane mixes every input
/// byte; the two lanes differ in offset and multiplier, giving an
/// effectively 128-bit key from two cheap 64-bit streams.
struct CanonHasher {
    a: u64,
    b: u64,
}

impl CanonHasher {
    fn new(domain: &str) -> Self {
        let mut h = CanonHasher {
            a: FNV_OFFSET,
            b: LANE2_OFFSET,
        };
        h.str(domain);
        h
    }

    fn byte(&mut self, x: u8) {
        self.a = (self.a ^ u64::from(x)).wrapping_mul(FNV_PRIME);
        self.b = (self.b ^ u64::from(x)).wrapping_mul(LANE2_PRIME);
    }

    fn u64(&mut self, x: u64) {
        for b in x.to_le_bytes() {
            self.byte(b);
        }
    }

    fn u32(&mut self, x: u32) {
        self.u64(u64::from(x));
    }

    fn bool(&mut self, x: bool) {
        self.byte(u8::from(x));
    }

    /// Bit-exact: distinguishes every f64 payload, including -0.0 vs 0.0.
    fn f64(&mut self, x: f64) {
        self.u64(x.to_bits());
    }

    /// Length-prefixed, so consecutive strings cannot alias.
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        for b in s.as_bytes() {
            self.byte(*b);
        }
    }

    fn key(&self) -> CanonKey {
        CanonKey {
            hi: self.a,
            lo: self.b,
        }
    }
}

/// Digest of everything that determines the generated trace: the seed, the
/// compute gap, every data structure's shape and the phase schedule.
/// Workload *names* are included — distinct workloads must never collide,
/// and over-distinguishing only costs cache hits, never correctness.
pub fn workload_digest(workload: &Workload) -> CanonKey {
    let mut h = CanonHasher::new("mce.workload.v1");
    h.str(workload.name());
    h.u64(workload.seed());
    h.u64(workload.compute_gap());
    h.u64(workload.len() as u64);
    for ds in workload.data_structures() {
        h.str(ds.name());
        h.u64(ds.footprint());
        h.u64(ds.element_size());
        hash_pattern(&mut h, ds.pattern());
        h.f64(ds.hotness());
        h.f64(ds.write_fraction());
    }
    h.u64(workload.phases().len() as u64);
    for phase in workload.phases() {
        h.str(phase.name());
        h.u64(phase.accesses());
        h.u64(phase.hotness_scale().len() as u64);
        for &s in phase.hotness_scale() {
            h.f64(s);
        }
    }
    h.key()
}

fn hash_pattern(h: &mut CanonHasher, p: AccessPattern) {
    match p {
        AccessPattern::Stream { stride } => {
            h.byte(0);
            h.u64(stride);
        }
        AccessPattern::SelfIndirect => h.byte(1),
        AccessPattern::Indexed { index_stride } => {
            h.byte(2);
            h.u64(index_stride);
        }
        AccessPattern::LoopNest { working_set, reuse } => {
            h.byte(3);
            h.u64(working_set);
            h.u32(reuse);
        }
        AccessPattern::Random => h.byte(4),
        AccessPattern::Stack => h.byte(5),
    }
}

/// Digest of a memory architecture's structure: module kinds and
/// parameters in order (module order is semantic — the DS mapping and
/// backing chains refer to module indices), the DS→module mapping and the
/// backing topology. Module and architecture names are excluded.
///
/// `workload` supplies the mapping domain (one entry per data structure).
pub fn mem_digest(mem: &MemoryArchitecture, workload: &Workload) -> CanonKey {
    let mut h = CanonHasher::new("mce.mem.v1");
    h.u64(mem.modules().len() as u64);
    for m in mem.modules() {
        hash_module_kind(&mut h, m.kind());
    }
    h.u64(mem.dram_id().index() as u64);
    for (i, _) in mem.modules().iter().enumerate() {
        match mem.backing_of(mce_memlib::ModuleId::new(i)) {
            Some(l2) => h.u64(l2.index() as u64),
            None => h.u64(u64::MAX),
        }
    }
    h.u64(workload.len() as u64);
    for i in 0..workload.len() {
        h.u64(mem.serving_module(mce_appmodel::DsId::new(i)).index() as u64);
    }
    h.key()
}

fn hash_module_kind(h: &mut CanonHasher, kind: MemModuleKind) {
    match kind {
        MemModuleKind::Cache(c) => {
            h.byte(0);
            h.u64(c.size_bytes);
            h.u32(c.line_bytes);
            h.u32(c.ways);
            h.byte(match c.replacement {
                ReplacementPolicy::Lru => 0,
                ReplacementPolicy::Fifo => 1,
            });
            h.byte(match c.write {
                WritePolicy::WriteBack => 0,
                WritePolicy::WriteThrough => 1,
            });
            h.byte(match c.write_miss {
                WriteMissPolicy::WriteAllocate => 0,
                WriteMissPolicy::WriteAround => 1,
            });
            h.u32(c.hit_cycles);
        }
        MemModuleKind::Sram { bytes } => {
            h.byte(1);
            h.u64(bytes);
        }
        MemModuleKind::StreamBuffer {
            entries,
            line_bytes,
        } => {
            h.byte(2);
            h.u32(entries);
            h.u32(line_bytes);
        }
        MemModuleKind::SelfIndirectDma {
            depth,
            element_bytes,
        } => {
            h.byte(3);
            h.u32(depth);
            h.u32(element_bytes);
        }
        MemModuleKind::Fifo {
            entries,
            line_bytes,
        } => {
            h.byte(4);
            h.u32(entries);
            h.u32(line_bytes);
        }
        MemModuleKind::OffChipDram(d) => {
            h.byte(5);
            h.u64(d.row_bytes);
            h.u32(d.row_miss_cycles);
            h.u32(d.cas_cycles);
            h.u32(d.burst_bytes);
            h.u32(d.beat_cycles);
        }
    }
}

/// Digest of a connectivity architecture's structure: the channel sequence
/// (chip-boundary flags; channel order is semantic — it defines each
/// master's position on its link) and the **unordered set** of link
/// fingerprints. Link order and all names are excluded; see the module
/// docs for why that is the canonical choice.
pub fn conn_digest(conn: &ConnectivityArchitecture) -> CanonKey {
    let mut h = CanonHasher::new("mce.conn.v1");
    h.u64(conn.channels().len() as u64);
    for ch in conn.channels() {
        h.bool(ch.off_chip);
    }
    let mut links: Vec<CanonKey> = conn
        .links()
        .iter()
        .enumerate()
        .map(|(j, link)| {
            let mut lh = CanonHasher::new("mce.link.v1");
            hash_component(&mut lh, link.component());
            // Assigned channel indices, ascending by construction (the
            // assignment table is scanned in channel order).
            for ci in 0..conn.channels().len() {
                if conn.link_of(mce_connlib::ChannelId::new(ci)) == Some(LinkId::new(j)) {
                    lh.u64(ci as u64);
                }
            }
            lh.key()
        })
        .collect();
    links.sort_unstable();
    h.u64(links.len() as u64);
    for k in links {
        h.u64(k.hi);
        h.u64(k.lo);
    }
    h.key()
}

fn hash_component(h: &mut CanonHasher, component: &ConnComponent) {
    use mce_connlib::ConnComponentKind as K;
    h.byte(match component.kind() {
        K::Dedicated => 0,
        K::Mux => 1,
        K::AmbaApb => 2,
        K::AmbaAsb => 3,
        K::AmbaAhb => 4,
        K::OffChipBus => 5,
    });
    let p = component.params();
    h.u32(p.width_bytes);
    h.u32(p.cycles_per_beat);
    h.u32(p.arbitration_cycles);
    h.bool(p.pipelined);
    h.bool(p.split_transaction);
    h.u32(p.max_ports);
    h.u32(p.outstanding);
    h.u64(p.base_gates);
    h.u64(p.gates_per_port);
    h.u64(p.wire_gates_per_bit);
    h.f64(p.energy_per_transfer_nj);
    h.f64(p.energy_per_byte_nj);
    h.bool(p.off_chip);
    match p.arbiter {
        mce_connlib::ArbiterKind::FixedPriority => h.byte(0),
        mce_connlib::ArbiterKind::RoundRobin => h.byte(1),
        mce_connlib::ArbiterKind::Tdma { slot_cycles } => {
            h.byte(2);
            h.u64(u64::from(slot_cycles));
        }
    }
}

/// Combines the three structural digests with the evaluation parameters
/// into the final cache key.
pub fn eval_key(
    workload: CanonKey,
    mem: CanonKey,
    conn: CanonKey,
    trace_len: usize,
    mode: EvalMode,
) -> CanonKey {
    let mut h = CanonHasher::new("mce.eval.v1");
    for part in [workload, mem, conn] {
        h.u64(part.hi);
        h.u64(part.lo);
    }
    h.u64(trace_len as u64);
    match mode {
        EvalMode::Estimated(s) => {
            h.byte(0);
            h.u32(s.on_accesses);
            h.u32(s.off_ratio);
        }
        EvalMode::Full => h.byte(1),
    }
    h.key()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_display() {
        let m = Metrics::new(1000, 5.5, 12.25);
        let s = m.to_string();
        assert!(s.contains("1000"), "{s}");
        assert!(s.contains("5.50"), "{s}");
        assert!(s.contains("12.25"), "{s}");
    }

    #[test]
    #[should_panic(expected = "latency")]
    fn nan_latency_rejected() {
        let _ = Metrics::new(1, f64::NAN, 0.0);
    }

    #[test]
    #[should_panic(expected = "energy")]
    fn negative_energy_rejected() {
        let _ = Metrics::new(1, 0.0, -1.0);
    }

    // --- canonical hashing ---

    use mce_appmodel::benchmarks;
    use mce_connlib::{Channel, ChannelId, ConnComponentKind};
    use mce_memlib::CacheConfig;

    fn channels() -> Vec<Channel> {
        vec![Channel::on_chip("cpu<->L1"), Channel::off_chip("L1<->dram")]
    }

    /// Two links (one per channel); `flipped` swaps their declaration
    /// order while keeping the same channel assignment.
    fn conn_with_link_order(flipped: bool) -> ConnectivityArchitecture {
        let mut conn = ConnectivityArchitecture::new(channels());
        let kinds = if flipped {
            [ConnComponentKind::OffChipBus, ConnComponentKind::AmbaAhb]
        } else {
            [ConnComponentKind::AmbaAhb, ConnComponentKind::OffChipBus]
        };
        let a = conn.add_link("first", ConnComponent::new(kinds[0]));
        let b = conn.add_link("second", ConnComponent::new(kinds[1]));
        let (on_chip_link, off_chip_link) = if flipped { (b, a) } else { (a, b) };
        conn.assign(ChannelId::new(0), on_chip_link);
        conn.assign(ChannelId::new(1), off_chip_link);
        conn
    }

    #[test]
    fn conn_digest_ignores_link_order_and_names() {
        let digest = conn_digest(&conn_with_link_order(false));
        assert_eq!(digest, conn_digest(&conn_with_link_order(true)));

        let mut renamed = ConnectivityArchitecture::new(channels());
        let l1 = renamed.add_link("totally", ConnComponent::new(ConnComponentKind::AmbaAhb));
        let l2 = renamed.add_link(
            "different",
            ConnComponent::new(ConnComponentKind::OffChipBus),
        );
        renamed.assign(ChannelId::new(0), l1);
        renamed.assign(ChannelId::new(1), l2);
        assert_eq!(digest, conn_digest(&renamed));
    }

    #[test]
    fn conn_digest_sees_component_changes() {
        let ahb = conn_with_link_order(false);
        let mut apb = ConnectivityArchitecture::new(channels());
        let l1 = apb.add_link("first", ConnComponent::new(ConnComponentKind::AmbaApb));
        let l2 = apb.add_link("second", ConnComponent::new(ConnComponentKind::OffChipBus));
        apb.assign(ChannelId::new(0), l1);
        apb.assign(ChannelId::new(1), l2);
        assert_ne!(conn_digest(&ahb), conn_digest(&apb));
    }

    #[test]
    fn conn_digest_sees_assignment_changes() {
        // Both channels on one shared bus vs one link each.
        let split = conn_with_link_order(false);
        let mut shared = ConnectivityArchitecture::new(channels());
        let bus = shared.add_link("bus", ConnComponent::new(ConnComponentKind::OffChipBus));
        shared.assign(ChannelId::new(0), bus);
        shared.assign(ChannelId::new(1), bus);
        assert_ne!(conn_digest(&split), conn_digest(&shared));
    }

    #[test]
    fn mem_digest_ignores_names_but_sees_structure() {
        let w = benchmarks::vocoder();
        let a = MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(8));
        let b = MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(8));
        assert_eq!(mem_digest(&a, &w), mem_digest(&b, &w));
        let c = MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(16));
        assert_ne!(mem_digest(&a, &w), mem_digest(&c, &w));
    }

    #[test]
    fn workload_digest_separates_benchmarks() {
        let mut keys: Vec<CanonKey> = [
            benchmarks::compress(),
            benchmarks::li(),
            benchmarks::vocoder(),
        ]
        .iter()
        .map(workload_digest)
        .collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 3);
    }

    #[test]
    fn eval_modes_never_alias() {
        let w = workload_digest(&benchmarks::vocoder());
        let wl = benchmarks::vocoder();
        let mem = MemoryArchitecture::cache_only(&wl, CacheConfig::kilobytes(4));
        let m = mem_digest(&mem, &wl);
        let c = conn_digest(&conn_with_link_order(false));
        let estimated = eval_key(w, m, c, 1000, EvalMode::Estimated(SamplingConfig::paper()));
        let full = eval_key(w, m, c, 1000, EvalMode::Full);
        let longer = eval_key(w, m, c, 2000, EvalMode::Full);
        assert_ne!(estimated, full);
        assert_ne!(full, longer);
    }

    #[test]
    fn canon_key_hex_round_trips() {
        let k = CanonKey {
            hi: 0x0123_4567_89ab_cdef,
            lo: 0xfedc_ba98_7654_3210,
        };
        assert_eq!(CanonKey::from_hex(&k.to_hex()), Some(k));
        assert_eq!(k.to_hex().len(), 32);
        assert_eq!(CanonKey::from_hex("xyz"), None);
        assert_eq!(CanonKey::from_hex(""), None);
    }
}
