//! Design points: a complete system configuration with its metrics.

use mce_sim::SystemConfig;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The three metrics the exploration trades off.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Total gate cost (memory modules + connectivity).
    pub cost_gates: u64,
    /// Average memory latency per access, cycles.
    pub latency_cycles: f64,
    /// Average energy per access, nJ.
    pub energy_nj: f64,
}

impl Metrics {
    /// Creates a metrics triple.
    ///
    /// # Panics
    ///
    /// Panics if latency or energy is not finite and non-negative.
    pub fn new(cost_gates: u64, latency_cycles: f64, energy_nj: f64) -> Self {
        assert!(
            latency_cycles.is_finite() && latency_cycles >= 0.0,
            "latency must be finite and non-negative"
        );
        assert!(
            energy_nj.is_finite() && energy_nj >= 0.0,
            "energy must be finite and non-negative"
        );
        Metrics {
            cost_gates,
            latency_cycles,
            energy_nj,
        }
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} gates, {:.2} cyc, {:.2} nJ",
            self.cost_gates, self.latency_cycles, self.energy_nj
        )
    }
}

/// A combined memory + connectivity design with its measured (or estimated)
/// metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// The full system configuration (re-simulatable).
    pub system: SystemConfig,
    /// The metrics this point was ranked by.
    pub metrics: Metrics,
    /// True if `metrics` came from time-sampled estimation (Phase I) rather
    /// than full simulation (Phase II).
    pub estimated: bool,
}

impl DesignPoint {
    /// Creates a design point.
    pub fn new(system: SystemConfig, metrics: Metrics, estimated: bool) -> Self {
        DesignPoint {
            system,
            metrics,
            estimated,
        }
    }

    /// One-line architecture description (memory `|` connectivity).
    pub fn describe(&self) -> String {
        self.system.describe()
    }
}

impl fmt::Display for DesignPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{} — {}",
            self.describe(),
            if self.estimated { " (est.)" } else { "" },
            self.metrics
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_display() {
        let m = Metrics::new(1000, 5.5, 12.25);
        let s = m.to_string();
        assert!(s.contains("1000"), "{s}");
        assert!(s.contains("5.50"), "{s}");
        assert!(s.contains("12.25"), "{s}");
    }

    #[test]
    #[should_panic(expected = "latency")]
    fn nan_latency_rejected() {
        let _ = Metrics::new(1, f64::NAN, 0.0);
    }

    #[test]
    #[should_panic(expected = "energy")]
    fn negative_energy_rejected() {
        let _ = Metrics::new(1, 0.0, -1.0);
    }
}
