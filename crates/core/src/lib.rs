//! # mce-conex — Connectivity Exploration (ConEx)
//!
//! The paper's contribution: a heuristic design-space exploration of the
//! **connectivity architecture** — which busses, MUXes and dedicated links
//! carry the memory system's communication channels — performed *jointly*
//! with the memory-module architectures selected by APEX, trading off gate
//! **cost**, average memory **latency** and **energy** per access.
//!
//! The algorithm (the paper's Figure 5) proceeds in two phases:
//!
//! **Phase I** — for each selected memory architecture:
//! 1. profile the architecture's communication channels and build the
//!    **Bandwidth Requirement Graph** ([`brg`]);
//! 2. hierarchically **cluster** the BRG arcs into logical connections,
//!    merging the two lowest-bandwidth clusters per level ([`cluster`]);
//! 3. at each clustering level, enumerate feasible **allocations** of the
//!    logical connections to components from the connectivity library
//!    ([`allocate`]);
//! 4. **estimate** each candidate's cost/performance/power with
//!    time-sampled simulation ([`estimate`]) and keep the locally most
//!    promising (pareto-like) points.
//!
//! **Phase II** — pool the local selections, **fully simulate** them, and
//! select the globally most promising combined memory + connectivity
//! designs ([`explore`]). Constraint-driven final selection (power-, cost-
//! or performance-constrained) is in [`scenario`].
//!
//! The [`pareto`] module carries the dominance/coverage machinery,
//! including the coverage-vs-full-search metrics of the paper's Table 2;
//! [`memorex`] wires APEX and ConEx into the end-to-end MemorEx flow of
//! Figure 1.
//!
//! ## Example
//!
//! ```
//! use mce_apex::{ApexConfig, ApexExplorer};
//! use mce_conex::{ConexConfig, ConexExplorer};
//! use mce_appmodel::benchmarks;
//! use mce_sim::Preset;
//!
//! let w = benchmarks::vocoder();
//! let apex = ApexExplorer::new(ApexConfig::preset(Preset::Fast)).explore(&w);
//! let result = ConexExplorer::new(ConexConfig::preset(Preset::Fast))
//!     .explore(&w, apex.selected())
//!     .expect("exploration completed");
//! assert!(!result.pareto_cost_latency().is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allocate;
pub mod brg;
pub mod cluster;
pub mod design_point;
pub mod engine;
pub mod estimate;
pub mod eval_cache;
pub mod explore;
pub mod memorex;
pub mod par;
pub mod pareto;
pub mod reconfig;
pub mod scenario;

pub use allocate::{enumerate_allocations, enumerate_allocations_filtered};
pub use brg::{Brg, BrgArc};
pub use cluster::{cluster_levels, Cluster, ClusterOrder, Clustering};
pub use design_point::{CanonKey, DesignPoint, EvalMode, Metrics};
pub use engine::{BatchStatus, BoundedBatch, EvalEngine};
pub use eval_cache::{CacheStats, EvalCache};
pub use explore::{
    merge_arch_slices, ArchProvenance, ArchSlice, ConexConfig, ConexExplorer, ConexResult,
    DegradedEval, ExplorationStrategy, FrontierSnapshot, Phase1State, PointProvenance,
};
pub use memorex::{MemorEx, MemorExResult};
pub use pareto::{hypervolume_proxy, Axis, CoverageReport, ParetoFront};
pub use reconfig::{PhaseChoice, ReconfigReport};
pub use scenario::Scenario;
