//! Constraint-driven final selection (the paper's Section 5, Phase II).
//!
//! "We select the most promising architectures using three scenarios:
//! (a) in a power-constrained scenario ... we determine the
//! cost/performance pareto points ... while keeping the power less than the
//! constraint, (b) in a cost-constrained scenario, we compute the
//! performance/power pareto points, and (c) in a performance-constrained
//! scenario, we compute the pareto points in the cost-power space."

use crate::design_point::DesignPoint;
use crate::pareto::{Axis, ParetoFront};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A design-goal scenario: one metric constrained, the other two optimized
/// as a pareto front.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Scenario {
    /// Energy per access must not exceed the threshold; optimize
    /// cost/performance.
    PowerConstrained {
        /// Maximum average energy per access, nJ.
        max_energy_nj: f64,
    },
    /// Gate cost must not exceed the threshold; optimize performance/power.
    CostConstrained {
        /// Maximum gate cost.
        max_cost_gates: u64,
    },
    /// Average latency must not exceed the threshold; optimize cost/power.
    PerformanceConstrained {
        /// Maximum average memory latency, cycles.
        max_latency_cycles: f64,
    },
}

impl Scenario {
    /// The two axes the scenario optimizes.
    pub const fn free_axes(&self) -> [Axis; 2] {
        match self {
            Scenario::PowerConstrained { .. } => [Axis::Cost, Axis::Latency],
            Scenario::CostConstrained { .. } => [Axis::Latency, Axis::Energy],
            Scenario::PerformanceConstrained { .. } => [Axis::Cost, Axis::Energy],
        }
    }

    /// True if `point` satisfies the constraint.
    pub fn admits(&self, point: &DesignPoint) -> bool {
        match *self {
            Scenario::PowerConstrained { max_energy_nj } => {
                point.metrics.energy_nj <= max_energy_nj
            }
            Scenario::CostConstrained { max_cost_gates } => {
                point.metrics.cost_gates <= max_cost_gates
            }
            Scenario::PerformanceConstrained { max_latency_cycles } => {
                point.metrics.latency_cycles <= max_latency_cycles
            }
        }
    }

    /// Selects the scenario's pareto points from `points`.
    ///
    /// The power-constrained case follows the paper's explicit order of
    /// operations: "we first determine the pareto points in the
    /// cost-performance space ... From the selected cost-performance pareto
    /// points we choose only the ones which satisfy the energy consumption
    /// constraint" — front first, then filter. The cost- and
    /// performance-constrained scenarios treat the constraint as a bound on
    /// the candidate set instead (filter first, then front), so a tight
    /// budget still yields the best designs *within* it.
    pub fn select<'a>(&self, points: &'a [DesignPoint]) -> Vec<&'a DesignPoint> {
        match self {
            Scenario::PowerConstrained { .. } => {
                let metrics: Vec<_> = points.iter().map(|p| p.metrics).collect();
                ParetoFront::of(&metrics, &self.free_axes())
                    .indices()
                    .iter()
                    .map(|&i| &points[i])
                    .filter(|p| self.admits(p))
                    .collect()
            }
            Scenario::CostConstrained { .. } | Scenario::PerformanceConstrained { .. } => {
                let admissible: Vec<&DesignPoint> =
                    points.iter().filter(|p| self.admits(p)).collect();
                let metrics: Vec<_> = admissible.iter().map(|p| p.metrics).collect();
                ParetoFront::of(&metrics, &self.free_axes())
                    .indices()
                    .iter()
                    .map(|&i| admissible[i])
                    .collect()
            }
        }
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Scenario::PowerConstrained { max_energy_nj } => {
                write!(f, "power-constrained (≤ {max_energy_nj} nJ)")
            }
            Scenario::CostConstrained { max_cost_gates } => {
                write!(f, "cost-constrained (≤ {max_cost_gates} gates)")
            }
            Scenario::PerformanceConstrained { max_latency_cycles } => {
                write!(f, "performance-constrained (≤ {max_latency_cycles} cycles)")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design_point::Metrics;
    use mce_appmodel::benchmarks;
    use mce_memlib::{CacheConfig, MemoryArchitecture};
    use mce_sim::SystemConfig;

    fn point(cost: u64, lat: f64, nj: f64) -> DesignPoint {
        // All points share a trivially valid system; only metrics matter
        // for scenario selection.
        let w = benchmarks::vocoder();
        let mem = MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(1));
        let sys = SystemConfig::with_shared_bus(&w, mem).unwrap();
        DesignPoint::new(sys, Metrics::new(cost, lat, nj), false)
    }

    fn sample_points() -> Vec<DesignPoint> {
        vec![
            point(100, 10.0, 5.0),
            point(200, 5.0, 8.0),
            point(300, 3.0, 12.0),
            point(150, 9.0, 4.0),
            point(400, 2.9, 20.0),
        ]
    }

    #[test]
    fn power_constrained_filters_energy() {
        let pts = sample_points();
        let s = Scenario::PowerConstrained { max_energy_nj: 9.0 };
        let sel = s.select(&pts);
        assert!(!sel.is_empty());
        assert!(sel.iter().all(|p| p.metrics.energy_nj <= 9.0));
        // The 300-gate and 400-gate points are on the cost/latency front
        // but fail the power constraint.
        assert!(sel.iter().all(|p| p.metrics.cost_gates <= 200));
    }

    #[test]
    fn cost_constrained_optimizes_latency_energy() {
        let pts = sample_points();
        let s = Scenario::CostConstrained {
            max_cost_gates: 250,
        };
        let sel = s.select(&pts);
        assert!(sel.iter().all(|p| p.metrics.cost_gates <= 250));
        // Latency/energy front: (10,5) dominated by (9,4); (5,8) survives.
        assert!(sel.iter().any(|p| p.metrics.latency_cycles == 5.0));
        assert!(!sel.iter().any(|p| p.metrics.latency_cycles == 10.0));
    }

    #[test]
    fn performance_constrained_optimizes_cost_energy() {
        let pts = sample_points();
        let s = Scenario::PerformanceConstrained {
            max_latency_cycles: 9.5,
        };
        let sel = s.select(&pts);
        assert!(sel.iter().all(|p| p.metrics.latency_cycles <= 9.5));
        for a in &sel {
            for b in &sel {
                assert!(
                    !(a.metrics.cost_gates < b.metrics.cost_gates
                        && a.metrics.energy_nj < b.metrics.energy_nj)
                );
            }
        }
    }

    #[test]
    fn unsatisfiable_constraint_selects_nothing() {
        let pts = sample_points();
        let s = Scenario::PowerConstrained { max_energy_nj: 0.1 };
        assert!(s.select(&pts).is_empty());
    }

    #[test]
    fn free_axes_match_paper() {
        assert_eq!(
            Scenario::PowerConstrained { max_energy_nj: 1.0 }.free_axes(),
            [Axis::Cost, Axis::Latency]
        );
        assert_eq!(
            Scenario::CostConstrained { max_cost_gates: 1 }.free_axes(),
            [Axis::Latency, Axis::Energy]
        );
        assert_eq!(
            Scenario::PerformanceConstrained {
                max_latency_cycles: 1.0
            }
            .free_axes(),
            [Axis::Cost, Axis::Energy]
        );
    }

    #[test]
    fn display_names() {
        let s = Scenario::CostConstrained {
            max_cost_gates: 5000,
        };
        assert!(s.to_string().contains("cost-constrained"));
    }
}
