//! Per-phase reconfigurable connectivity — an extension beyond the paper.
//!
//! The paper's related-work section cites Lahiri et al. (DAC 2000), who
//! "propose the use of dynamic reconfiguration of the communication
//! characteristics, taking into account the needs of the application".
//! ConEx itself selects one *static* connectivity architecture; this module
//! evaluates what a reconfigurable fabric would buy on a *phased* workload:
//! explore connectivity per execution phase, let the fabric switch between
//! phases, and compare the phase-weighted result against the best static
//! design.
//!
//! Accounting is conservative: the reconfigurable system must be able to
//! implement every phase's configuration, so its cost is the *maximum*
//! phase cost plus a reconfiguration-controller overhead, and each phase
//! switch pays a latency penalty amortized over the phase's accesses.

use crate::design_point::DesignPoint;
use crate::estimate::refine_with_full_simulation;
use crate::explore::ConexExplorer;
use crate::pareto::{Axis, ParetoFront};
use mce_appmodel::{DataStructure, Phase, Workload, WorkloadBuilder};
use mce_error::MceError;
use mce_memlib::MemoryArchitecture;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Gate overhead of the reconfiguration controller (configuration store,
/// switch control).
pub const RECONFIG_CONTROLLER_GATES: u64 = 9_000;
/// Cycles lost per phase switch (drain + reprogram).
pub const RECONFIG_SWITCH_CYCLES: u64 = 200;

/// The connectivity chosen for one phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseChoice {
    /// Phase name.
    pub phase: String,
    /// Accesses the phase spans (its weight).
    pub accesses: u64,
    /// The design evaluated on this phase's traffic.
    pub design: DesignPoint,
}

/// Comparison of the best static connectivity against a per-phase
/// reconfigurable one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReconfigReport {
    /// Workload explored.
    pub workload_name: String,
    /// The best static (single-configuration) design, by latency.
    pub static_best: DesignPoint,
    /// Per-phase selections.
    pub per_phase: Vec<PhaseChoice>,
    /// Phase-weighted average latency of the reconfigurable system,
    /// including the switch penalty.
    pub reconfig_latency_cycles: f64,
    /// Cost of the reconfigurable system: max phase cost + controller.
    pub reconfig_cost_gates: u64,
    /// Latency improvement of reconfigurable over static, percent
    /// (negative when reconfiguration does not pay off).
    pub improvement_pct: f64,
}

impl fmt::Display for ReconfigReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "reconfigurable connectivity on {}: {:.2} cyc vs static {:.2} cyc ({:+.1}%), {} gates",
            self.workload_name,
            self.reconfig_latency_cycles,
            self.static_best.metrics.latency_cycles,
            self.improvement_pct,
            self.reconfig_cost_gates
        )?;
        for c in &self.per_phase {
            writeln!(
                f,
                "  {}: {:.2} cyc — {}",
                c.phase,
                c.design.metrics.latency_cycles,
                c.design.system.conn().describe()
            )?;
        }
        Ok(())
    }
}

/// Builds the single-phase sub-workload whose steady-state traffic matches
/// one phase of `workload`.
fn phase_workload(workload: &Workload, phase_idx: usize) -> Workload {
    let phase = &workload.phases()[phase_idx];
    let mut builder = WorkloadBuilder::new(format!("{}:{}", workload.name(), phase.name()));
    for (ds, &scale) in workload.data_structures().iter().zip(phase.hotness_scale()) {
        // Zero-hotness structures must stay in the workload (the memory
        // architecture maps them), but with negligible weight.
        let hotness = (ds.hotness() * scale).max(1e-6);
        builder = builder.data_structure(
            DataStructure::new(ds.name(), ds.footprint(), ds.element_size(), ds.pattern())
                .with_hotness(hotness)
                .with_write_fraction(ds.write_fraction()),
        );
    }
    builder
        .seed(workload.seed() ^ (phase_idx as u64 + 1))
        .compute_gap(workload.compute_gap())
        .build()
}

/// Picks the lowest-latency design within `cost_budget` from an estimate
/// cloud's cost/latency pareto; `None` when nothing fits the budget.
fn best_within_budget(points: &[DesignPoint], cost_budget: u64) -> Option<DesignPoint> {
    let metrics: Vec<_> = points.iter().map(|p| p.metrics).collect();
    let front = ParetoFront::of(&metrics, &[Axis::Cost, Axis::Latency]);
    front
        .indices()
        .iter()
        .map(|&i| &points[i])
        .filter(|p| p.metrics.cost_gates <= cost_budget)
        .min_by(|a, b| {
            a.metrics
                .latency_cycles
                .total_cmp(&b.metrics.latency_cycles)
        })
        .cloned()
}

impl ConexExplorer {
    /// Evaluates per-phase reconfigurable connectivity for `mem` on a
    /// phased `workload`.
    ///
    /// Returns `Ok(None)` for workloads with fewer than two phases
    /// (nothing to reconfigure between). Per-phase selections are
    /// constrained to the static best design's cost, so the comparison
    /// isolates the benefit of *reconfiguration* rather than of spending
    /// more gates.
    ///
    /// # Errors
    ///
    /// Returns [`MceError::WorkerPanic`] when an evaluation panics twice
    /// (parallel pass and serial retry).
    pub fn explore_reconfigurable(
        &self,
        workload: &Workload,
        mem: &MemoryArchitecture,
    ) -> Result<Option<ReconfigReport>, MceError> {
        self.explore_reconfigurable_with_budget(workload, mem, u64::MAX)
    }

    /// Like [`ConexExplorer::explore_reconfigurable`], but with an explicit
    /// gate budget on the connectivity-inclusive system cost.
    ///
    /// This is where reconfiguration earns its keep: under a tight budget a
    /// static design must pick one compromise configuration, while the
    /// reconfigurable fabric can give each phase the configuration that
    /// suits it — the per-phase optima (each within the same budget) are
    /// never worse in aggregate than any single configuration, minus the
    /// switch penalty.
    ///
    /// # Errors
    ///
    /// Returns [`MceError::WorkerPanic`] when an evaluation panics twice
    /// (parallel pass and serial retry).
    pub fn explore_reconfigurable_with_budget(
        &self,
        workload: &Workload,
        mem: &MemoryArchitecture,
        budget_gates: u64,
    ) -> Result<Option<ReconfigReport>, MceError> {
        if workload.phases().len() < 2 {
            return Ok(None);
        }
        // Exposure matching: simulate whole super-periods of the phase
        // schedule so every phase contributes exactly its declared share to
        // the static average, and give each phase's sub-simulation the same
        // number of accesses it has in those super-periods. Without this
        // the two sides of the comparison see different phase mixes.
        let period: u64 = workload.phases().iter().map(Phase::accesses).sum();
        let periods = (self.config().trace_len as u64 / period).max(1);
        let static_len = (periods * period) as usize;
        // Static reference: best-latency design over the whole workload.
        //
        // Fully simulated, not estimated: systematic time sampling can
        // alias with the workload's phase period and skip entire phases
        // (see `mce-sim::sampling`), which would make the static design
        // look far better than it is and the comparison meaningless.
        let static_points = self.connectivity_exploration(workload, mem)?;
        let Some(static_best) = static_points
            .iter()
            .filter(|p| p.metrics.cost_gates <= budget_gates)
            .min_by(|a, b| {
                a.metrics
                    .latency_cycles
                    .total_cmp(&b.metrics.latency_cycles)
            })
        else {
            return Ok(None);
        };
        let static_best = refine_with_full_simulation(static_best, workload, static_len);
        // Per-phase selections compete under the same budget (or, with an
        // unconstrained budget, under the static best's cost so the
        // comparison isolates reconfiguration rather than extra gates).
        let budget = if budget_gates == u64::MAX {
            static_best.metrics.cost_gates
        } else {
            budget_gates
        };

        let mut per_phase = Vec::new();
        let mut weighted = 0.0;
        let mut total_accesses = 0u64;
        let mut max_cost = 0u64;
        for (i, phase) in workload.phases().iter().enumerate() {
            let sub = phase_workload(workload, i);
            let points = self.connectivity_exploration(&sub, mem)?;
            let Some(design) = best_within_budget(&points, budget) else {
                return Ok(None);
            };
            let sub_len = (periods * phase.accesses()) as usize;
            let design = refine_with_full_simulation(&design, &sub, sub_len);
            // Switch penalty amortized over the phase.
            let latency = design.metrics.latency_cycles
                + RECONFIG_SWITCH_CYCLES as f64 / phase.accesses() as f64;
            weighted += latency * phase.accesses() as f64;
            total_accesses += phase.accesses();
            max_cost = max_cost.max(design.metrics.cost_gates);
            per_phase.push(PhaseChoice {
                phase: phase.name().to_owned(),
                accesses: phase.accesses(),
                design,
            });
        }
        let reconfig_latency_cycles = weighted / total_accesses as f64;
        let static_latency = static_best.metrics.latency_cycles;
        Ok(Some(ReconfigReport {
            workload_name: workload.name().to_owned(),
            static_best,
            per_phase,
            reconfig_latency_cycles,
            reconfig_cost_gates: max_cost + RECONFIG_CONTROLLER_GATES,
            improvement_pct: (static_latency - reconfig_latency_cycles) / static_latency * 100.0,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::ConexConfig;
    use mce_appmodel::benchmarks;
    use mce_memlib::CacheConfig;
    use mce_sim::Preset;

    fn explorer() -> ConexExplorer {
        let mut cfg = ConexConfig::preset(Preset::Fast);
        cfg.trace_len = 8_000;
        cfg.max_allocations_per_level = 24;
        ConexExplorer::new(cfg)
    }

    #[test]
    fn unphased_workload_yields_none() {
        let w = benchmarks::vocoder();
        let mem = MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(2));
        assert!(explorer()
            .explore_reconfigurable(&w, &mem)
            .unwrap()
            .is_none());
    }

    #[test]
    fn jpeg_report_is_complete_and_consistent() {
        let w = benchmarks::jpeg();
        let mem = MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(4));
        let report = explorer()
            .explore_reconfigurable(&w, &mem)
            .unwrap()
            .expect("jpeg is phased");
        assert_eq!(report.per_phase.len(), 3);
        // Cost accounting: max phase cost + controller.
        let max_phase = report
            .per_phase
            .iter()
            .map(|c| c.design.metrics.cost_gates)
            .max()
            .unwrap();
        assert_eq!(
            report.reconfig_cost_gates,
            max_phase + RECONFIG_CONTROLLER_GATES
        );
        // Weighted latency lies within the per-phase extremes (plus the
        // small switch penalty).
        let min = report
            .per_phase
            .iter()
            .map(|c| c.design.metrics.latency_cycles)
            .fold(f64::INFINITY, f64::min);
        let max = report
            .per_phase
            .iter()
            .map(|c| c.design.metrics.latency_cycles)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(report.reconfig_latency_cycles >= min);
        assert!(report.reconfig_latency_cycles <= max + 1.0);
    }

    #[test]
    fn per_phase_selections_respect_budget() {
        let w = benchmarks::jpeg();
        let mem = MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(4));
        let report = explorer()
            .explore_reconfigurable(&w, &mem)
            .unwrap()
            .unwrap();
        for c in &report.per_phase {
            assert!(
                c.design.metrics.cost_gates <= report.static_best.metrics.cost_gates,
                "{}: {} over budget {}",
                c.phase,
                c.design.metrics.cost_gates,
                report.static_best.metrics.cost_gates
            );
        }
    }

    #[test]
    fn tight_budget_forces_cheaper_designs() {
        let w = benchmarks::jpeg();
        let mem = MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(4));
        let rich = explorer()
            .explore_reconfigurable(&w, &mem)
            .unwrap()
            .unwrap();
        // A budget at the median candidate cost is guaranteed feasible.
        let mut costs: Vec<u64> = explorer()
            .connectivity_exploration(&w, &mem)
            .unwrap()
            .iter()
            .map(|p| p.metrics.cost_gates)
            .collect();
        costs.sort_unstable();
        let cheap_budget = costs[costs.len() / 2];
        let tight = explorer()
            .explore_reconfigurable_with_budget(&w, &mem, cheap_budget)
            .unwrap()
            .expect("median budget is feasible");
        assert!(tight.static_best.metrics.cost_gates <= cheap_budget);
        for c in &tight.per_phase {
            assert!(c.design.metrics.cost_gates <= cheap_budget, "{}", c.phase);
        }
        // Tighter budgets cannot make the static design faster.
        assert!(
            tight.static_best.metrics.latency_cycles
                >= rich.static_best.metrics.latency_cycles - 1e-9
        );
    }

    #[test]
    fn unsatisfiable_budget_yields_none() {
        let w = benchmarks::jpeg();
        let mem = MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(4));
        assert!(explorer()
            .explore_reconfigurable_with_budget(&w, &mem, 1)
            .unwrap()
            .is_none());
    }

    #[test]
    fn phase_workload_preserves_structure() {
        let w = benchmarks::jpeg();
        let sub = phase_workload(&w, 0);
        assert_eq!(sub.len(), w.len());
        assert!(sub.phases().is_empty());
        assert_eq!(sub.trace(100).count(), 100);
    }

    #[test]
    fn report_display_lists_phases() {
        let w = benchmarks::jpeg();
        let mem = MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(4));
        let report = explorer()
            .explore_reconfigurable(&w, &mem)
            .unwrap()
            .unwrap();
        let text = report.to_string();
        assert!(text.contains("dct"), "{text}");
        assert!(text.contains("entropy"), "{text}");
    }
}
