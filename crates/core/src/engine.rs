//! The candidate-evaluation engine.
//!
//! Every metric the exploration ranks comes from replaying a workload's
//! trace through a candidate system. The [`EvalEngine`] is the single
//! place that happens, and it makes each evaluation as cheap as possible,
//! in order of preference:
//!
//! 1. **Memoized** — the candidate's canonical key
//!    ([`design_point`](crate::design_point)) hits the [`EvalCache`]:
//!    no simulation at all. The cache is shared across scenarios,
//!    strategies, clustering levels and (via spill files) runs.
//! 2. **Coalesced** — another candidate in the same batch has the same
//!    key (enumeration at adjacent clustering levels re-derives
//!    structurally identical pairings): simulated once, answered twice.
//! 3. **Simulated** — block-compiled replay
//!    ([`simulate_blocks`](mce_sim::replay::simulate_blocks) /
//!    [`simulate_sampled_blocks`](mce_sim::replay::simulate_sampled_blocks))
//!    over the
//!    engine's shared [`TraceBlocks`], compiled once per workload and
//!    shared immutably across worker threads.
//!
//! Determinism: cache probes, coalescing and cache population all run
//! serially on the calling thread; only the unique simulations fan out
//! through [`par_map_named`](crate::par::par_map_named), whose output
//! is order-preserving. Results
//! are therefore bit-identical with the cache on or off and for any
//! thread count — the cache only removes redundant work, it never
//! reorders floating-point accumulation within an evaluation.

use crate::design_point::{
    conn_digest, eval_key, mem_digest, workload_digest, CanonKey, DesignPoint, EvalMode, Metrics,
};
use crate::eval_cache::EvalCache;
use crate::par::try_par_map_named;
use mce_appmodel::{TraceBlocks, Workload};
use mce_budget::Bounds;
use mce_connlib::ConnectivityArchitecture;
use mce_error::MceError;
use mce_memlib::MemoryArchitecture;
use mce_obs as obs;
use mce_sim::{
    simulate_blocks_cancellable, simulate_sampled_blocks_cancellable, SamplingConfig, SystemConfig,
};
use std::collections::HashMap;
use std::sync::Arc;

/// How a batch slot will be answered.
enum Slot<T> {
    /// The memory + connectivity pairing does not form a valid system.
    Infeasible,
    /// Answered from the cache.
    Hit(T, Metrics),
    /// Answered by simulation job `usize` (shared by coalesced twins).
    Job(T, usize),
}

/// How a bounded batch ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchStatus {
    /// Every slot was answered (possibly with degraded values — see
    /// [`BoundedBatch::degraded`]).
    Complete,
    /// The logical evaluation budget ran out during the serial probe.
    /// Nothing from this batch was committed: no simulation ran, no cache
    /// entry was inserted, no counter was bumped. Budget units consumed
    /// by the partial probe stay consumed — the probe order is canonical,
    /// so consumption is identical across thread counts and cache state.
    BudgetExhausted,
    /// The global cancel token tripped (deadline or SIGINT) before or
    /// during the batch. As with budget exhaustion, nothing was
    /// committed; the caller stops at its next safe point.
    Cancelled,
}

/// The result of a bounded batch evaluation.
#[derive(Debug)]
pub struct BoundedBatch<T> {
    /// Index-aligned outputs; empty unless
    /// [`status`](BoundedBatch::status) is [`BatchStatus::Complete`].
    pub output: Vec<T>,
    /// Indices (into `output`) answered with a degraded value because
    /// their simulation hit the per-candidate watchdog timeout.
    pub degraded: Vec<usize>,
    /// Indices (into `output`) answered from the evaluation cache, in
    /// probe order. Probing is serial and canonical, so this is
    /// identical for any thread count (though it naturally depends on
    /// what the cache already holds). Feeds frontier-provenance origin
    /// tags.
    pub cache_hits: Vec<usize>,
    /// How the batch ended.
    pub status: BatchStatus,
}

/// The memoizing evaluation engine for one workload.
///
/// Construct one per exploration (or share one across APEX and ConEx via
/// [`ExplorationSession`](https://docs.rs) — see the facade crate), then
/// evaluate candidates in batches.
#[derive(Clone)]
pub struct EvalEngine {
    workload: Workload,
    workload_key: CanonKey,
    blocks: Arc<TraceBlocks>,
    cache: Option<Arc<EvalCache>>,
    bounds: Bounds,
}

/// Each slot paired with its job's metrics (`None` for non-job and
/// timed-out slots), plus how the batch ended.
type BatchOutput = (Vec<(Slot<SystemConfig>, Option<Metrics>)>, BatchStatus);

impl EvalEngine {
    /// Compiles `workload`'s first `max_trace_len` accesses into shared
    /// trace blocks and creates an engine with no cache.
    ///
    /// `max_trace_len` must be the longest trace any batch will replay;
    /// shorter lengths replay a prefix of the same blocks.
    pub fn new(workload: &Workload, max_trace_len: usize) -> Self {
        Self::with_blocks(
            workload,
            Arc::new(TraceBlocks::compile(workload, max_trace_len)),
        )
    }

    /// An engine over already-compiled blocks (shared with other engines
    /// or a surrounding session).
    pub fn with_blocks(workload: &Workload, blocks: Arc<TraceBlocks>) -> Self {
        EvalEngine {
            workload: workload.clone(),
            workload_key: workload_digest(workload),
            blocks,
            cache: None,
            bounds: Bounds::none(),
        }
    }

    /// Attaches a (possibly shared) memoization cache.
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<EvalCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Attaches evaluation bounds: a cancel token checked per batch and
    /// at simulation block boundaries, a logical budget consumed per
    /// feasible candidate in canonical probe order, and a per-candidate
    /// watchdog. [`Bounds::none`] (the default) changes nothing.
    #[must_use]
    pub fn with_bounds(mut self, bounds: Bounds) -> Self {
        self.bounds = bounds;
        self
    }

    /// The engine's bounds ([`Bounds::none`] unless set).
    pub fn bounds(&self) -> &Bounds {
        &self.bounds
    }

    /// The workload this engine evaluates against.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// The shared compiled trace blocks.
    pub fn blocks(&self) -> &Arc<TraceBlocks> {
        &self.blocks
    }

    /// The attached cache, if any.
    pub fn cache(&self) -> Option<&Arc<EvalCache>> {
        self.cache.as_ref()
    }

    /// The longest trace length this engine can replay.
    pub fn max_trace_len(&self) -> usize {
        self.blocks.len()
    }

    /// Phase-I estimation of a batch of connectivity candidates for one
    /// memory architecture.
    ///
    /// The result is index-aligned with `candidates`; `None` marks an
    /// infeasible pairing. Equivalent to calling
    /// [`estimate_candidate`](crate::estimate::estimate_candidate) per
    /// candidate — bit-identically, minus the redundant simulations.
    ///
    /// # Errors
    ///
    /// Returns [`MceError::WorkerPanic`] when an evaluation panics twice
    /// (parallel pass and serial retry) — see
    /// [`try_par_map_named`].
    pub fn estimate_batch(
        &self,
        mem: &MemoryArchitecture,
        candidates: Vec<ConnectivityArchitecture>,
        trace_len: usize,
        sampling: SamplingConfig,
        threads: usize,
    ) -> Result<Vec<Option<DesignPoint>>, MceError> {
        let batch = self.estimate_batch_bounded(mem, candidates, trace_len, sampling, threads)?;
        expect_complete(batch)
    }

    /// [`EvalEngine::estimate_batch`] under the engine's [`Bounds`].
    ///
    /// A batch cut short by the logical budget or the cancel token comes
    /// back with an empty output and the corresponding
    /// [`BatchStatus`] — nothing from it was committed. A candidate whose
    /// sampled simulation hit the per-candidate watchdog timeout has no
    /// cheaper estimator to fall back to, so it is dropped from the batch
    /// (its slot answers `None`, exactly like an infeasible pairing) and
    /// recorded in [`BoundedBatch::degraded`].
    ///
    /// # Errors
    ///
    /// Returns [`MceError::WorkerPanic`] when an evaluation panics twice.
    pub fn estimate_batch_bounded(
        &self,
        mem: &MemoryArchitecture,
        candidates: Vec<ConnectivityArchitecture>,
        trace_len: usize,
        sampling: SamplingConfig,
        threads: usize,
    ) -> Result<BoundedBatch<Option<DesignPoint>>, MceError> {
        let mem_key = mem_digest(mem, &self.workload);
        let mode = EvalMode::Estimated(sampling);
        let (slots, status) = self.run_batch(
            "conex.estimate",
            candidates.len(),
            threads,
            |i| {
                let conn = &candidates[i];
                let conn_key = conn_digest(conn);
                let sys = SystemConfig::new(&self.workload, mem.clone(), conn.clone()).ok()?;
                let key = eval_key(self.workload_key, mem_key, conn_key, trace_len, mode);
                Some((key, sys))
            },
            |sys, cancelled| {
                let _t = obs::time_scope("conex.estimate.item_us");
                #[cfg(feature = "fault-injection")]
                if mce_faultinject::on_eval_blocking(cancelled) {
                    return None;
                }
                let stats = simulate_sampled_blocks_cancellable(
                    sys,
                    &self.workload,
                    &self.blocks,
                    trace_len,
                    sampling,
                    cancelled,
                )?;
                Some(Metrics::new(
                    sys.gate_cost(),
                    stats.avg_latency_cycles,
                    stats.avg_energy_nj,
                ))
            },
        )?;
        if status != BatchStatus::Complete {
            return Ok(BoundedBatch {
                output: Vec::new(),
                degraded: Vec::new(),
                cache_hits: Vec::new(),
                status,
            });
        }
        let mut degraded = Vec::new();
        let mut cache_hits = Vec::new();
        let output = slots
            .into_iter()
            .enumerate()
            .map(|(i, (slot, metrics))| match slot {
                Slot::Infeasible => None,
                Slot::Hit(sys, m) => {
                    cache_hits.push(i);
                    Some(DesignPoint::new(sys, m, true))
                }
                // A timed-out estimate has no fallback value: drop the
                // candidate, as if infeasible, and annotate the slot.
                Slot::Job(_, _) if metrics.is_none() => {
                    degraded.push(i);
                    None
                }
                Slot::Job(sys, _) => Some(DesignPoint::new(sys, metrics.unwrap(), true)),
            })
            .collect();
        Ok(BoundedBatch {
            output,
            degraded,
            cache_hits,
            status,
        })
    }

    /// Phase-II full simulation of a shortlist of design points.
    ///
    /// Equivalent to
    /// [`refine_with_full_simulation`](crate::estimate::refine_with_full_simulation)
    /// per point — bit-identically, minus the redundant simulations.
    ///
    /// # Errors
    ///
    /// Returns [`MceError::WorkerPanic`] when an evaluation panics twice
    /// (parallel pass and serial retry).
    pub fn refine_batch(
        &self,
        points: &[DesignPoint],
        trace_len: usize,
        threads: usize,
    ) -> Result<Vec<DesignPoint>, MceError> {
        let batch = self.refine_batch_bounded(points, trace_len, threads)?;
        expect_complete(batch)
    }

    /// [`EvalEngine::refine_batch`] under the engine's [`Bounds`].
    ///
    /// A batch cut short by the logical budget or the cancel token comes
    /// back with an empty output and the corresponding [`BatchStatus`].
    /// A point whose full simulation hit the per-candidate watchdog
    /// timeout degrades gracefully: the simulation result is replaced by
    /// the estimator's value (the point's existing metrics, which Phase I
    /// already committed deterministically), the point keeps its
    /// `estimated` flag, and its index is recorded in
    /// [`BoundedBatch::degraded`]. Degraded values are never inserted
    /// into the eval cache, so a timeout can not poison memoization
    /// across runs.
    ///
    /// # Errors
    ///
    /// Returns [`MceError::WorkerPanic`] when an evaluation panics twice.
    pub fn refine_batch_bounded(
        &self,
        points: &[DesignPoint],
        trace_len: usize,
        threads: usize,
    ) -> Result<BoundedBatch<DesignPoint>, MceError> {
        let (slots, status) = self.run_batch(
            "conex.simulate",
            points.len(),
            threads,
            |i| {
                let sys = &points[i].system;
                let key = eval_key(
                    self.workload_key,
                    mem_digest(sys.mem(), &self.workload),
                    conn_digest(sys.conn()),
                    trace_len,
                    EvalMode::Full,
                );
                Some((key, sys.clone()))
            },
            |sys, cancelled| {
                let _t = obs::time_scope("conex.simulate.item_us");
                #[cfg(feature = "fault-injection")]
                if mce_faultinject::on_eval_blocking(cancelled) {
                    return None;
                }
                let stats = simulate_blocks_cancellable(
                    sys,
                    &self.workload,
                    &self.blocks,
                    trace_len,
                    cancelled,
                )?;
                Some(Metrics::new(
                    sys.gate_cost(),
                    stats.avg_latency_cycles,
                    stats.avg_energy_nj,
                ))
            },
        )?;
        if status != BatchStatus::Complete {
            return Ok(BoundedBatch {
                output: Vec::new(),
                degraded: Vec::new(),
                cache_hits: Vec::new(),
                status,
            });
        }
        let mut degraded = Vec::new();
        let mut cache_hits = Vec::new();
        let output = slots
            .into_iter()
            .enumerate()
            .map(|(i, (slot, metrics))| match slot {
                Slot::Infeasible => unreachable!("refine inputs are always feasible"),
                Slot::Hit(sys, m) => {
                    cache_hits.push(i);
                    DesignPoint::new(sys, m, false)
                }
                // Timed out: fall back to the estimator's value for this
                // point; it stays marked as an estimate.
                Slot::Job(sys, _) if metrics.is_none() => {
                    degraded.push(i);
                    DesignPoint::new(sys, points[i].metrics, true)
                }
                Slot::Job(sys, _) => DesignPoint::new(sys, metrics.unwrap(), false),
            })
            .collect();
        Ok(BoundedBatch {
            output,
            degraded,
            cache_hits,
            status,
        })
    }

    /// The shared probe → simulate → populate machinery.
    ///
    /// `prepare(i)` keys slot `i` (returning `None` for infeasible
    /// pairings); `evaluate` runs the unique simulation jobs in parallel,
    /// returning `None` when its cancellation check cut the simulation
    /// short. Returns each slot paired with its job's metrics (`None` for
    /// non-job slots and for timed-out jobs), plus the batch status.
    ///
    /// Bounds discipline:
    /// * the cancel token is checked once before the probe and inside
    ///   every simulation (at block-batch boundaries via `evaluate`'s
    ///   check); a tripped token discards the whole batch
    ///   ([`BatchStatus::Cancelled`], nothing committed);
    /// * one logical budget unit is taken per feasible slot, serially in
    ///   probe order (hit, coalesced and job slots all count one) — the
    ///   canonical order makes consumption thread-count and cache
    ///   independent. Exhaustion discards the batch
    ///   ([`BatchStatus::BudgetExhausted`], nothing committed);
    /// * each parallel job registers with the watchdog (when one is set);
    ///   an expired lane makes `evaluate`'s check trip for that job only,
    ///   which surfaces as `None` metrics — a timeout, not a cancel.
    fn run_batch(
        &self,
        region: &'static str,
        len: usize,
        threads: usize,
        prepare: impl Fn(usize) -> Option<(CanonKey, SystemConfig)>,
        evaluate: impl Fn(&SystemConfig, &(dyn Fn() -> bool + Sync)) -> Option<Metrics> + Sync,
    ) -> Result<BatchOutput, MceError> {
        let bounds = &self.bounds;
        if bounds.token.is_cancelled() {
            return Ok((Vec::new(), BatchStatus::Cancelled));
        }
        // Serial probe phase: classify every slot, deduplicating within
        // the batch so each unique key simulates at most once.
        let mut slots: Vec<Slot<SystemConfig>> = Vec::with_capacity(len);
        let mut job_of: HashMap<CanonKey, usize> = HashMap::new();
        let mut jobs: Vec<(CanonKey, usize)> = Vec::new(); // (key, owner slot)
        let (mut hits, mut coalesced) = (0u64, 0u64);
        for i in 0..len {
            let Some((key, sys)) = prepare(i) else {
                slots.push(Slot::Infeasible);
                continue;
            };
            if !bounds.take_eval() {
                return Ok((Vec::new(), BatchStatus::BudgetExhausted));
            }
            // Peek, don't get: hit/miss statistics are tallied only when
            // the batch commits, so a discarded batch pollutes nothing.
            if let Some(m) = self.cache.as_ref().and_then(|c| {
                let _t = obs::time_scope("eval_cache.probe_us");
                c.peek(key)
            }) {
                hits += 1;
                slots.push(Slot::Hit(sys, m));
            } else if let Some(&j) = job_of.get(&key) {
                coalesced += 1;
                slots.push(Slot::Job(sys, j));
            } else {
                let j = jobs.len();
                job_of.insert(key, j);
                jobs.push((key, i));
                slots.push(Slot::Job(sys, j));
            }
        }
        // Parallel phase: only the unique misses simulate. A twice-failed
        // evaluation surfaces here as a clean error instead of unwinding
        // through the batch.
        let results: Vec<Option<Metrics>> =
            try_par_map_named(region, &jobs, threads, |&(_, owner)| match &slots[owner] {
                Slot::Job(sys, _) => {
                    let lane = bounds.watchdog.as_ref().map(|w| w.watch());
                    let cancelled = || {
                        bounds.token.is_cancelled() || lane.as_ref().is_some_and(|l| l.expired())
                    };
                    evaluate(sys, &cancelled)
                }
                _ => unreachable!("job owners are Job slots"),
            })?;
        // A tripped token discards the whole batch: partially cancelled
        // results must never be committed, or resumed runs would diverge.
        if bounds.token.is_cancelled() {
            return Ok((Vec::new(), BatchStatus::Cancelled));
        }
        let timeouts = results.iter().filter(|m| m.is_none()).count() as u64;
        if timeouts > 0 {
            obs::counter_add("budget.timeouts", timeouts);
        }
        // Serial populate phase: insert in probe order, so cache contents
        // (and FIFO eviction order) are thread-count independent. Timed-
        // out jobs have no value to insert — degraded results are never
        // cached.
        let mut inserts = 0u64;
        if let Some(cache) = &self.cache {
            // Every probed candidate that was not a hit missed — whether
            // it became a job or coalesced onto one.
            cache.tally_probes(hits, jobs.len() as u64 + coalesced);
            for (&(key, _), m) in jobs.iter().zip(&results) {
                if let Some(m) = m {
                    if cache.insert(key, *m) {
                        inserts += 1;
                    }
                }
            }
            obs::counter_add("eval_cache.hits", hits);
            obs::counter_add("eval_cache.misses", jobs.len() as u64);
            obs::counter_add("eval_cache.inserts", inserts);
        }
        obs::counter_add("eval_cache.coalesced", coalesced);
        // The funnel gauge the worker-lane events reconcile against: how
        // many simulations actually ran in this region.
        obs::counter_add(
            match region {
                "conex.estimate" => "conex.estimate_jobs",
                _ => "conex.simulate_jobs",
            },
            jobs.len() as u64,
        );
        let out = slots
            .into_iter()
            .map(|slot| {
                let m = match &slot {
                    Slot::Job(_, j) => results[*j],
                    _ => None,
                };
                (slot, m)
            })
            .collect();
        Ok((out, BatchStatus::Complete))
    }
}

/// Unwraps a bounded batch for the unbounded entry points, which cannot
/// express truncation.
fn expect_complete<T>(batch: BoundedBatch<T>) -> Result<Vec<T>, MceError> {
    match batch.status {
        BatchStatus::Complete => Ok(batch.output),
        status => Err(MceError::invalid_input(format!(
            "batch truncated ({status:?}) under active bounds — use the *_bounded API"
        ))),
    }
}

impl std::fmt::Debug for EvalEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalEngine")
            .field("workload", &self.workload.name())
            .field("max_trace_len", &self.blocks.len())
            .field("cached", &self.cache.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocate::enumerate_allocations;
    use crate::brg::Brg;
    use crate::cluster::{cluster_levels, ClusterOrder};
    use crate::estimate::{estimate_candidate, refine_with_full_simulation};
    use mce_appmodel::benchmarks;
    use mce_connlib::ConnectivityLibrary;
    use mce_memlib::CacheConfig;

    const N: usize = 20_000;

    fn candidates(w: &Workload, mem: &MemoryArchitecture) -> Vec<ConnectivityArchitecture> {
        let brg = Brg::profile(w, mem, N);
        let levels = cluster_levels(&brg, ClusterOrder::LowestFirst);
        let lib = ConnectivityLibrary::amba();
        let mut out = Vec::new();
        for level in levels {
            out.extend(enumerate_allocations(&brg, &level, &lib, 16));
        }
        out
    }

    #[test]
    fn batch_estimation_matches_per_candidate_path() {
        let w = benchmarks::vocoder();
        let mem = MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(4));
        let cands = candidates(&w, &mem);
        assert!(cands.len() >= 4, "{} candidates", cands.len());
        let engine = EvalEngine::new(&w, N);
        let sampling = SamplingConfig::paper();
        let batch = engine
            .estimate_batch(&mem, cands.clone(), N, sampling, 2)
            .unwrap();
        assert_eq!(batch.len(), cands.len());
        for (conn, got) in cands.into_iter().zip(batch) {
            let expect = estimate_candidate(&w, &mem, conn, N, sampling);
            match (expect, got) {
                (Some(e), Some(g)) => {
                    assert_eq!(e.metrics, g.metrics);
                    assert!(g.estimated);
                }
                (None, None) => {}
                (e, g) => panic!("feasibility mismatch: {e:?} vs {g:?}"),
            }
        }
    }

    #[test]
    fn batch_refinement_matches_per_point_path() {
        let w = benchmarks::vocoder();
        let mem = MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(4));
        let engine = EvalEngine::new(&w, N);
        let sampling = SamplingConfig::paper();
        let points: Vec<DesignPoint> = engine
            .estimate_batch(&mem, candidates(&w, &mem), N, sampling, 0)
            .unwrap()
            .into_iter()
            .flatten()
            .take(4)
            .collect();
        let refined = engine.refine_batch(&points, N, 2).unwrap();
        for (p, got) in points.iter().zip(refined) {
            let expect = refine_with_full_simulation(p, &w, N);
            assert_eq!(expect.metrics, got.metrics);
            assert!(!got.estimated);
        }
    }

    #[test]
    fn cache_on_and_off_are_bit_identical() {
        let w = benchmarks::compress();
        let mem = MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(8));
        let cands = candidates(&w, &mem);
        let sampling = SamplingConfig::paper();
        let plain = EvalEngine::new(&w, N);
        let cached = plain.clone().with_cache(Arc::new(EvalCache::new()));
        let a = plain
            .estimate_batch(&mem, cands.clone(), N, sampling, 0)
            .unwrap();
        // Run the cached engine twice: the second pass answers from cache.
        let b1 = cached
            .estimate_batch(&mem, cands.clone(), N, sampling, 0)
            .unwrap();
        let b2 = cached.estimate_batch(&mem, cands, N, sampling, 3).unwrap();
        let stats = cached.cache().unwrap().stats();
        assert!(stats.hits > 0, "second pass must hit: {stats:?}");
        for ((pa, pb1), pb2) in a.iter().zip(&b1).zip(&b2) {
            let m = |p: &Option<DesignPoint>| p.as_ref().map(|p| p.metrics);
            assert_eq!(m(pa), m(pb1), "cache off vs cold cache");
            assert_eq!(m(pa), m(pb2), "cache off vs warm cache");
        }
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let w = benchmarks::vocoder();
        let mem = MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(4));
        let cands = candidates(&w, &mem);
        let sampling = SamplingConfig::paper();
        let reference: Vec<Option<Metrics>> = EvalEngine::new(&w, N)
            .estimate_batch(&mem, cands.clone(), N, sampling, 1)
            .unwrap()
            .into_iter()
            .map(|p| p.map(|p| p.metrics))
            .collect();
        for threads in [2, 5, 0] {
            let engine = EvalEngine::new(&w, N).with_cache(Arc::new(EvalCache::new()));
            let got: Vec<Option<Metrics>> = engine
                .estimate_batch(&mem, cands.clone(), N, sampling, threads)
                .unwrap()
                .into_iter()
                .map(|p| p.map(|p| p.metrics))
                .collect();
            assert_eq!(reference, got, "threads={threads}");
        }
    }

    #[test]
    fn duplicate_candidates_coalesce_into_one_job() {
        let w = benchmarks::vocoder();
        let mem = MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(4));
        let mut cands = candidates(&w, &mem);
        let dup = cands[0].clone();
        cands.push(dup);
        let engine = EvalEngine::new(&w, N).with_cache(Arc::new(EvalCache::new()));
        let batch = engine
            .estimate_batch(&mem, cands, N, SamplingConfig::paper(), 0)
            .unwrap();
        let first = batch.first().unwrap().as_ref().unwrap();
        let last = batch.last().unwrap().as_ref().unwrap();
        assert_eq!(first.metrics, last.metrics);
        // The twin never reached the cache as a separate miss.
        let stats = engine.cache().unwrap().stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.inserts as usize, batch.iter().flatten().count() - 1);
    }

    #[test]
    fn ample_bounds_are_bit_identical_to_unbounded() {
        use mce_budget::{Bounds, EvalBudget};
        let w = benchmarks::vocoder();
        let mem = MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(4));
        let cands = candidates(&w, &mem);
        let sampling = SamplingConfig::paper();
        let plain = EvalEngine::new(&w, N)
            .estimate_batch(&mem, cands.clone(), N, sampling, 0)
            .unwrap();
        let bounds = Bounds {
            budget: Some(Arc::new(EvalBudget::limited(1_000_000))),
            ..Bounds::none()
        };
        let bounded = EvalEngine::new(&w, N)
            .with_bounds(bounds)
            .estimate_batch_bounded(&mem, cands, N, sampling, 2)
            .unwrap();
        assert_eq!(bounded.status, BatchStatus::Complete);
        assert!(bounded.degraded.is_empty());
        let m = |ps: &[Option<DesignPoint>]| -> Vec<Option<Metrics>> {
            ps.iter().map(|p| p.as_ref().map(|p| p.metrics)).collect()
        };
        assert_eq!(m(&plain), m(&bounded.output));
    }

    #[test]
    fn exhausted_budget_discards_the_batch_deterministically() {
        use mce_budget::{Bounds, EvalBudget};
        let w = benchmarks::vocoder();
        let mem = MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(4));
        let cands = candidates(&w, &mem);
        assert!(cands.len() >= 4);
        let sampling = SamplingConfig::paper();
        let mut consumed = Vec::new();
        for threads in [1, 4] {
            for with_cache in [false, true] {
                let budget = Arc::new(EvalBudget::limited(2));
                let mut engine = EvalEngine::new(&w, N).with_bounds(Bounds {
                    budget: Some(Arc::clone(&budget)),
                    ..Bounds::none()
                });
                if with_cache {
                    engine = engine.with_cache(Arc::new(EvalCache::new()));
                }
                let batch = engine
                    .estimate_batch_bounded(&mem, cands.clone(), N, sampling, threads)
                    .unwrap();
                assert_eq!(batch.status, BatchStatus::BudgetExhausted);
                assert!(batch.output.is_empty(), "nothing committed");
                if let Some(cache) = engine.cache() {
                    assert_eq!(cache.stats().inserts, 0, "no cache writes");
                }
                consumed.push(budget.remaining());
            }
        }
        // Probe-order consumption: identical across threads and cache.
        assert!(consumed.windows(2).all(|w| w[0] == w[1]), "{consumed:?}");
    }

    #[test]
    fn cancelled_token_discards_the_batch() {
        use mce_budget::{Bounds, CancelReason, CancelToken};
        let w = benchmarks::vocoder();
        let mem = MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(4));
        let cands = candidates(&w, &mem);
        let token = CancelToken::never();
        token.cancel(CancelReason::Deadline);
        let engine = EvalEngine::new(&w, N).with_bounds(Bounds {
            token,
            ..Bounds::none()
        });
        let batch = engine
            .estimate_batch_bounded(&mem, cands.clone(), N, SamplingConfig::paper(), 0)
            .unwrap();
        assert_eq!(batch.status, BatchStatus::Cancelled);
        assert!(batch.output.is_empty());
        // The unbounded entry point cannot express the truncation.
        let err = engine
            .estimate_batch(&mem, cands, N, SamplingConfig::paper(), 0)
            .unwrap_err();
        assert!(matches!(err, MceError::InvalidInput { .. }), "{err}");
    }

    #[test]
    fn watchdog_timeout_degrades_refinement_to_the_estimate() {
        use mce_budget::{Bounds, Watchdog};
        use std::time::Duration;
        let w = benchmarks::vocoder();
        let mem = MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(4));
        let engine = EvalEngine::new(&w, N);
        let points: Vec<DesignPoint> = engine
            .estimate_batch(&mem, candidates(&w, &mem), N, SamplingConfig::paper(), 0)
            .unwrap()
            .into_iter()
            .flatten()
            .take(3)
            .collect();
        // A zero timeout expires every lane before its first block batch:
        // every refinement degrades to its Phase-I estimate.
        let bounded = engine
            .clone()
            .with_bounds(Bounds {
                watchdog: Some(Arc::new(Watchdog::start(Duration::ZERO))),
                ..Bounds::none()
            })
            .refine_batch_bounded(&points, N, 2)
            .unwrap();
        assert_eq!(bounded.status, BatchStatus::Complete);
        assert_eq!(bounded.degraded, vec![0, 1, 2]);
        for (p, d) in points.iter().zip(&bounded.output) {
            assert_eq!(p.metrics, d.metrics, "falls back to the estimate");
            assert!(d.estimated, "degraded point stays an estimate");
        }
    }

    #[test]
    fn estimate_and_full_modes_never_collide() {
        let w = benchmarks::vocoder();
        let mem = MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(4));
        let cands: Vec<_> = candidates(&w, &mem).into_iter().take(2).collect();
        let engine = EvalEngine::new(&w, N).with_cache(Arc::new(EvalCache::new()));
        let sampling = SamplingConfig::paper();
        let est: Vec<DesignPoint> = engine
            .estimate_batch(&mem, cands, N, sampling, 0)
            .unwrap()
            .into_iter()
            .flatten()
            .collect();
        let refined = engine.refine_batch(&est, N, 0).unwrap();
        // Full simulation must not be answered by the estimate entries.
        for (e, r) in est.iter().zip(&refined) {
            assert!(r.metrics.latency_cycles != 0.0);
            assert!(!r.estimated && e.estimated);
        }
        let stats = engine.cache().unwrap().stats();
        assert_eq!(stats.hits, 0, "modes share no keys: {stats:?}");
    }
}
