//! The candidate-evaluation engine.
//!
//! Every metric the exploration ranks comes from replaying a workload's
//! trace through a candidate system. The [`EvalEngine`] is the single
//! place that happens, and it makes each evaluation as cheap as possible,
//! in order of preference:
//!
//! 1. **Memoized** — the candidate's canonical key
//!    ([`design_point`](crate::design_point)) hits the [`EvalCache`]:
//!    no simulation at all. The cache is shared across scenarios,
//!    strategies, clustering levels and (via spill files) runs.
//! 2. **Coalesced** — another candidate in the same batch has the same
//!    key (enumeration at adjacent clustering levels re-derives
//!    structurally identical pairings): simulated once, answered twice.
//! 3. **Simulated** — block-compiled replay
//!    ([`simulate_blocks`] / [`simulate_sampled_blocks`]) over the
//!    engine's shared [`TraceBlocks`], compiled once per workload and
//!    shared immutably across worker threads.
//!
//! Determinism: cache probes, coalescing and cache population all run
//! serially on the calling thread; only the unique simulations fan out
//! through [`par_map_named`], whose output is order-preserving. Results
//! are therefore bit-identical with the cache on or off and for any
//! thread count — the cache only removes redundant work, it never
//! reorders floating-point accumulation within an evaluation.

use crate::design_point::{
    conn_digest, eval_key, mem_digest, workload_digest, CanonKey, DesignPoint, EvalMode, Metrics,
};
use crate::eval_cache::EvalCache;
use crate::par::try_par_map_named;
use mce_appmodel::{TraceBlocks, Workload};
use mce_error::MceError;
use mce_connlib::ConnectivityArchitecture;
use mce_memlib::MemoryArchitecture;
use mce_obs as obs;
use mce_sim::{simulate_blocks, simulate_sampled_blocks, SamplingConfig, SystemConfig};
use std::collections::HashMap;
use std::sync::Arc;

/// How a batch slot will be answered.
enum Slot<T> {
    /// The memory + connectivity pairing does not form a valid system.
    Infeasible,
    /// Answered from the cache.
    Hit(T, Metrics),
    /// Answered by simulation job `usize` (shared by coalesced twins).
    Job(T, usize),
}

/// The memoizing evaluation engine for one workload.
///
/// Construct one per exploration (or share one across APEX and ConEx via
/// [`ExplorationSession`](https://docs.rs) — see the facade crate), then
/// evaluate candidates in batches.
#[derive(Clone)]
pub struct EvalEngine {
    workload: Workload,
    workload_key: CanonKey,
    blocks: Arc<TraceBlocks>,
    cache: Option<Arc<EvalCache>>,
}

impl EvalEngine {
    /// Compiles `workload`'s first `max_trace_len` accesses into shared
    /// trace blocks and creates an engine with no cache.
    ///
    /// `max_trace_len` must be the longest trace any batch will replay;
    /// shorter lengths replay a prefix of the same blocks.
    pub fn new(workload: &Workload, max_trace_len: usize) -> Self {
        Self::with_blocks(
            workload,
            Arc::new(TraceBlocks::compile(workload, max_trace_len)),
        )
    }

    /// An engine over already-compiled blocks (shared with other engines
    /// or a surrounding session).
    pub fn with_blocks(workload: &Workload, blocks: Arc<TraceBlocks>) -> Self {
        EvalEngine {
            workload: workload.clone(),
            workload_key: workload_digest(workload),
            blocks,
            cache: None,
        }
    }

    /// Attaches a (possibly shared) memoization cache.
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<EvalCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The workload this engine evaluates against.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// The shared compiled trace blocks.
    pub fn blocks(&self) -> &Arc<TraceBlocks> {
        &self.blocks
    }

    /// The attached cache, if any.
    pub fn cache(&self) -> Option<&Arc<EvalCache>> {
        self.cache.as_ref()
    }

    /// The longest trace length this engine can replay.
    pub fn max_trace_len(&self) -> usize {
        self.blocks.len()
    }

    /// Phase-I estimation of a batch of connectivity candidates for one
    /// memory architecture.
    ///
    /// The result is index-aligned with `candidates`; `None` marks an
    /// infeasible pairing. Equivalent to calling
    /// [`estimate_candidate`](crate::estimate::estimate_candidate) per
    /// candidate — bit-identically, minus the redundant simulations.
    ///
    /// # Errors
    ///
    /// Returns [`MceError::WorkerPanic`] when an evaluation panics twice
    /// (parallel pass and serial retry) — see
    /// [`try_par_map_named`](crate::par::try_par_map_named).
    pub fn estimate_batch(
        &self,
        mem: &MemoryArchitecture,
        candidates: Vec<ConnectivityArchitecture>,
        trace_len: usize,
        sampling: SamplingConfig,
        threads: usize,
    ) -> Result<Vec<Option<DesignPoint>>, MceError> {
        let mem_key = mem_digest(mem, &self.workload);
        let mode = EvalMode::Estimated(sampling);
        let slots = self.run_batch(
            "conex.estimate",
            candidates.len(),
            threads,
            |i| {
                let conn = &candidates[i];
                let conn_key = conn_digest(conn);
                let sys =
                    SystemConfig::new(&self.workload, mem.clone(), conn.clone()).ok()?;
                let key = eval_key(self.workload_key, mem_key, conn_key, trace_len, mode);
                Some((key, sys))
            },
            |sys| {
                let _t = obs::time_scope("conex.estimate.item_us");
                #[cfg(feature = "fault-injection")]
                mce_faultinject::on_eval();
                let stats =
                    simulate_sampled_blocks(sys, &self.workload, &self.blocks, trace_len, sampling);
                Metrics::new(
                    sys.gate_cost(),
                    stats.avg_latency_cycles,
                    stats.avg_energy_nj,
                )
            },
        )?;
        Ok(slots
            .into_iter()
            .map(|(slot, metrics)| match slot {
                Slot::Infeasible => None,
                Slot::Hit(sys, m) => Some(DesignPoint::new(sys, m, true)),
                Slot::Job(sys, _) => Some(DesignPoint::new(sys, metrics.unwrap(), true)),
            })
            .collect())
    }

    /// Phase-II full simulation of a shortlist of design points.
    ///
    /// Equivalent to
    /// [`refine_with_full_simulation`](crate::estimate::refine_with_full_simulation)
    /// per point — bit-identically, minus the redundant simulations.
    ///
    /// # Errors
    ///
    /// Returns [`MceError::WorkerPanic`] when an evaluation panics twice
    /// (parallel pass and serial retry).
    pub fn refine_batch(
        &self,
        points: &[DesignPoint],
        trace_len: usize,
        threads: usize,
    ) -> Result<Vec<DesignPoint>, MceError> {
        let slots = self.run_batch(
            "conex.simulate",
            points.len(),
            threads,
            |i| {
                let sys = &points[i].system;
                let key = eval_key(
                    self.workload_key,
                    mem_digest(sys.mem(), &self.workload),
                    conn_digest(sys.conn()),
                    trace_len,
                    EvalMode::Full,
                );
                Some((key, sys.clone()))
            },
            |sys| {
                let _t = obs::time_scope("conex.simulate.item_us");
                #[cfg(feature = "fault-injection")]
                mce_faultinject::on_eval();
                let stats = simulate_blocks(sys, &self.workload, &self.blocks, trace_len);
                Metrics::new(
                    sys.gate_cost(),
                    stats.avg_latency_cycles,
                    stats.avg_energy_nj,
                )
            },
        )?;
        Ok(slots
            .into_iter()
            .map(|(slot, metrics)| match slot {
                Slot::Infeasible => unreachable!("refine inputs are always feasible"),
                Slot::Hit(sys, m) => DesignPoint::new(sys, m, false),
                Slot::Job(sys, _) => DesignPoint::new(sys, metrics.unwrap(), false),
            })
            .collect())
    }

    /// The shared probe → simulate → populate machinery.
    ///
    /// `prepare(i)` keys slot `i` (returning `None` for infeasible
    /// pairings); `evaluate` runs the unique simulation jobs in parallel.
    /// Returns each slot paired with its job's metrics (`None` for
    /// non-job slots).
    fn run_batch(
        &self,
        region: &'static str,
        len: usize,
        threads: usize,
        prepare: impl Fn(usize) -> Option<(CanonKey, SystemConfig)>,
        evaluate: impl Fn(&SystemConfig) -> Metrics + Sync,
    ) -> Result<Vec<(Slot<SystemConfig>, Option<Metrics>)>, MceError> {
        // Serial probe phase: classify every slot, deduplicating within
        // the batch so each unique key simulates at most once.
        let mut slots: Vec<Slot<SystemConfig>> = Vec::with_capacity(len);
        let mut job_of: HashMap<CanonKey, usize> = HashMap::new();
        let mut jobs: Vec<(CanonKey, usize)> = Vec::new(); // (key, owner slot)
        let (mut hits, mut coalesced) = (0u64, 0u64);
        for i in 0..len {
            let Some((key, sys)) = prepare(i) else {
                slots.push(Slot::Infeasible);
                continue;
            };
            if let Some(m) = self.cache.as_ref().and_then(|c| {
                let _t = obs::time_scope("eval_cache.probe_us");
                c.get(key)
            }) {
                hits += 1;
                slots.push(Slot::Hit(sys, m));
            } else if let Some(&j) = job_of.get(&key) {
                coalesced += 1;
                slots.push(Slot::Job(sys, j));
            } else {
                let j = jobs.len();
                job_of.insert(key, j);
                jobs.push((key, i));
                slots.push(Slot::Job(sys, j));
            }
        }
        // Parallel phase: only the unique misses simulate. A twice-failed
        // evaluation surfaces here as a clean error instead of unwinding
        // through the batch.
        let results: Vec<Metrics> = try_par_map_named(region, &jobs, threads, |&(_, owner)| {
            match &slots[owner] {
                Slot::Job(sys, _) => evaluate(sys),
                _ => unreachable!("job owners are Job slots"),
            }
        })?;
        // Serial populate phase: insert in probe order, so cache contents
        // (and FIFO eviction order) are thread-count independent.
        let mut inserts = 0u64;
        if let Some(cache) = &self.cache {
            for (&(key, _), m) in jobs.iter().zip(&results) {
                if cache.insert(key, *m) {
                    inserts += 1;
                }
            }
            obs::counter_add("eval_cache.hits", hits);
            obs::counter_add("eval_cache.misses", jobs.len() as u64);
            obs::counter_add("eval_cache.inserts", inserts);
        }
        obs::counter_add("eval_cache.coalesced", coalesced);
        // The funnel gauge the worker-lane events reconcile against: how
        // many simulations actually ran in this region.
        obs::counter_add(
            match region {
                "conex.estimate" => "conex.estimate_jobs",
                _ => "conex.simulate_jobs",
            },
            jobs.len() as u64,
        );
        Ok(slots
            .into_iter()
            .map(|slot| {
                let m = match &slot {
                    Slot::Job(_, j) => Some(results[*j]),
                    _ => None,
                };
                (slot, m)
            })
            .collect())
    }
}

impl std::fmt::Debug for EvalEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalEngine")
            .field("workload", &self.workload.name())
            .field("max_trace_len", &self.blocks.len())
            .field("cached", &self.cache.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocate::enumerate_allocations;
    use crate::brg::Brg;
    use crate::cluster::{cluster_levels, ClusterOrder};
    use crate::estimate::{estimate_candidate, refine_with_full_simulation};
    use mce_appmodel::benchmarks;
    use mce_connlib::ConnectivityLibrary;
    use mce_memlib::CacheConfig;

    const N: usize = 20_000;

    fn candidates(w: &Workload, mem: &MemoryArchitecture) -> Vec<ConnectivityArchitecture> {
        let brg = Brg::profile(w, mem, N);
        let levels = cluster_levels(&brg, ClusterOrder::LowestFirst);
        let lib = ConnectivityLibrary::amba();
        let mut out = Vec::new();
        for level in levels {
            out.extend(enumerate_allocations(&brg, &level, &lib, 16));
        }
        out
    }

    #[test]
    fn batch_estimation_matches_per_candidate_path() {
        let w = benchmarks::vocoder();
        let mem = MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(4));
        let cands = candidates(&w, &mem);
        assert!(cands.len() >= 4, "{} candidates", cands.len());
        let engine = EvalEngine::new(&w, N);
        let sampling = SamplingConfig::paper();
        let batch = engine.estimate_batch(&mem, cands.clone(), N, sampling, 2).unwrap();
        assert_eq!(batch.len(), cands.len());
        for (conn, got) in cands.into_iter().zip(batch) {
            let expect = estimate_candidate(&w, &mem, conn, N, sampling);
            match (expect, got) {
                (Some(e), Some(g)) => {
                    assert_eq!(e.metrics, g.metrics);
                    assert!(g.estimated);
                }
                (None, None) => {}
                (e, g) => panic!("feasibility mismatch: {e:?} vs {g:?}"),
            }
        }
    }

    #[test]
    fn batch_refinement_matches_per_point_path() {
        let w = benchmarks::vocoder();
        let mem = MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(4));
        let engine = EvalEngine::new(&w, N);
        let sampling = SamplingConfig::paper();
        let points: Vec<DesignPoint> = engine
            .estimate_batch(&mem, candidates(&w, &mem), N, sampling, 0)
            .unwrap()
            .into_iter()
            .flatten()
            .take(4)
            .collect();
        let refined = engine.refine_batch(&points, N, 2).unwrap();
        for (p, got) in points.iter().zip(refined) {
            let expect = refine_with_full_simulation(p, &w, N);
            assert_eq!(expect.metrics, got.metrics);
            assert!(!got.estimated);
        }
    }

    #[test]
    fn cache_on_and_off_are_bit_identical() {
        let w = benchmarks::compress();
        let mem = MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(8));
        let cands = candidates(&w, &mem);
        let sampling = SamplingConfig::paper();
        let plain = EvalEngine::new(&w, N);
        let cached = plain.clone().with_cache(Arc::new(EvalCache::new()));
        let a = plain.estimate_batch(&mem, cands.clone(), N, sampling, 0).unwrap();
        // Run the cached engine twice: the second pass answers from cache.
        let b1 = cached.estimate_batch(&mem, cands.clone(), N, sampling, 0).unwrap();
        let b2 = cached.estimate_batch(&mem, cands, N, sampling, 3).unwrap();
        let stats = cached.cache().unwrap().stats();
        assert!(stats.hits > 0, "second pass must hit: {stats:?}");
        for ((pa, pb1), pb2) in a.iter().zip(&b1).zip(&b2) {
            let m = |p: &Option<DesignPoint>| p.as_ref().map(|p| p.metrics);
            assert_eq!(m(pa), m(pb1), "cache off vs cold cache");
            assert_eq!(m(pa), m(pb2), "cache off vs warm cache");
        }
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let w = benchmarks::vocoder();
        let mem = MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(4));
        let cands = candidates(&w, &mem);
        let sampling = SamplingConfig::paper();
        let reference: Vec<Option<Metrics>> = EvalEngine::new(&w, N)
            .estimate_batch(&mem, cands.clone(), N, sampling, 1)
            .unwrap()
            .into_iter()
            .map(|p| p.map(|p| p.metrics))
            .collect();
        for threads in [2, 5, 0] {
            let engine = EvalEngine::new(&w, N).with_cache(Arc::new(EvalCache::new()));
            let got: Vec<Option<Metrics>> = engine
                .estimate_batch(&mem, cands.clone(), N, sampling, threads)
                .unwrap()
                .into_iter()
                .map(|p| p.map(|p| p.metrics))
                .collect();
            assert_eq!(reference, got, "threads={threads}");
        }
    }

    #[test]
    fn duplicate_candidates_coalesce_into_one_job() {
        let w = benchmarks::vocoder();
        let mem = MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(4));
        let mut cands = candidates(&w, &mem);
        let dup = cands[0].clone();
        cands.push(dup);
        let engine = EvalEngine::new(&w, N).with_cache(Arc::new(EvalCache::new()));
        let batch = engine.estimate_batch(&mem, cands, N, SamplingConfig::paper(), 0).unwrap();
        let first = batch.first().unwrap().as_ref().unwrap();
        let last = batch.last().unwrap().as_ref().unwrap();
        assert_eq!(first.metrics, last.metrics);
        // The twin never reached the cache as a separate miss.
        let stats = engine.cache().unwrap().stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.inserts as usize, batch.iter().flatten().count() - 1);
    }

    #[test]
    fn estimate_and_full_modes_never_collide() {
        let w = benchmarks::vocoder();
        let mem = MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(4));
        let cands: Vec<_> = candidates(&w, &mem).into_iter().take(2).collect();
        let engine = EvalEngine::new(&w, N).with_cache(Arc::new(EvalCache::new()));
        let sampling = SamplingConfig::paper();
        let est: Vec<DesignPoint> = engine
            .estimate_batch(&mem, cands, N, sampling, 0)
            .unwrap()
            .into_iter()
            .flatten()
            .collect();
        let refined = engine.refine_batch(&est, N, 0).unwrap();
        // Full simulation must not be answered by the estimate entries.
        for (e, r) in est.iter().zip(&refined) {
            assert!(r.metrics.latency_cycles != 0.0);
            assert!(!r.estimated && e.estimated);
        }
        let stats = engine.cache().unwrap().stats();
        assert_eq!(stats.hits, 0, "modes share no keys: {stats:?}");
    }
}
