//! The two-phase ConEx algorithm (the paper's Figure 5).
//!
//! * `ConnectivityExploration(mem_arch)` — profile, build the BRG, cluster
//!   hierarchically, enumerate allocations per level (subject to the
//!   logical-connection cost constraint), and estimate every candidate.
//! * `ConEx` — Phase I runs the procedure per selected memory architecture
//!   and keeps the locally most promising points; Phase II fully simulates
//!   the pooled shortlist and selects the globally most promising combined
//!   memory + connectivity designs.
//!
//! Three strategies reproduce the paper's Table 2 comparison:
//! [`ExplorationStrategy::Pruned`] (pareto-only shortlists),
//! [`ExplorationStrategy::Neighborhood`] (pareto plus cost-neighbors), and
//! [`ExplorationStrategy::Full`] (simulate everything — the reference).

use crate::allocate::enumerate_allocations_filtered;
use crate::brg::Brg;
use crate::cluster::{cluster_levels, ClusterOrder};
use crate::design_point::{DesignPoint, Metrics};
use crate::engine::{BatchStatus, BoundedBatch, EvalEngine};
use crate::pareto::{hypervolume_proxy, Axis, ParetoFront};
use mce_appmodel::Workload;
use mce_budget::{CancelToken, StopReason};
use mce_connlib::ConnectivityLibrary;
use mce_error::MceError;
use mce_memlib::MemoryArchitecture;
use mce_obs as obs;
use mce_sim::{Preset, SamplingConfig};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::{Duration, Instant};

/// How aggressively Phase I prunes before Phase II's full simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ExplorationStrategy {
    /// Only the locally pareto-promising points are fully simulated (the
    /// paper's fast default: "2 days" vs the full month for compress).
    #[default]
    Pruned,
    /// The pruned shortlist plus each point's cost-order neighbors —
    /// better coverage for more simulation time.
    Neighborhood,
    /// Fully simulate every estimated candidate: defines the true pareto
    /// front, "often infeasible" at scale.
    Full,
}

impl fmt::Display for ExplorationStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ExplorationStrategy::Pruned => "Pruned",
            ExplorationStrategy::Neighborhood => "Neighborhood",
            ExplorationStrategy::Full => "Full",
        })
    }
}

/// Configuration of a ConEx run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConexConfig {
    /// Trace length for estimation and full simulation.
    pub trace_len: usize,
    /// Time-sampling configuration for Phase-I estimates.
    pub sampling: SamplingConfig,
    /// The paper's "max cost constraint": clustering levels with more
    /// logical connections than this are skipped.
    pub max_logical_connections: usize,
    /// Cap on enumerated allocations per clustering level.
    pub max_allocations_per_level: usize,
    /// Merge order of the hierarchical clustering.
    pub cluster_order: ClusterOrder,
    /// Pruning strategy.
    pub strategy: ExplorationStrategy,
    /// Cap on locally selected points per memory architecture.
    pub local_keep: usize,
    /// Worker threads for estimation and full simulation (0 = one per
    /// available core). Results are identical regardless of thread count.
    pub threads: usize,
    /// Bandwidth headroom required of a component over its cluster's
    /// measured requirement (0.0 = no filtering; see
    /// [`enumerate_allocations_filtered`] for details).
    ///
    /// [`enumerate_allocations_filtered`]: crate::allocate::enumerate_allocations_filtered
    pub bandwidth_headroom: f64,
    /// Pareto-frontier evolution sampling period for run reports: during
    /// Phase I, after every `frontier_sample_every` memory architectures
    /// (and always after the last), the cost/latency frontier of the
    /// estimate cloud accumulated so far is snapshotted into
    /// [`ConexResult::frontier_evolution`]. 0 disables sampling.
    pub frontier_sample_every: usize,
}

impl ConexConfig {
    /// The configuration for a [`Preset`]: [`Preset::Fast`] is small and
    /// quick for tests, [`Preset::Paper`] is the configuration used by
    /// the experiments.
    pub fn preset(preset: Preset) -> Self {
        match preset {
            Preset::Fast => ConexConfig {
                trace_len: 15_000,
                sampling: SamplingConfig::paper(),
                max_logical_connections: 8,
                max_allocations_per_level: 64,
                cluster_order: ClusterOrder::LowestFirst,
                strategy: ExplorationStrategy::Pruned,
                local_keep: 16,
                threads: 0,
                bandwidth_headroom: 0.0,
                frontier_sample_every: 1,
            },
            Preset::Paper => ConexConfig {
                trace_len: 60_000,
                sampling: SamplingConfig::paper(),
                max_logical_connections: 10,
                max_allocations_per_level: 256,
                cluster_order: ClusterOrder::LowestFirst,
                strategy: ExplorationStrategy::Pruned,
                local_keep: 48,
                threads: 0,
                bandwidth_headroom: 0.0,
                frontier_sample_every: 1,
            },
        }
    }

    /// Small and quick, for tests.
    #[deprecated(note = "use `ConexConfig::preset(Preset::Fast)`")]
    pub fn fast() -> Self {
        Self::preset(Preset::Fast)
    }

    /// The configuration used by the experiments.
    #[deprecated(note = "use `ConexConfig::preset(Preset::Paper)`")]
    pub fn paper() -> Self {
        Self::preset(Preset::Paper)
    }

    /// Returns the same configuration with a different strategy.
    pub fn with_strategy(mut self, strategy: ExplorationStrategy) -> Self {
        self.strategy = strategy;
        self
    }
}

/// One sample of the growing estimate cloud's cost/latency pareto
/// frontier, taken during Phase I after a memory architecture's
/// candidates land (see [`ConexConfig::frontier_sample_every`]). The
/// sequence of snapshots is a run report's frontier-evolution curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrontierSnapshot {
    /// Memory architectures explored when the sample was taken.
    pub archs_explored: usize,
    /// Estimated design points accumulated so far.
    pub estimated: usize,
    /// Size of the cost/latency pareto front over those points.
    pub frontier_size: usize,
    /// Normalized dominated-area proxy of that front
    /// ([`hypervolume_proxy`]).
    pub hypervolume: f64,
}

/// Why one Phase-I candidate did or did not survive local selection —
/// a frontier-provenance record captured under
/// [`ConexExplorer::with_explain`].
///
/// `index` is the candidate's position in its architecture's estimate
/// cloud (exploration order), except for `origin == "estimate-degraded"`
/// entries, whose candidate never produced a point: there it is the
/// architecture's enumeration slot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointProvenance {
    /// Position in the architecture's estimate cloud (see above).
    pub index: usize,
    /// One-line description of the design point (empty for dropped
    /// candidates, which have no metrics).
    pub describe: String,
    /// How the candidate's value was obtained: `"evaluated"` (simulated
    /// this run), `"cache-hit"` (answered from the evaluation cache —
    /// note a resumed run's replayed architectures are all cache hits),
    /// or `"estimate-degraded"` (dropped: its sampled simulation hit the
    /// per-candidate watchdog timeout).
    pub origin: String,
    /// Whether the candidate survived local selection into the Phase-II
    /// shortlist.
    pub kept: bool,
    /// The local fronts that earned the candidate its membership:
    /// `"cost-latency"`, `"cost-energy"`, `"pareto-3d"`, and/or
    /// `"neighbor"` (added by the Neighborhood strategy). A pruned
    /// candidate with nonempty fronts was on a front but lost to the
    /// `local_keep` cap.
    pub fronts: Vec<String>,
    /// For pruned candidates: the estimate-cloud index of the first kept
    /// candidate that dominates it (all metrics no worse, at least one
    /// strictly better), when one exists. `None` for kept candidates and
    /// for prunes without a dominating survivor (capacity prunes).
    pub dominated_by: Option<usize>,
}

/// Frontier provenance for one Phase-I memory architecture: every
/// candidate's verdict, in estimate-cloud order (dropped candidates
/// last). Captured only under [`ConexExplorer::with_explain`]; a pure
/// function of the deterministic exploration state except for the
/// origin tags, which describe where *this process* got each value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchProvenance {
    /// Phase-I memory-architecture index (exploration order).
    pub arch: usize,
    /// The memory architecture's name.
    pub mem: String,
    /// Candidates kept into the shortlist.
    pub kept: usize,
    /// Candidates pruned (including watchdog drops).
    pub pruned: usize,
    /// Per-candidate records.
    pub points: Vec<PointProvenance>,
}

/// The resumable working state of Phase I: everything accumulated after
/// each memory architecture completes.
///
/// [`ConexExplorer::explore_with_engine_resumable`] folds every
/// architecture's results into one of these and hands it to a callback at
/// each architecture boundary — the natural checkpoint granularity, since
/// an architecture's estimation is the unit of work lost on a crash. A
/// state persisted there and fed back in resumes the loop at
/// [`archs_done`](Phase1State::archs_done) and produces results
/// bit-identical to an uninterrupted run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Phase1State {
    /// Memory architectures fully processed so far.
    pub archs_done: usize,
    /// Every estimated design point, in exploration order.
    pub estimated: Vec<DesignPoint>,
    /// The locally selected (pruned) shortlist accumulated so far.
    pub shortlist: Vec<DesignPoint>,
    /// Frontier-evolution samples taken so far.
    pub frontier_evolution: Vec<FrontierSnapshot>,
    /// Frontier-provenance records accumulated so far (empty unless the
    /// explorer runs with [`ConexExplorer::with_explain`]).
    #[serde(default)]
    pub provenance: Vec<ArchProvenance>,
}

/// One Phase-I memory architecture's contribution to the exploration: its
/// estimate cloud and the locally selected shortlist, tagged with the
/// architecture's global index. This is the shard hand-off unit of a
/// multi-process (swarm) run — local selection is purely per-architecture,
/// so a worker can compute its slices in isolation and
/// [`merge_arch_slices`] reassembles the exact serial [`Phase1State`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchSlice {
    /// Global Phase-I architecture index (exploration order).
    pub arch: usize,
    /// The architecture's estimate cloud, in exploration order.
    pub estimated: Vec<DesignPoint>,
    /// The locally selected (pruned) shortlist of that cloud.
    pub shortlist: Vec<DesignPoint>,
}

/// Reassembles the serial [`Phase1State`] from per-architecture slices
/// (in any order): clouds and shortlists concatenate in global index
/// order, and the frontier-evolution snapshots are recomputed over the
/// growing merged cloud exactly as a single-process run samples them.
/// Pure — never touches the observability registries; a caller restoring
/// a merged run derives `conex.frontier_size_max` from the returned
/// snapshots' `frontier_size` maximum.
///
/// # Errors
///
/// Returns [`MceError::Checkpoint`] when the slices do not cover
/// `0..total_archs` exactly once (missing, duplicate or out-of-range
/// indices) — a partial merge would silently mis-rank every later point.
pub fn merge_arch_slices(
    slices: &[ArchSlice],
    total_archs: usize,
    sample_every: usize,
) -> Result<Phase1State, MceError> {
    let mut by_arch: Vec<Option<&ArchSlice>> = vec![None; total_archs];
    for s in slices {
        let slot = by_arch.get_mut(s.arch).ok_or_else(|| {
            MceError::checkpoint(format!(
                "architecture slice {} is out of range (the run has {total_archs})",
                s.arch
            ))
        })?;
        if slot.is_some() {
            return Err(MceError::checkpoint(format!(
                "duplicate architecture slice {}",
                s.arch
            )));
        }
        *slot = Some(s);
    }
    let mut state = Phase1State::default();
    for (k, slot) in by_arch.iter().enumerate() {
        let s = slot.ok_or_else(|| {
            MceError::checkpoint(format!("missing architecture slice {k} in the merge"))
        })?;
        state.shortlist.extend(s.shortlist.iter().cloned());
        state.estimated.extend(s.estimated.iter().cloned());
        if sample_every > 0 && ((k + 1).is_multiple_of(sample_every) || k + 1 == total_archs) {
            let metrics: Vec<Metrics> = state.estimated.iter().map(|p| p.metrics).collect();
            let axes = [Axis::Cost, Axis::Latency];
            let front = ParetoFront::of(&metrics, &axes);
            state.frontier_evolution.push(FrontierSnapshot {
                archs_explored: k + 1,
                estimated: state.estimated.len(),
                frontier_size: front.len(),
                hypervolume: hypervolume_proxy(&metrics, axes),
            });
        }
        state.archs_done = k + 1;
    }
    Ok(state)
}

/// A candidate whose simulation hit the per-candidate watchdog timeout
/// and was answered with a degraded value: a Phase-II point falls back to
/// its Phase-I estimate, a Phase-I candidate is dropped (no cheaper
/// estimator exists). See [`EvalEngine::refine_batch_bounded`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradedEval {
    /// `"estimate"` (Phase I) or `"refine"` (Phase II).
    pub phase: String,
    /// Phase-I memory-architecture index; `None` for Phase II.
    pub arch: Option<usize>,
    /// Candidate-slot index within the phase's batch (Phase I: the
    /// architecture's enumerated candidates; Phase II: the shortlist).
    pub index: usize,
    /// What went wrong (currently always `"timeout"`).
    pub reason: String,
}

impl DegradedEval {
    fn timeout(phase: &str, arch: Option<usize>, index: usize) -> Self {
        DegradedEval {
            phase: phase.to_owned(),
            arch,
            index,
            reason: "timeout".to_owned(),
        }
    }
}

/// The result of a ConEx exploration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConexResult {
    workload_name: String,
    estimated: Vec<DesignPoint>,
    simulated: Vec<DesignPoint>,
    frontier_evolution: Vec<FrontierSnapshot>,
    stop: Option<String>,
    degraded: Vec<DegradedEval>,
    #[serde(default)]
    provenance: Vec<ArchProvenance>,
    elapsed: Duration,
}

impl ConexResult {
    /// The workload explored.
    pub fn workload_name(&self) -> &str {
        &self.workload_name
    }

    /// Every Phase-I estimated candidate (the full exploration cloud of
    /// Figure 4).
    pub fn estimated(&self) -> &[DesignPoint] {
        &self.estimated
    }

    /// The Phase-II fully simulated points.
    pub fn simulated(&self) -> &[DesignPoint] {
        &self.simulated
    }

    /// Wall-clock time of the exploration (Table 2's "Time" row).
    pub fn elapsed(&self) -> Duration {
        self.elapsed
    }

    /// Phase-I frontier-evolution samples, in exploration order (empty
    /// when [`ConexConfig::frontier_sample_every`] is 0).
    pub fn frontier_evolution(&self) -> &[FrontierSnapshot] {
        &self.frontier_evolution
    }

    /// Why the run stopped before finishing (a [`StopReason`] label:
    /// `"max-evals"`, `"max-archs"`, `"deadline"` or `"interrupt"`), or
    /// `None` for a run that ran to completion.
    pub fn stop_reason(&self) -> Option<&str> {
        self.stop.as_deref()
    }

    /// Whether a bound cut the exploration short. A truncated result is
    /// still valid — it holds everything committed up to the last safe
    /// point (Phase-I architecture boundary or the whole of Phase II).
    pub fn is_truncated(&self) -> bool {
        self.stop.is_some()
    }

    /// Candidates answered with degraded values because their simulation
    /// hit the per-candidate watchdog timeout (empty without
    /// `--candidate-timeout`).
    pub fn degraded(&self) -> &[DegradedEval] {
        &self.degraded
    }

    /// Per-architecture frontier provenance: why each candidate was kept
    /// or pruned, with origin tags. Empty unless the exploration ran
    /// with [`ConexExplorer::with_explain`].
    pub fn provenance(&self) -> &[ArchProvenance] {
        &self.provenance
    }

    fn metrics(points: &[DesignPoint]) -> Vec<Metrics> {
        points.iter().map(|p| p.metrics).collect()
    }

    fn front(&self, axes: &[Axis]) -> Vec<&DesignPoint> {
        let m = Self::metrics(&self.simulated);
        ParetoFront::of(&m, axes)
            .indices()
            .iter()
            .map(|&i| &self.simulated[i])
            .collect()
    }

    /// The cost/performance pareto designs (the paper's Table 1 /
    /// Figure 6 selection), cheapest first.
    pub fn pareto_cost_latency(&self) -> Vec<&DesignPoint> {
        self.front(&[Axis::Cost, Axis::Latency])
    }

    /// The performance/power pareto designs (cost-constrained scenario).
    pub fn pareto_latency_energy(&self) -> Vec<&DesignPoint> {
        self.front(&[Axis::Latency, Axis::Energy])
    }

    /// The cost/power pareto designs (performance-constrained scenario).
    pub fn pareto_cost_energy(&self) -> Vec<&DesignPoint> {
        self.front(&[Axis::Cost, Axis::Energy])
    }

    /// The full 3-D pareto designs.
    pub fn pareto_3d(&self) -> Vec<&DesignPoint> {
        self.front(&Axis::ALL)
    }
}

/// The ConEx explorer.
#[derive(Debug, Clone)]
pub struct ConexExplorer {
    config: ConexConfig,
    library: ConnectivityLibrary,
    explain: bool,
}

impl ConexExplorer {
    /// Creates an explorer with the default AMBA-style library.
    pub fn new(config: ConexConfig) -> Self {
        Self::with_library(config, ConnectivityLibrary::amba())
    }

    /// Creates an explorer drawing from a custom connectivity library.
    pub fn with_library(config: ConexConfig, library: ConnectivityLibrary) -> Self {
        ConexExplorer {
            config,
            library,
            explain: false,
        }
    }

    /// Enables frontier-provenance capture: every exploration records,
    /// per Phase-I architecture, why each candidate was kept or pruned
    /// ([`ConexResult::provenance`]). Capture never changes what is
    /// explored — results are bit-identical with it on or off; it is a
    /// knob on the explorer (not [`ConexConfig`]) precisely so it stays
    /// out of checkpoint config digests.
    #[must_use]
    pub fn with_explain(mut self, explain: bool) -> Self {
        self.explain = explain;
        self
    }

    /// Whether frontier-provenance capture is enabled.
    pub fn explain(&self) -> bool {
        self.explain
    }

    /// The configuration.
    pub fn config(&self) -> &ConexConfig {
        &self.config
    }

    /// The connectivity library.
    pub fn library(&self) -> &ConnectivityLibrary {
        &self.library
    }

    /// The paper's `Procedure ConnectivityExploration`: estimates every
    /// feasible connectivity architecture for one memory architecture.
    ///
    /// Compiles a fresh evaluation engine (no cache) for the call; use
    /// [`ConexExplorer::connectivity_exploration_with`] to share one
    /// engine — and its compiled trace and memoization cache — across
    /// calls.
    ///
    /// Returns estimated design points, unsorted and unpruned.
    ///
    /// # Errors
    ///
    /// Returns [`MceError::WorkerPanic`] when an evaluation panics twice
    /// (parallel pass and serial retry).
    pub fn connectivity_exploration(
        &self,
        workload: &Workload,
        mem: &MemoryArchitecture,
    ) -> Result<Vec<DesignPoint>, MceError> {
        let engine = EvalEngine::new(workload, self.config.trace_len);
        self.connectivity_exploration_with(&engine, mem)
    }

    /// [`ConexExplorer::connectivity_exploration`] on a shared evaluation
    /// engine.
    ///
    /// The engine must be built for the explored workload with a compiled
    /// length of at least [`ConexConfig::trace_len`].
    ///
    /// # Errors
    ///
    /// Returns [`MceError::WorkerPanic`] when an evaluation panics twice
    /// (parallel pass and serial retry).
    pub fn connectivity_exploration_with(
        &self,
        engine: &EvalEngine,
        mem: &MemoryArchitecture,
    ) -> Result<Vec<DesignPoint>, MceError> {
        let batch = self.connectivity_exploration_bounded(engine, mem)?;
        if batch.status != BatchStatus::Complete {
            return Err(MceError::invalid_input(format!(
                "connectivity exploration truncated ({:?}) under active bounds — \
                 use `connectivity_exploration_bounded`",
                batch.status
            )));
        }
        Ok(batch.output.into_iter().flatten().collect())
    }

    /// [`ConexExplorer::connectivity_exploration_with`] under the
    /// engine's [`Bounds`](mce_budget::Bounds).
    ///
    /// The output is index-aligned with the architecture's enumerated
    /// candidates; `None` marks an infeasible pairing or a candidate
    /// dropped by the per-candidate watchdog (the latter are listed in
    /// [`BoundedBatch::degraded`]). When the logical budget or the cancel
    /// token cuts the batch short, the output is empty, the status says
    /// why, and no estimate was committed — though the architecture's
    /// enumeration counters (`conex.levels_*`,
    /// `conex.candidates_enumerated`) were already bumped; callers that
    /// need clean truncation roll the counters back (as
    /// [`ConexExplorer::explore_with_engine_resumable`] does).
    ///
    /// # Errors
    ///
    /// Returns [`MceError::WorkerPanic`] when an evaluation panics twice
    /// (parallel pass and serial retry).
    pub fn connectivity_exploration_bounded(
        &self,
        engine: &EvalEngine,
        mem: &MemoryArchitecture,
    ) -> Result<BoundedBatch<Option<DesignPoint>>, MceError> {
        let _span = obs::span("conex.connectivity_exploration");
        let workload = engine.workload();
        // `Brg::profile_blocks` replays the trace and builds the block
        // reference graph in one pass, so one span covers both paper steps.
        let brg = {
            let _s = obs::span("conex.profile");
            Brg::profile_blocks(workload, mem, engine.blocks(), self.config.trace_len)
        };
        let levels = {
            let _s = obs::span("conex.cluster");
            cluster_levels(&brg, self.config.cluster_order)
        };
        let mut candidates = Vec::new();
        {
            let _s = obs::span("conex.enumerate");
            for level in levels {
                // "if number of logical connections <= max cost constraint"
                if level.len() > self.config.max_logical_connections {
                    obs::counter_add("conex.levels_skipped", 1);
                    continue;
                }
                obs::counter_add("conex.levels_explored", 1);
                candidates.extend(enumerate_allocations_filtered(
                    &brg,
                    &level,
                    &self.library,
                    self.config.max_allocations_per_level,
                    self.config.bandwidth_headroom,
                ));
            }
        }
        obs::counter_add("conex.candidates_enumerated", candidates.len() as u64);
        obs::debug(|| {
            format!(
                "conex: memory arch `{}`: {} candidate allocations to estimate",
                mem.name(),
                candidates.len()
            )
        });
        let enumerated = candidates.len();
        let batch = {
            let _s = obs::span("conex.estimate");
            engine.estimate_batch_bounded(
                mem,
                candidates,
                self.config.trace_len,
                self.config.sampling,
                self.config.threads,
            )?
        };
        if batch.status != BatchStatus::Complete {
            return Ok(batch);
        }
        // Funnel reconciliation: estimated == enumerated − infeasible −
        // degraded (timed-out candidates are dropped, not estimated).
        let estimated = batch.output.iter().filter(|o| o.is_some()).count();
        obs::counter_add(
            "conex.candidates_infeasible",
            (enumerated - estimated - batch.degraded.len()) as u64,
        );
        obs::counter_add("conex.candidates_estimated", estimated as u64);
        if !batch.degraded.is_empty() {
            obs::counter_add("budget.degraded_evals", batch.degraded.len() as u64);
        }
        Ok(batch)
    }

    /// Phase-I local selection by index: the most promising points of one
    /// memory architecture's estimate cloud, per the configured strategy,
    /// also labelling each point with the local fronts it sits on (the
    /// provenance capture site). Returns the kept indices in selection
    /// order and, aligned with `points`, each point's front labels —
    /// empty for points on no front (and for every point under the Full
    /// strategy, which keeps everything).
    fn select_local_indices(&self, points: &[DesignPoint]) -> (Vec<usize>, Vec<Vec<&'static str>>) {
        let mut labels: Vec<Vec<&'static str>> = vec![Vec::new(); points.len()];
        if points.is_empty() {
            return (Vec::new(), labels);
        }
        if self.config.strategy == ExplorationStrategy::Full {
            return ((0..points.len()).collect(), labels);
        }
        let metrics: Vec<Metrics> = points.iter().map(|p| p.metrics).collect();
        // Union of the 2-D cost/latency and cost/energy fronts with the
        // full 3-D front: the local candidates for every global trade-off
        // space the designer may select in (Section 5's three scenarios).
        let cl = ParetoFront::of(&metrics, &[Axis::Cost, Axis::Latency]);
        let mut chosen: Vec<usize> = cl.indices().to_vec();
        for &i in cl.indices() {
            labels[i].push("cost-latency");
        }
        for (name, front) in [
            (
                "cost-energy",
                ParetoFront::of(&metrics, &[Axis::Cost, Axis::Energy]),
            ),
            ("pareto-3d", ParetoFront::of(&metrics, &Axis::ALL)),
        ] {
            for &i in front.indices() {
                labels[i].push(name);
                if !chosen.contains(&i) {
                    chosen.push(i);
                }
            }
        }
        // Cap, keeping the cheapest and the costliest extremes. The capped
        // set is the Pruned selection.
        chosen.sort_by_key(|&i| points[i].metrics.cost_gates);
        let mut kept = downsample(&chosen, self.config.local_keep);
        if self.config.strategy == ExplorationStrategy::Neighborhood {
            // Neighborhood = the Pruned selection plus every kept point's
            // cost-order neighbors in the estimate cloud — always a
            // superset of Pruned, so its coverage can only improve.
            let mut by_cost: Vec<usize> = (0..points.len()).collect();
            by_cost.sort_by_key(|&i| points[i].metrics.cost_gates);
            let rank_of: Vec<usize> = {
                let mut r = vec![0; points.len()];
                for (rank, &i) in by_cost.iter().enumerate() {
                    r[i] = rank;
                }
                r
            };
            let mut extra = Vec::new();
            for &i in &kept {
                let rank = rank_of[i];
                if rank > 0 {
                    extra.push(by_cost[rank - 1]);
                }
                if rank + 1 < by_cost.len() {
                    extra.push(by_cost[rank + 1]);
                }
            }
            for i in extra {
                if !kept.contains(&i) {
                    labels[i].push("neighbor");
                    kept.push(i);
                }
            }
        }
        // The union of the per-scenario fronts is this architecture's
        // local pareto shortlist; its size is the per-level front gauge.
        obs::gauge_max("conex.local_front_max", kept.len() as u64);
        (kept, labels)
    }

    /// The full two-phase `Algorithm ConEx`.
    ///
    /// Compiles a fresh evaluation engine (no cache) for the run; use
    /// [`ConexExplorer::explore_with_engine`] to reuse an engine's
    /// compiled trace and memoization cache across runs.
    ///
    /// # Errors
    ///
    /// Returns [`MceError::WorkerPanic`] when an evaluation panics twice
    /// (parallel pass and serial retry).
    pub fn explore(
        &self,
        workload: &Workload,
        mem_archs: Vec<MemoryArchitecture>,
    ) -> Result<ConexResult, MceError> {
        let engine = EvalEngine::new(workload, self.config.trace_len);
        self.explore_with_engine(&engine, mem_archs)
    }

    /// The full two-phase `Algorithm ConEx` on a shared evaluation engine.
    ///
    /// The engine must be built for the explored workload with a compiled
    /// length of at least [`ConexConfig::trace_len`].
    ///
    /// # Errors
    ///
    /// Returns [`MceError::WorkerPanic`] when an evaluation panics twice
    /// (parallel pass and serial retry).
    pub fn explore_with_engine(
        &self,
        engine: &EvalEngine,
        mem_archs: Vec<MemoryArchitecture>,
    ) -> Result<ConexResult, MceError> {
        self.explore_with_engine_resumable(engine, mem_archs, Phase1State::default(), &mut |_| {
            Ok(())
        })
    }

    /// One Phase-I step: explores `mem_archs[k]` and folds the results
    /// into `state`. The single code path for fresh runs, resumed runs
    /// and checkpoint replay, so all three are bit-identical.
    ///
    /// Returns `Some(reason)` — committing **nothing** (state, counters
    /// and gauges are exactly as before the call) — when a bound cut the
    /// architecture short; the architecture boundary is the pipeline's
    /// safe point, so a truncated architecture never half-lands.
    fn explore_arch(
        &self,
        engine: &EvalEngine,
        mem_archs: &[MemoryArchitecture],
        k: usize,
        state: &mut Phase1State,
        degraded: &mut Vec<DegradedEval>,
    ) -> Result<Option<StopReason>, MceError> {
        let bounds = engine.bounds();
        // Snapshot the observability state so a truncated architecture's
        // partial contributions (enumeration counters, gauges) can be
        // rolled back — the forced truncation checkpoint must describe
        // exactly `archs_done` architectures.
        let rollback = bounds
            .is_active()
            .then(|| (obs::counters_snapshot(), obs::gauges_snapshot()));
        let batch = self.connectivity_exploration_bounded(engine, &mem_archs[k])?;
        if batch.status != BatchStatus::Complete {
            if let Some((counters, gauges)) = rollback {
                restore_obs(&counters, &gauges);
            }
            return Ok(Some(stop_reason_of(batch.status, &bounds.token)));
        }
        degraded.extend(
            batch
                .degraded
                .iter()
                .map(|&i| DegradedEval::timeout("estimate", Some(k), i)),
        );
        // Flatten the batch into the estimate cloud, remembering each
        // cloud point's batch slot so origin tags can be attributed.
        let mut slot_of: Vec<usize> = Vec::new();
        let points: Vec<DesignPoint> = batch
            .output
            .into_iter()
            .enumerate()
            .filter_map(|(slot, p)| {
                p.inspect(|_| {
                    slot_of.push(slot);
                })
            })
            .collect();
        let (kept_idx, labels) = self.select_local_indices(&points);
        let selected: Vec<DesignPoint> = kept_idx.iter().map(|&i| points[i].clone()).collect();
        obs::counter_add(
            "conex.candidates_pruned",
            (points.len() - selected.len()) as u64,
        );
        if self.explain {
            state.provenance.push(arch_provenance(
                k,
                mem_archs[k].name(),
                &points,
                &kept_idx,
                &labels,
                &slot_of,
                &batch.cache_hits,
                &batch.degraded,
            ));
        }
        state.shortlist.extend(selected);
        state.estimated.extend(points);
        let sample_every = self.config.frontier_sample_every;
        if sample_every > 0 && ((k + 1).is_multiple_of(sample_every) || k + 1 == mem_archs.len()) {
            let metrics: Vec<Metrics> = state.estimated.iter().map(|p| p.metrics).collect();
            let axes = [Axis::Cost, Axis::Latency];
            let front = ParetoFront::of(&metrics, &axes);
            obs::gauge_max("conex.frontier_size_max", front.len() as u64);
            state.frontier_evolution.push(FrontierSnapshot {
                archs_explored: k + 1,
                estimated: state.estimated.len(),
                frontier_size: front.len(),
                hypervolume: hypervolume_proxy(&metrics, axes),
            });
        }
        state.archs_done = k + 1;
        Ok(None)
    }

    /// Reconstructs the Phase-I state of the first `upto` architectures
    /// by re-running them — the resume path's replay step.
    ///
    /// Driven against an engine whose cache was restored from a
    /// checkpoint, every evaluation is answered by a cache hit (evicted
    /// entries re-simulate, bit-identically), so this is cheap and the
    /// returned state equals what the original run had accumulated.
    /// Observability counters do pick up the replay's contributions; a
    /// resuming caller is expected to overwrite them afterwards with the
    /// checkpointed values (see
    /// [`counter_restore`](mce_obs::counter_restore)).
    ///
    /// # Errors
    ///
    /// Returns [`MceError::Checkpoint`] when `upto` exceeds
    /// `mem_archs.len()`, and propagates evaluation errors.
    pub fn phase1_partial(
        &self,
        engine: &EvalEngine,
        mem_archs: &[MemoryArchitecture],
        upto: usize,
    ) -> Result<Phase1State, MceError> {
        self.phase1_partial_with(engine, mem_archs, upto, &mut |_| Ok(()))
    }

    /// [`ConexExplorer::phase1_partial`] with an observer run on the
    /// accumulated state after each replayed architecture — the same
    /// boundary `explore_with_engine_resumable` hands to its checkpoint
    /// hook. A resuming swarm worker uses this to rebuild its
    /// per-architecture [`ArchSlice`]s for the already-checkpointed
    /// prefix; like the plain replay it never emits logical time-series
    /// marks. An error from the observer aborts the replay.
    ///
    /// # Errors
    ///
    /// Returns [`MceError::Checkpoint`] when `upto` exceeds
    /// `mem_archs.len()`, and propagates evaluation and observer errors.
    pub fn phase1_partial_with(
        &self,
        engine: &EvalEngine,
        mem_archs: &[MemoryArchitecture],
        upto: usize,
        after_arch: &mut dyn FnMut(&Phase1State) -> Result<(), MceError>,
    ) -> Result<Phase1State, MceError> {
        if upto > mem_archs.len() {
            return Err(MceError::checkpoint(format!(
                "checkpoint claims {upto} completed architectures but the run has {}",
                mem_archs.len()
            )));
        }
        let mut state = Phase1State::default();
        for k in 0..upto {
            let mut degraded = Vec::new();
            if let Some(reason) =
                self.explore_arch(engine, mem_archs, k, &mut state, &mut degraded)?
            {
                // A replay engine carries at most the shared logical
                // budget; running out here means the caller resumed with
                // a budget smaller than the checkpoint already consumed.
                return Err(MceError::checkpoint(format!(
                    "bounds tripped ({reason}) while replaying {upto} checkpointed \
                     architectures — raise the budget or delete the checkpoint"
                )));
            }
            after_arch(&state)?;
        }
        Ok(state)
    }

    /// [`ConexExplorer::explore_with_engine`], resumable at memory-
    /// architecture granularity.
    ///
    /// Phase I starts from `state` — [`Phase1State::default`] for a fresh
    /// run, or a state previously observed by `after_arch` to resume one —
    /// and skips the first [`archs_done`](Phase1State::archs_done)
    /// architectures. `after_arch` runs on the updated state after each
    /// architecture completes (the checkpoint hook); an error from it
    /// aborts the run.
    ///
    /// A resumed run is bit-identical to an uninterrupted one: the skipped
    /// architectures' points come from `state` in their original order,
    /// and per-run totals are never double-counted: Phase-II counters are
    /// only added after the loop, and `conex.shortlist` is *set* from the
    /// accumulated state rather than added.
    ///
    /// # Errors
    ///
    /// Returns [`MceError::Checkpoint`] when `state` claims more completed
    /// architectures than `mem_archs` holds, [`MceError::WorkerPanic`]
    /// when an evaluation panics twice, or any error `after_arch` returns.
    pub fn explore_with_engine_resumable(
        &self,
        engine: &EvalEngine,
        mem_archs: Vec<MemoryArchitecture>,
        mut state: Phase1State,
        after_arch: &mut dyn FnMut(&Phase1State) -> Result<(), MceError>,
    ) -> Result<ConexResult, MceError> {
        if state.archs_done > mem_archs.len() {
            return Err(MceError::checkpoint(format!(
                "phase-I state claims {} completed architectures but the run has {}",
                state.archs_done,
                mem_archs.len()
            )));
        }
        let workload = engine.workload();
        let start = Instant::now();
        let _run = obs::span("conex.explore");
        obs::info(|| {
            format!(
                "conex: exploring `{}` across {} memory architectures ({} strategy)",
                workload.name(),
                mem_archs.len(),
                self.config.strategy
            )
        });
        // Phase I. Bounds are checked at architecture boundaries — the
        // safe points: a truncated architecture commits nothing, so the
        // accumulated state always describes exactly `archs_done`
        // architectures and can be checkpointed or reported as-is.
        let bounds = engine.bounds();
        let mut stop: Option<StopReason> = None;
        let mut degraded: Vec<DegradedEval> = Vec::new();
        {
            let _phase1 = obs::span("conex.phase1");
            for k in state.archs_done..mem_archs.len() {
                // The deterministic bound wins when both trip at the same
                // boundary, keeping logical-budget runs reproducible.
                if bounds.max_archs.is_some_and(|max| k >= max) {
                    stop = Some(StopReason::MaxArchs);
                    break;
                }
                if bounds.token.is_cancelled() {
                    stop = Some(stop_reason_of(BatchStatus::Cancelled, &bounds.token));
                    break;
                }
                match self.explore_arch(engine, &mem_archs, k, &mut state, &mut degraded)? {
                    None => {
                        // The per-architecture boundary is the pipeline's
                        // deterministic sampling point: counters committed,
                        // workers joined, nothing half-landed. Logical
                        // time-series marks fire here (and only here), so
                        // the logical channel is byte-identical across
                        // thread counts. Checkpoint replay goes through
                        // `phase1_partial`, which never marks — a resumed
                        // run's series continues from the resume point.
                        obs::timeseries::logical_mark(state.archs_done as u64);
                        after_arch(&state)?
                    }
                    Some(reason) => {
                        stop = Some(reason);
                        break;
                    }
                }
            }
            // A *set*, not an add: the shortlist total is derived from the
            // accumulated state, and a truncated run's checkpoint persists
            // it — an add would re-count the checkpointed portion when the
            // resumed run sets its own total.
            obs::counter_restore("conex.shortlist", state.shortlist.len() as u64);
            // Workers have joined; totals are deterministic here.
            obs::snapshot_counters();
        }
        let Phase1State {
            archs_done,
            estimated: all_estimated,
            shortlist: combined,
            frontier_evolution,
            provenance,
        } = state;
        obs::info(|| {
            format!(
                "conex: phase I kept {} of {} estimated candidates for full simulation",
                combined.len(),
                all_estimated.len()
            )
        });
        // Phase II: full simulation of the combined shortlist — skipped
        // entirely when Phase I was cut short (the shortlist would be
        // partial, so refining it would waste the remaining budget on
        // points a resumed run re-refines anyway).
        let simulated: Vec<DesignPoint> = if stop.is_some() {
            Vec::new()
        } else {
            let _phase2 = obs::span("conex.phase2");
            // Same discipline as a Phase-I architecture: a cancelled
            // refine batch commits nothing, so its partial simulations'
            // counter contributions (`sim.*`) are rolled back before the
            // truncation checkpoint snapshots them.
            let rollback = bounds
                .is_active()
                .then(|| (obs::counters_snapshot(), obs::gauges_snapshot()));
            let batch = engine.refine_batch_bounded(
                &combined,
                self.config.trace_len,
                self.config.threads,
            )?;
            match batch.status {
                BatchStatus::Complete => {
                    if !batch.degraded.is_empty() {
                        obs::counter_add("budget.degraded_evals", batch.degraded.len() as u64);
                        degraded.extend(
                            batch
                                .degraded
                                .iter()
                                .map(|&i| DegradedEval::timeout("refine", None, i)),
                        );
                    }
                    batch.output
                }
                status => {
                    if let Some((counters, gauges)) = rollback {
                        restore_obs(&counters, &gauges);
                    }
                    stop = Some(stop_reason_of(status, &bounds.token));
                    Vec::new()
                }
            }
        };
        if stop.is_some_and(|r| !r.is_deterministic()) {
            obs::counter_add("budget.cancelled", 1);
        }
        // Phase II simulates exactly the shortlist: simulated == shortlist.
        obs::counter_add("conex.simulated", simulated.len() as u64);
        obs::snapshot_counters();
        if let Some(reason) = stop {
            obs::info(|| {
                format!(
                    "conex: stopped early ({reason}) after {archs_done} of {} architectures",
                    mem_archs.len()
                )
            });
        }
        Ok(ConexResult {
            workload_name: workload.name().to_owned(),
            estimated: all_estimated,
            simulated,
            frontier_evolution,
            stop: stop.map(|r| r.as_str().to_owned()),
            degraded,
            provenance,
            elapsed: start.elapsed(),
        })
    }
}

/// Builds one architecture's [`ArchProvenance`] from the selection
/// outcome: verdicts, front labels, origin tags and — for pruned points —
/// the first kept point that dominates them.
#[allow(clippy::too_many_arguments)]
fn arch_provenance(
    arch: usize,
    mem: &str,
    points: &[DesignPoint],
    kept_idx: &[usize],
    labels: &[Vec<&'static str>],
    slot_of: &[usize],
    cache_hits: &[usize],
    dropped_slots: &[usize],
) -> ArchProvenance {
    let mut records = Vec::with_capacity(points.len() + dropped_slots.len());
    for (i, p) in points.iter().enumerate() {
        let kept = kept_idx.contains(&i);
        // `cache_hits` is in ascending probe order.
        let origin = if cache_hits.binary_search(&slot_of[i]).is_ok() {
            "cache-hit"
        } else {
            "evaluated"
        };
        let dominated_by = if kept {
            None
        } else {
            kept_idx
                .iter()
                .find(|&&kk| dominates(&points[kk].metrics, &p.metrics))
                .copied()
        };
        records.push(PointProvenance {
            index: i,
            describe: p.describe(),
            origin: origin.to_owned(),
            kept,
            fronts: labels[i].iter().map(|s| (*s).to_owned()).collect(),
            dominated_by,
        });
    }
    for &slot in dropped_slots {
        records.push(PointProvenance {
            index: slot,
            describe: String::new(),
            origin: "estimate-degraded".to_owned(),
            kept: false,
            fronts: Vec::new(),
            dominated_by: None,
        });
    }
    ArchProvenance {
        arch,
        mem: mem.to_owned(),
        kept: kept_idx.len(),
        pruned: records.len() - kept_idx.len(),
        points: records,
    }
}

/// Weak pareto dominance over all three metric axes: `a` is nowhere
/// worse than `b` and strictly better somewhere.
fn dominates(a: &Metrics, b: &Metrics) -> bool {
    let no_worse = a.cost_gates <= b.cost_gates
        && a.latency_cycles <= b.latency_cycles
        && a.energy_nj <= b.energy_nj;
    let better = a.cost_gates < b.cost_gates
        || a.latency_cycles < b.latency_cycles
        || a.energy_nj < b.energy_nj;
    no_worse && better
}

/// Maps a truncated batch status to the stop reason reported to the user:
/// budget exhaustion is `max-evals`; a tripped token reports what tripped
/// it (deadline or SIGINT).
fn stop_reason_of(status: BatchStatus, token: &CancelToken) -> StopReason {
    match status {
        BatchStatus::BudgetExhausted => StopReason::MaxEvals,
        BatchStatus::Cancelled => token
            .reason()
            .map(StopReason::from)
            .unwrap_or(StopReason::Interrupt),
        BatchStatus::Complete => unreachable!("a complete batch has no stop reason"),
    }
}

/// Rolls the observability counters and gauges back to a snapshot taken
/// before a truncated architecture: keys that changed are restored, keys
/// created after the snapshot drop back to zero.
fn restore_obs(counters: &[(&'static str, u64)], gauges: &[(&'static str, u64)]) {
    for (name, _) in obs::counters_snapshot() {
        let old = counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |&(_, v)| v);
        obs::counter_restore(name, old);
    }
    for (name, _) in obs::gauges_snapshot() {
        let old = gauges
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |&(_, v)| v);
        obs::gauge_restore(name, old);
    }
}

/// Keeps at most `max` items, always retaining the first and last.
fn downsample(indices: &[usize], max: usize) -> Vec<usize> {
    if indices.len() <= max || max == 0 {
        return indices.to_vec();
    }
    if max == 1 {
        return vec![indices[0]];
    }
    let mut out: Vec<usize> = (0..max)
        .map(|k| indices[k * (indices.len() - 1) / (max - 1)])
        .collect();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mce_appmodel::benchmarks;
    use mce_memlib::CacheConfig;

    fn one_arch(w: &Workload) -> Vec<MemoryArchitecture> {
        vec![MemoryArchitecture::cache_only(w, CacheConfig::kilobytes(4))]
    }

    #[test]
    fn exploration_produces_multiple_candidates() {
        let w = benchmarks::vocoder();
        let explorer = ConexExplorer::new(ConexConfig::preset(Preset::Fast));
        let mem = MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(4));
        let points = explorer.connectivity_exploration(&w, &mem).unwrap();
        assert!(points.len() >= 5, "{} candidates", points.len());
        assert!(points.iter().all(|p| p.estimated));
    }

    #[test]
    fn connectivity_choices_spread_cost_and_latency() {
        let w = benchmarks::compress();
        let explorer = ConexExplorer::new(ConexConfig::preset(Preset::Fast));
        let mem = MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(8));
        let points = explorer.connectivity_exploration(&w, &mem).unwrap();
        let costs: Vec<u64> = points.iter().map(|p| p.metrics.cost_gates).collect();
        let lats: Vec<f64> = points.iter().map(|p| p.metrics.latency_cycles).collect();
        assert!(costs.iter().max() > costs.iter().min());
        let max_l = lats.iter().cloned().fold(f64::MIN, f64::max);
        let min_l = lats.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max_l > 1.2 * min_l, "latency spread {min_l}..{max_l}");
    }

    #[test]
    fn two_phase_result_is_simulated() {
        let w = benchmarks::vocoder();
        let result = ConexExplorer::new(ConexConfig::preset(Preset::Fast))
            .explore(&w, one_arch(&w))
            .unwrap();
        assert!(!result.simulated().is_empty());
        assert!(result.simulated().iter().all(|p| !p.estimated));
        assert!(result.estimated().len() >= result.simulated().len());
    }

    #[test]
    fn pruned_simulates_fewer_than_full() {
        let w = benchmarks::vocoder();
        let pruned = ConexExplorer::new(ConexConfig::preset(Preset::Fast))
            .explore(&w, one_arch(&w))
            .unwrap();
        let full = ConexExplorer::new(
            ConexConfig::preset(Preset::Fast).with_strategy(ExplorationStrategy::Full),
        )
        .explore(&w, one_arch(&w))
        .unwrap();
        assert!(
            pruned.simulated().len() < full.simulated().len(),
            "pruned {} vs full {}",
            pruned.simulated().len(),
            full.simulated().len()
        );
        assert_eq!(full.simulated().len(), full.estimated().len());
    }

    #[test]
    fn neighborhood_between_pruned_and_full() {
        let w = benchmarks::vocoder();
        let p = ConexExplorer::new(ConexConfig::preset(Preset::Fast))
            .explore(&w, one_arch(&w))
            .unwrap();
        let n = ConexExplorer::new(
            ConexConfig::preset(Preset::Fast).with_strategy(ExplorationStrategy::Neighborhood),
        )
        .explore(&w, one_arch(&w))
        .unwrap();
        let f = ConexExplorer::new(
            ConexConfig::preset(Preset::Fast).with_strategy(ExplorationStrategy::Full),
        )
        .explore(&w, one_arch(&w))
        .unwrap();
        assert!(p.simulated().len() <= n.simulated().len());
        assert!(n.simulated().len() <= f.simulated().len());
    }

    #[test]
    fn pareto_front_is_nondominated() {
        let w = benchmarks::vocoder();
        let result = ConexExplorer::new(ConexConfig::preset(Preset::Fast))
            .explore(&w, one_arch(&w))
            .unwrap();
        let front = result.pareto_cost_latency();
        for a in &front {
            for b in &front {
                let dominates = a.metrics.cost_gates < b.metrics.cost_gates
                    && a.metrics.latency_cycles < b.metrics.latency_cycles;
                assert!(!dominates, "{} dominates {}", a.describe(), b.describe());
            }
        }
    }

    #[test]
    fn max_logical_connections_limits_levels() {
        // A multi-module architecture has >2 channels, so constraining the
        // logical-connection count skips the finer clustering levels.
        let w = benchmarks::li();
        let mem = MemoryArchitecture::builder("dma")
            .module(
                "L1",
                mce_memlib::MemModuleKind::Cache(CacheConfig::kilobytes(4)),
            )
            .module(
                "dma",
                mce_memlib::MemModuleKind::SelfIndirectDma {
                    depth: 16,
                    element_bytes: 8,
                },
            )
            .map(mce_appmodel::DsId::new(0), 1)
            .map_rest_to(0)
            .build(&w)
            .unwrap();
        let mut cfg = ConexConfig::preset(Preset::Fast);
        cfg.max_logical_connections = 2; // only the fully merged level
        let limited = ConexExplorer::new(cfg)
            .connectivity_exploration(&w, &mem)
            .unwrap();
        let unlimited = ConexExplorer::new(ConexConfig::preset(Preset::Fast))
            .connectivity_exploration(&w, &mem)
            .unwrap();
        assert!(
            limited.len() < unlimited.len(),
            "{} vs {}",
            limited.len(),
            unlimited.len()
        );
    }

    #[test]
    fn downsample_dedups_and_keeps_ends() {
        assert_eq!(downsample(&[1, 2, 3, 4, 5], 3), vec![1, 3, 5]);
        assert_eq!(downsample(&[1, 2], 5), vec![1, 2]);
        assert_eq!(downsample(&[1, 2, 3], 1), vec![1]);
    }

    #[test]
    fn elapsed_is_recorded() {
        let w = benchmarks::vocoder();
        let result = ConexExplorer::new(ConexConfig::preset(Preset::Fast))
            .explore(&w, one_arch(&w))
            .unwrap();
        assert!(result.elapsed() > Duration::ZERO);
    }

    #[test]
    fn frontier_evolution_is_sampled_and_deterministic() {
        let w = benchmarks::vocoder();
        let archs = vec![
            MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(4)),
            MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(8)),
        ];
        let explorer = ConexExplorer::new(ConexConfig::preset(Preset::Fast));
        let result = explorer.explore(&w, archs.clone()).unwrap();
        let evo = result.frontier_evolution();
        assert_eq!(evo.len(), 2, "one snapshot per architecture at period 1");
        assert_eq!(evo[0].archs_explored, 1);
        assert_eq!(evo[1].archs_explored, 2);
        assert!(evo[1].estimated >= evo[0].estimated);
        assert_eq!(evo[1].estimated, result.estimated().len());
        for s in evo {
            assert!(s.frontier_size >= 1);
            assert!(s.hypervolume > 0.0 && s.hypervolume < 1.0, "{s:?}");
        }
        // Snapshots are a pure function of the estimate cloud.
        let again = explorer.explore(&w, archs).unwrap();
        assert_eq!(evo, again.frontier_evolution());

        let mut off = ConexConfig::preset(Preset::Fast);
        off.frontier_sample_every = 0;
        let none = ConexExplorer::new(off).explore(&w, one_arch(&w)).unwrap();
        assert!(none.frontier_evolution().is_empty());
    }

    #[test]
    fn resumable_run_matches_uninterrupted_run() {
        let w = benchmarks::vocoder();
        let archs = vec![
            MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(4)),
            MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(8)),
        ];
        let explorer = ConexExplorer::new(ConexConfig::preset(Preset::Fast));
        let engine = EvalEngine::new(&w, explorer.config().trace_len);
        let clean = explorer
            .explore_with_engine(&engine, archs.clone())
            .unwrap();
        // Capture the state after the first architecture, then restart the
        // run from that state, as a resume after a crash would.
        let mut saved: Option<Phase1State> = None;
        explorer
            .explore_with_engine_resumable(
                &engine,
                archs.clone(),
                Phase1State::default(),
                &mut |s| {
                    if s.archs_done == 1 {
                        saved = Some(s.clone());
                    }
                    Ok(())
                },
            )
            .unwrap();
        let saved = saved.unwrap();
        // Replay reconstructs the same state from nothing but the count.
        let replayed = explorer.phase1_partial(&engine, &archs, 1).unwrap();
        assert_eq!(replayed, saved);
        let resumed = explorer
            .explore_with_engine_resumable(&engine, archs, saved, &mut |_| Ok(()))
            .unwrap();
        assert_eq!(clean.estimated(), resumed.estimated());
        assert_eq!(clean.simulated(), resumed.simulated());
        assert_eq!(clean.frontier_evolution(), resumed.frontier_evolution());
    }

    #[test]
    fn explain_records_provenance_without_changing_results() {
        let w = benchmarks::vocoder();
        let archs = vec![
            MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(4)),
            MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(8)),
        ];
        let plain = ConexExplorer::new(ConexConfig::preset(Preset::Fast))
            .explore(&w, archs.clone())
            .unwrap();
        assert!(plain.provenance().is_empty());
        let explained = ConexExplorer::new(ConexConfig::preset(Preset::Fast))
            .with_explain(true)
            .explore(&w, archs)
            .unwrap();
        // Capture never changes what is explored.
        assert_eq!(plain.estimated(), explained.estimated());
        assert_eq!(plain.simulated(), explained.simulated());
        assert_eq!(plain.frontier_evolution(), explained.frontier_evolution());
        // One record per architecture, reconciling with the funnel.
        let prov = explained.provenance();
        assert_eq!(prov.len(), 2);
        // Each architecture's cloud is a contiguous slice of estimated().
        let mut base = 0;
        for (k, arch) in prov.iter().enumerate() {
            assert_eq!(arch.arch, k);
            assert!(!arch.mem.is_empty());
            assert_eq!(arch.kept + arch.pruned, arch.points.len());
            assert!(arch.kept >= 1, "every cloud has a frontier");
            let cloud = |i: usize| &explained.estimated()[base + i];
            for p in &arch.points {
                assert!(
                    matches!(p.origin.as_str(), "evaluated" | "cache-hit"),
                    "{}",
                    p.origin
                );
                assert_eq!(p.describe, cloud(p.index).describe());
                if p.kept {
                    assert!(p.dominated_by.is_none());
                    assert!(!p.fronts.is_empty(), "kept points sit on a front");
                } else if let Some(by) = p.dominated_by {
                    assert!(arch.points[by].kept, "dominators are kept points");
                    assert!(dominates(&cloud(by).metrics, &cloud(p.index).metrics));
                }
            }
            base += arch.points.len();
        }
        // At least one point was pruned by domination in a Fast run.
        let total_pruned: usize = prov.iter().map(|a| a.pruned).sum();
        assert!(total_pruned >= 1);
    }

    #[test]
    fn merged_slices_reproduce_the_serial_state() {
        let w = benchmarks::vocoder();
        let archs = vec![
            MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(4)),
            MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(8)),
            MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(16)),
        ];
        let explorer = ConexExplorer::new(ConexConfig::preset(Preset::Fast));
        let engine = EvalEngine::new(&w, explorer.config().trace_len);
        // The serial reference state, and per-architecture slices carved
        // from the boundary deltas — as a worker covering arch k would.
        let mut slices: Vec<ArchSlice> = Vec::new();
        let mut prev = (0usize, 0usize);
        let mut serial: Option<Phase1State> = None;
        explorer
            .explore_with_engine_resumable(
                &engine,
                archs.clone(),
                Phase1State::default(),
                &mut |s| {
                    slices.push(ArchSlice {
                        arch: s.archs_done - 1,
                        estimated: s.estimated[prev.0..].to_vec(),
                        shortlist: s.shortlist[prev.1..].to_vec(),
                    });
                    prev = (s.estimated.len(), s.shortlist.len());
                    if s.archs_done == archs.len() {
                        serial = Some(s.clone());
                    }
                    Ok(())
                },
            )
            .unwrap();
        let serial = serial.unwrap();
        // Merge in shuffled order: the global order is restored by index.
        slices.rotate_left(1);
        let sample_every = explorer.config().frontier_sample_every;
        let merged = merge_arch_slices(&slices, archs.len(), sample_every).unwrap();
        assert_eq!(merged, serial);
        // The frontier gauge is derivable from the merged snapshots.
        assert!(merged
            .frontier_evolution
            .iter()
            .map(|s| s.frontier_size)
            .max()
            .is_some());
        // Coverage violations are rejected, never silently merged.
        let short = &slices[..slices.len() - 1];
        assert!(merge_arch_slices(short, archs.len(), sample_every).is_err());
        let mut dup = slices.clone();
        dup[0].arch = dup[1].arch;
        assert!(merge_arch_slices(&dup, archs.len(), sample_every).is_err());
        let mut oob = slices.clone();
        oob[0].arch = archs.len();
        assert!(merge_arch_slices(&oob, archs.len(), sample_every).is_err());
    }

    #[test]
    fn phase1_partial_with_observes_each_boundary() {
        let w = benchmarks::vocoder();
        let archs = vec![
            MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(4)),
            MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(8)),
        ];
        let explorer = ConexExplorer::new(ConexConfig::preset(Preset::Fast));
        let engine = EvalEngine::new(&w, explorer.config().trace_len);
        let mut seen = Vec::new();
        let state = explorer
            .phase1_partial_with(&engine, &archs, 2, &mut |s| {
                seen.push(s.archs_done);
                Ok(())
            })
            .unwrap();
        assert_eq!(seen, vec![1, 2]);
        assert_eq!(state, explorer.phase1_partial(&engine, &archs, 2).unwrap());
    }

    #[test]
    fn phase1_partial_rejects_stale_counts() {
        let w = benchmarks::vocoder();
        let explorer = ConexExplorer::new(ConexConfig::preset(Preset::Fast));
        let engine = EvalEngine::new(&w, explorer.config().trace_len);
        let err = explorer
            .phase1_partial(&engine, &one_arch(&w), 2)
            .unwrap_err();
        assert!(matches!(err, MceError::Checkpoint { .. }), "{err}");
    }

    #[test]
    fn stale_phase1_state_is_a_checkpoint_error() {
        let w = benchmarks::vocoder();
        let explorer = ConexExplorer::new(ConexConfig::preset(Preset::Fast));
        let engine = EvalEngine::new(&w, explorer.config().trace_len);
        let state = Phase1State {
            archs_done: 3,
            ..Phase1State::default()
        };
        let err = explorer
            .explore_with_engine_resumable(&engine, one_arch(&w), state, &mut |_| Ok(()))
            .unwrap_err();
        assert!(matches!(err, MceError::Checkpoint { .. }), "{err}");
    }
}
