//! Minimal deterministic parallel map over std scoped threads.
//!
//! The exploration estimates thousands of independent candidates; this
//! helper fans them out across threads while preserving input order, so
//! parallel and serial runs produce identical results. Workers pull items
//! from a shared atomic cursor, which keeps them busy even when per-item
//! cost varies.
//!
//! ## Panic isolation
//!
//! A panicking worker closure does not poison the region: every item runs
//! under `catch_unwind`, a worker that catches a panic stops claiming
//! items (its remaining share drains to the surviving workers), and after
//! the scope joins, every unfilled slot — the panicked items plus anything
//! left unclaimed when workers died — runs serially, still under
//! `catch_unwind`. Every item gets up to two attempts: a slot that
//! panicked in the parallel pass is retried once, and an unclaimed slot
//! whose first serial attempt panics is attempted once more. Only an item
//! that fails twice surfaces, as
//! [`MceError::WorkerPanic`] from [`try_par_map_named`]. Caught panics are
//! tallied on the `par.panics` counter and a degraded parallel region
//! bumps `par.degraded_regions`; clean regions touch neither, so
//! fault-free runs report identical counters with or without this layer.

use mce_error::MceError;
use mce_obs as obs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Maps `f` over `items` using up to `threads` OS threads (0 = one per
/// available core), returning outputs in input order.
///
/// The output equals the serial `items.iter().map(f).collect()`; only the
/// wall-clock time differs.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_named("par_map", items, threads, f)
}

/// [`try_par_map_named`] for callers that treat a twice-failed item as
/// fatal: panics with the [`MceError::WorkerPanic`] message instead of
/// returning it.
pub fn par_map_named<T, R, F>(name: &'static str, items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    match try_par_map_named(name, items, threads, f) {
        Ok(out) => out,
        Err(e) => panic!("{e}"),
    }
}

/// Per-worker execution record, gathered while the scope runs and emitted
/// as worker-lane events only after all workers have joined, so lane
/// events always appear in worker order.
struct LaneStats {
    start_us: u64,
    end_us: u64,
    busy_us: u64,
    items: u64,
}

/// Renders a panic payload for diagnostics (payloads are `&str` or
/// `String` in practice; anything else gets a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

/// [`par_map`] with a region name for observability and panic isolation:
/// when a `mce-obs` sink is installed, the region emits rate-limited
/// progress ticks and one worker-lane span per thread (lanes are 1-based;
/// the serial fallback emits progress only). When tracing is disabled the
/// extra cost is one relaxed atomic load up front.
///
/// Worker panics are caught per item; see the [module docs](self) for the
/// retry and degradation semantics.
///
/// # Errors
///
/// Returns [`MceError::WorkerPanic`] when an item's closure panics in the
/// parallel pass *and* in its serial retry.
pub fn try_par_map_named<T, R, F>(
    name: &'static str,
    items: &[T],
    threads: usize,
    f: F,
) -> Result<Vec<R>, MceError>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = effective_threads(threads, items.len());
    let tracing = obs::tracing_enabled();
    let total = items.len() as u64;
    // ~50 ticks per region regardless of size keeps progress readable and
    // the event stream small.
    let step = (items.len() / 50).max(1) as u64;
    if threads <= 1 || items.len() <= 1 {
        let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        let mut panics = 0u64;
        let mut first_panic: Option<String> = None;
        let mut failed_once: Vec<usize> = Vec::new();
        for (i, item) in items.iter().enumerate() {
            match catch_unwind(AssertUnwindSafe(|| f(item))) {
                Ok(r) => slots[i] = Some(r),
                Err(p) => {
                    panics += 1;
                    failed_once.push(i);
                    first_panic.get_or_insert_with(|| panic_message(p.as_ref()));
                }
            }
            if tracing {
                let done = i as u64 + 1;
                if done.is_multiple_of(step) || done == total {
                    obs::progress(name, done, total);
                }
            }
        }
        return finalize(
            name,
            items,
            slots,
            &f,
            panics,
            first_panic,
            false,
            &failed_once,
        );
    }
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    let mut lanes: Vec<Option<LaneStats>> = (0..threads).map(|_| None).collect();
    let failures: Mutex<Vec<(usize, String)>> = Mutex::new(Vec::new());
    {
        // One mutex per output slot over disjoint mutable borrows: the
        // atomic cursor hands each index to exactly one worker, so every
        // lock is uncontended — it only exists to satisfy the borrow
        // checker without `unsafe` (which this crate forbids).
        let cells: Vec<Mutex<&mut Option<R>>> = slots.iter_mut().map(Mutex::new).collect();
        let lane_cells: Vec<Mutex<&mut Option<LaneStats>>> =
            lanes.iter_mut().map(Mutex::new).collect();
        let next = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for w in 0..threads {
                let f = &f;
                let next = &next;
                let done = &done;
                let cells = &cells;
                let lane_cells = &lane_cells;
                let failures = &failures;
                scope.spawn(move || {
                    let start_us = if tracing { obs::now_us() } else { 0 };
                    let mut busy_us = 0u64;
                    let mut n_items = 0u64;
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        let t0 = tracing.then(Instant::now);
                        let result = catch_unwind(AssertUnwindSafe(|| f(&items[i])));
                        if let Some(t0) = t0 {
                            busy_us += t0.elapsed().as_micros() as u64;
                        }
                        match result {
                            Ok(r) => {
                                **cells[i].lock().expect("slot mutex never poisoned") = Some(r);
                            }
                            Err(p) => {
                                failures
                                    .lock()
                                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                                    .push((i, panic_message(p.as_ref())));
                                // This worker dies; its unclaimed share
                                // drains to the survivors (or to the
                                // serial retry pass when none survive).
                                break;
                            }
                        }
                        n_items += 1;
                        if tracing {
                            let d = done.fetch_add(1, Ordering::Relaxed) as u64 + 1;
                            if d.is_multiple_of(step) || d == total {
                                obs::progress(name, d, total);
                            }
                        }
                    }
                    if tracing {
                        let end_us = obs::now_us();
                        **lane_cells[w].lock().expect("lane mutex never poisoned") =
                            Some(LaneStats {
                                start_us,
                                end_us,
                                busy_us,
                                items: n_items,
                            });
                    }
                });
            }
        });
    }
    if tracing {
        for (w, lane) in lanes.iter().enumerate() {
            if let Some(stats) = lane {
                let dur = stats.end_us.saturating_sub(stats.start_us);
                obs::worker_span(
                    name,
                    (w + 1) as u32,
                    stats.start_us,
                    dur,
                    stats.busy_us,
                    stats.items,
                );
                // Per-worker occupancy distributions: how long each lane
                // ran and how much of that was inside the mapped closure.
                obs::histogram_record("par.worker_span_us", dur);
                obs::histogram_record("par.worker_busy_us", stats.busy_us);
                // Occupancy ratio (busy/span, percent) feeds the live
                // wall-channel series behind `mce top`'s worker view.
                if let Some(pct) = stats.busy_us.saturating_mul(100).checked_div(dur) {
                    obs::histogram_record("par.worker_occupancy_pct", pct.min(100));
                }
            }
        }
    }
    let mut caught = failures
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    caught.sort_unstable_by_key(|(i, _)| *i);
    let panics = caught.len() as u64;
    let first_panic = caught.first().map(|(_, msg)| msg.clone());
    let failed_once: Vec<usize> = caught.into_iter().map(|(i, _)| i).collect();
    finalize(
        name,
        items,
        slots,
        &f,
        panics,
        first_panic,
        true,
        &failed_once,
    )
}

/// The post-join recovery pass: runs every unfilled slot serially under
/// `catch_unwind`, giving each item up to two attempts total (slots in
/// `failed_once` — sorted — already spent one in the first pass), tallies
/// the panic counters, and either unwraps the completed slots or reports
/// the twice-failed items.
#[allow(clippy::too_many_arguments)]
fn finalize<T, R, F>(
    name: &'static str,
    items: &[T],
    mut slots: Vec<Option<R>>,
    f: &F,
    mut panics: u64,
    mut first_panic: Option<String>,
    parallel: bool,
    failed_once: &[usize],
) -> Result<Vec<R>, MceError>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let unfilled: Vec<usize> = slots
        .iter()
        .enumerate()
        .filter_map(|(i, s)| s.is_none().then_some(i))
        .collect();
    if panics == 0 && unfilled.is_empty() {
        // The clean path: no counters, no retry — fault-free runs are
        // byte-identical to runs without this layer.
        return Ok(slots
            .into_iter()
            .map(|s| s.expect("every slot written exactly once"))
            .collect());
    }
    if parallel {
        obs::counter_add("par.degraded_regions", 1);
    }
    obs::info(|| {
        format!(
            "par: region `{name}`: {panics} worker panic(s); \
             retrying {} item(s) serially",
            unfilled.len()
        )
    });
    let mut failed_twice = 0usize;
    for i in unfilled {
        let attempt = || catch_unwind(AssertUnwindSafe(|| f(&items[i])));
        match attempt() {
            Ok(r) => slots[i] = Some(r),
            Err(p) => {
                panics += 1;
                first_panic.get_or_insert_with(|| panic_message(p.as_ref()));
                if failed_once.binary_search(&i).is_ok() {
                    // Second failure of an item that already panicked in
                    // the first pass.
                    failed_twice += 1;
                } else {
                    // An unclaimed slot: this was its first attempt, so it
                    // gets the same one-retry budget as everything else.
                    match attempt() {
                        Ok(r) => slots[i] = Some(r),
                        Err(p2) => {
                            panics += 1;
                            failed_twice += 1;
                            first_panic.get_or_insert_with(|| panic_message(p2.as_ref()));
                        }
                    }
                }
            }
        }
    }
    obs::counter_add("par.panics", panics);
    if failed_twice > 0 {
        return Err(MceError::worker_panic(
            name,
            failed_twice,
            first_panic.unwrap_or_else(|| "<unknown>".to_owned()),
        ));
    }
    Ok(slots
        .into_iter()
        .map(|s| s.expect("every slot retried successfully"))
        .collect())
}

/// Resolves the thread count: 0 means one per available core, and the
/// count never exceeds the number of items.
pub fn effective_threads(requested: usize, items: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let t = if requested == 0 { hw } else { requested };
    t.clamp(1, items.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicU32};

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(&items, 8, |x| x * 2);
        let expect: Vec<u64> = items.iter().map(|x| x * 2).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn serial_fallback_matches() {
        let items: Vec<u64> = (0..50).collect();
        assert_eq!(par_map(&items, 1, |x| x + 1), par_map(&items, 4, |x| x + 1));
    }

    #[test]
    fn every_item_processed_exactly_once() {
        let counter = AtomicU32::new(0);
        let items: Vec<u32> = (0..500).collect();
        let _ = par_map(&items, 6, |_| counter.fetch_add(1, Ordering::Relaxed));
        assert_eq!(counter.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn empty_and_singleton() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, 4, |x| *x).is_empty());
        assert_eq!(par_map(&[7u32], 4, |x| *x), vec![7]);
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Items with wildly different cost still produce ordered output.
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(&items, 4, |&x| {
            if x % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            x
        });
        assert_eq!(out, items);
    }

    #[test]
    fn named_region_emits_worker_lanes_and_progress() {
        // The only test in this crate touching the process-global recorder,
        // so no cross-test serialization is needed here.
        let sink = std::sync::Arc::new(mce_obs::MemorySink::new());
        mce_obs::install(sink.clone());
        let items: Vec<u64> = (0..200).collect();
        let out = par_map_named("test.region", &items, 4, |x| x + 1);
        mce_obs::uninstall();
        let expect: Vec<u64> = items.iter().map(|x| x + 1).collect();
        assert_eq!(out, expect);
        let events = sink.take();
        let lane_items: u64 = events
            .iter()
            .filter_map(|e| match e.kind {
                mce_obs::EventKind::Worker { items, .. } => Some(items),
                _ => None,
            })
            .sum();
        assert_eq!(lane_items, 200, "worker lanes account for every item");
        assert!(
            events.iter().any(|e| matches!(
                e.kind,
                mce_obs::EventKind::Progress { done, total, .. } if done == total
            )),
            "a final progress tick reports completion"
        );
    }

    #[test]
    fn effective_threads_resolution() {
        assert_eq!(effective_threads(3, 100), 3);
        assert_eq!(effective_threads(8, 2), 2);
        assert!(effective_threads(0, 100) >= 1);
        assert_eq!(effective_threads(0, 0), 1);
    }

    #[test]
    fn one_shot_panic_is_retried_and_recovers() {
        // Item 13 panics on its first attempt only; the serial retry
        // succeeds, so the region completes with correct, ordered output.
        for threads in [1, 4] {
            let tripped = AtomicBool::new(false);
            let items: Vec<u64> = (0..64).collect();
            let out = try_par_map_named("test.flaky", &items, threads, |&x| {
                if x == 13 && !tripped.swap(true, Ordering::SeqCst) {
                    panic!("injected one-shot panic");
                }
                x * 3
            })
            .unwrap();
            let expect: Vec<u64> = items.iter().map(|x| x * 3).collect();
            assert_eq!(out, expect, "threads={threads}");
        }
    }

    #[test]
    fn sticky_panic_is_a_worker_panic_error() {
        for threads in [1, 4] {
            let items: Vec<u64> = (0..32).collect();
            let err = try_par_map_named("test.sticky", &items, threads, |&x| {
                if x == 5 {
                    panic!("always fails");
                }
                x
            })
            .unwrap_err();
            match err {
                MceError::WorkerPanic {
                    region,
                    failed_items,
                    first_panic,
                } => {
                    assert_eq!(region, "test.sticky");
                    assert_eq!(failed_items, 1);
                    assert!(first_panic.contains("always fails"), "{first_panic}");
                }
                other => panic!("expected WorkerPanic, got {other}"),
            }
        }
    }

    #[test]
    fn all_workers_dying_degrades_to_serial() {
        // Every item panics on its first attempt, so every worker dies on
        // its first claim and the bulk of the region runs in the serial
        // retry pass — which succeeds on the second attempt per item.
        let items: Vec<usize> = (0..40).collect();
        let attempts: Vec<AtomicU32> = items.iter().map(|_| AtomicU32::new(0)).collect();
        let out = try_par_map_named("test.degrade", &items, 4, |&i| {
            if attempts[i].fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("first attempt of {i} fails");
            }
            i * 2
        })
        .unwrap();
        let expect: Vec<usize> = items.iter().map(|i| i * 2).collect();
        assert_eq!(out, expect);
        for a in &attempts {
            assert_eq!(a.load(Ordering::SeqCst), 2, "exactly one retry per item");
        }
    }

    #[test]
    fn par_map_named_panics_on_twice_failed_items() {
        let result = std::panic::catch_unwind(|| {
            par_map_named("test.fatal", &[1u32, 2, 3], 2, |&x| {
                if x == 2 {
                    panic!("unrecoverable");
                }
                x
            })
        });
        let msg = panic_message(result.unwrap_err().as_ref());
        assert!(msg.contains("test.fatal"), "{msg}");
        assert!(msg.contains("unrecoverable"), "{msg}");
    }
}
