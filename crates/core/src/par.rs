//! Minimal deterministic parallel map over std scoped threads.
//!
//! The exploration estimates thousands of independent candidates; this
//! helper fans them out across threads while preserving input order, so
//! parallel and serial runs produce identical results. Workers pull items
//! from a shared atomic cursor, which keeps them busy even when per-item
//! cost varies.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Maps `f` over `items` using up to `threads` OS threads (0 = one per
/// available core), returning outputs in input order.
///
/// The output equals the serial `items.iter().map(f).collect()`; only the
/// wall-clock time differs.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = effective_threads(threads, items.len());
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    {
        // One mutex per output slot over disjoint mutable borrows: the
        // atomic cursor hands each index to exactly one worker, so every
        // lock is uncontended — it only exists to satisfy the borrow
        // checker without `unsafe` (which this crate forbids).
        let cells: Vec<Mutex<&mut Option<R>>> = slots.iter_mut().map(Mutex::new).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let f = &f;
                let next = &next;
                let cells = &cells;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let r = f(&items[i]);
                    **cells[i].lock().expect("slot mutex never poisoned") = Some(r);
                });
            }
        });
    }
    slots
        .into_iter()
        .map(|s| s.expect("every slot written exactly once"))
        .collect()
}

/// Resolves the thread count: 0 means one per available core, and the
/// count never exceeds the number of items.
pub fn effective_threads(requested: usize, items: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let t = if requested == 0 { hw } else { requested };
    t.clamp(1, items.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(&items, 8, |x| x * 2);
        let expect: Vec<u64> = items.iter().map(|x| x * 2).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn serial_fallback_matches() {
        let items: Vec<u64> = (0..50).collect();
        assert_eq!(par_map(&items, 1, |x| x + 1), par_map(&items, 4, |x| x + 1));
    }

    #[test]
    fn every_item_processed_exactly_once() {
        let counter = AtomicU32::new(0);
        let items: Vec<u32> = (0..500).collect();
        let _ = par_map(&items, 6, |_| counter.fetch_add(1, Ordering::Relaxed));
        assert_eq!(counter.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn empty_and_singleton() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, 4, |x| *x).is_empty());
        assert_eq!(par_map(&[7u32], 4, |x| *x), vec![7]);
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Items with wildly different cost still produce ordered output.
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(&items, 4, |&x| {
            if x % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            x
        });
        assert_eq!(out, items);
    }

    #[test]
    fn effective_threads_resolution() {
        assert_eq!(effective_threads(3, 100), 3);
        assert_eq!(effective_threads(8, 2), 2);
        assert!(effective_threads(0, 100) >= 1);
        assert_eq!(effective_threads(0, 0), 1);
    }
}
