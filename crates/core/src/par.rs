//! Minimal deterministic parallel map over std scoped threads.
//!
//! The exploration estimates thousands of independent candidates; this
//! helper fans them out across threads while preserving input order, so
//! parallel and serial runs produce identical results. Workers pull items
//! from a shared atomic cursor, which keeps them busy even when per-item
//! cost varies.

use mce_obs as obs;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Maps `f` over `items` using up to `threads` OS threads (0 = one per
/// available core), returning outputs in input order.
///
/// The output equals the serial `items.iter().map(f).collect()`; only the
/// wall-clock time differs.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_named("par_map", items, threads, f)
}

/// Per-worker execution record, gathered while the scope runs and emitted
/// as worker-lane events only after all workers have joined, so lane
/// events always appear in worker order.
struct LaneStats {
    start_us: u64,
    end_us: u64,
    busy_us: u64,
    items: u64,
}

/// [`par_map`] with a region name for observability: when a `mce-obs` sink
/// is installed, the region emits rate-limited progress ticks and one
/// worker-lane span per thread (lanes are 1-based; the serial fallback
/// emits progress only). When tracing is disabled the extra cost is one
/// relaxed atomic load up front.
pub fn par_map_named<T, R, F>(name: &'static str, items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = effective_threads(threads, items.len());
    let tracing = obs::tracing_enabled();
    let total = items.len() as u64;
    // ~50 ticks per region regardless of size keeps progress readable and
    // the event stream small.
    let step = (items.len() / 50).max(1) as u64;
    if threads <= 1 || items.len() <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                let r = f(item);
                if tracing {
                    let done = i as u64 + 1;
                    if done % step == 0 || done == total {
                        obs::progress(name, done, total);
                    }
                }
                r
            })
            .collect();
    }
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    let mut lanes: Vec<Option<LaneStats>> = (0..threads).map(|_| None).collect();
    {
        // One mutex per output slot over disjoint mutable borrows: the
        // atomic cursor hands each index to exactly one worker, so every
        // lock is uncontended — it only exists to satisfy the borrow
        // checker without `unsafe` (which this crate forbids).
        let cells: Vec<Mutex<&mut Option<R>>> = slots.iter_mut().map(Mutex::new).collect();
        let lane_cells: Vec<Mutex<&mut Option<LaneStats>>> =
            lanes.iter_mut().map(Mutex::new).collect();
        let next = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for w in 0..threads {
                let f = &f;
                let next = &next;
                let done = &done;
                let cells = &cells;
                let lane_cells = &lane_cells;
                scope.spawn(move || {
                    let start_us = if tracing { obs::now_us() } else { 0 };
                    let mut busy_us = 0u64;
                    let mut n_items = 0u64;
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        let r = if tracing {
                            let t0 = Instant::now();
                            let r = f(&items[i]);
                            busy_us += t0.elapsed().as_micros() as u64;
                            r
                        } else {
                            f(&items[i])
                        };
                        **cells[i].lock().expect("slot mutex never poisoned") = Some(r);
                        n_items += 1;
                        if tracing {
                            let d = done.fetch_add(1, Ordering::Relaxed) as u64 + 1;
                            if d % step == 0 || d == total {
                                obs::progress(name, d, total);
                            }
                        }
                    }
                    if tracing {
                        let end_us = obs::now_us();
                        **lane_cells[w].lock().expect("lane mutex never poisoned") =
                            Some(LaneStats {
                                start_us,
                                end_us,
                                busy_us,
                                items: n_items,
                            });
                    }
                });
            }
        });
    }
    if tracing {
        for (w, lane) in lanes.iter().enumerate() {
            if let Some(stats) = lane {
                let dur = stats.end_us.saturating_sub(stats.start_us);
                obs::worker_span(name, (w + 1) as u32, stats.start_us, dur, stats.busy_us, stats.items);
                // Per-worker occupancy distributions: how long each lane
                // ran and how much of that was inside the mapped closure.
                obs::histogram_record("par.worker_span_us", dur);
                obs::histogram_record("par.worker_busy_us", stats.busy_us);
            }
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every slot written exactly once"))
        .collect()
}

/// Resolves the thread count: 0 means one per available core, and the
/// count never exceeds the number of items.
pub fn effective_threads(requested: usize, items: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let t = if requested == 0 { hw } else { requested };
    t.clamp(1, items.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(&items, 8, |x| x * 2);
        let expect: Vec<u64> = items.iter().map(|x| x * 2).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn serial_fallback_matches() {
        let items: Vec<u64> = (0..50).collect();
        assert_eq!(par_map(&items, 1, |x| x + 1), par_map(&items, 4, |x| x + 1));
    }

    #[test]
    fn every_item_processed_exactly_once() {
        let counter = AtomicU32::new(0);
        let items: Vec<u32> = (0..500).collect();
        let _ = par_map(&items, 6, |_| counter.fetch_add(1, Ordering::Relaxed));
        assert_eq!(counter.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn empty_and_singleton() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, 4, |x| *x).is_empty());
        assert_eq!(par_map(&[7u32], 4, |x| *x), vec![7]);
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Items with wildly different cost still produce ordered output.
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(&items, 4, |&x| {
            if x % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            x
        });
        assert_eq!(out, items);
    }

    #[test]
    fn named_region_emits_worker_lanes_and_progress() {
        // The only test in this crate touching the process-global recorder,
        // so no cross-test serialization is needed here.
        let sink = std::sync::Arc::new(mce_obs::MemorySink::new());
        mce_obs::install(sink.clone());
        let items: Vec<u64> = (0..200).collect();
        let out = par_map_named("test.region", &items, 4, |x| x + 1);
        mce_obs::uninstall();
        let expect: Vec<u64> = items.iter().map(|x| x + 1).collect();
        assert_eq!(out, expect);
        let events = sink.take();
        let lane_items: u64 = events
            .iter()
            .filter_map(|e| match e.kind {
                mce_obs::EventKind::Worker { items, .. } => Some(items),
                _ => None,
            })
            .sum();
        assert_eq!(lane_items, 200, "worker lanes account for every item");
        assert!(
            events.iter().any(|e| matches!(
                e.kind,
                mce_obs::EventKind::Progress { done, total, .. } if done == total
            )),
            "a final progress tick reports completion"
        );
    }

    #[test]
    fn effective_threads_resolution() {
        assert_eq!(effective_threads(3, 100), 3);
        assert_eq!(effective_threads(8, 2), 2);
        assert!(effective_threads(0, 100) >= 1);
        assert_eq!(effective_threads(0, 0), 1);
    }
}
