//! Hierarchical clustering of BRG arcs into logical connections.
//!
//! "In order to allow different communication channels to share the same
//! connectivity module, we hierarchically cluster the BRG arcs into logical
//! connections, based on the bandwidth requirement of each channel. We
//! first group the channels with the lowest bandwidth requirements into
//! logical connections. We label each such cluster with the cumulative
//! bandwidth of the individual channels, and continue the hierarchical
//! clustering."
//!
//! Merging is constrained to the same side of the chip boundary: an on-chip
//! channel and an off-chip channel can never share a component. The level-0
//! clustering keeps every arc separate (the naive one-component-per-channel
//! architecture); the final level has one on-chip and one off-chip cluster
//! (the fully shared busses).

use crate::brg::Brg;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A logical connection: a set of BRG arcs that will share one connectivity
/// component.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    /// Indices into [`Brg::arcs`].
    pub arcs: Vec<usize>,
    /// Cumulative bandwidth of the member channels, bytes/cycle.
    pub bandwidth: f64,
    /// Chip-boundary side of every member.
    pub off_chip: bool,
}

impl Cluster {
    /// Number of channels in the logical connection (the port count its
    /// component must support).
    pub fn len(&self) -> usize {
        self.arcs.len()
    }

    /// Clusters are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl fmt::Display for Cluster {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{{{}}} {:.4} B/cyc{}",
            self.arcs
                .iter()
                .map(|a| a.to_string())
                .collect::<Vec<_>>()
                .join(","),
            self.bandwidth,
            if self.off_chip { " off-chip" } else { "" }
        )
    }
}

/// A complete clustering level: every BRG arc belongs to exactly one
/// cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Clustering {
    /// The logical connections at this level.
    pub clusters: Vec<Cluster>,
}

impl Clustering {
    /// Number of logical connections.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Clusterings are non-empty for non-empty BRGs.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }
}

impl fmt::Display for Clustering {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}]",
            self.clusters
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join("; ")
        )
    }
}

/// The merge order used by the hierarchical clustering — the paper merges
/// lowest-bandwidth first; the alternatives exist for the ablation benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ClusterOrder {
    /// Merge the two lowest-bandwidth clusters (the paper's rule: cheap
    /// channels share hardware first, hot channels keep private links
    /// longest).
    #[default]
    LowestFirst,
    /// Merge the two highest-bandwidth clusters (anti-paper control).
    HighestFirst,
    /// Merge a deterministic pseudo-random pair (seeded by level).
    Random(u64),
}

/// Produces the full sequence of clustering levels for `brg`, from
/// all-separate (level 0) down to one cluster per chip-boundary side.
///
/// Each level merges exactly one pair (the paper's
/// "merge the two logical connection clusters with lowest bandwidth
/// requirement hierarchically into a larger cluster"), so for `n` arcs on
/// `s` sides there are `n - s + 1` levels.
pub fn cluster_levels(brg: &Brg, order: ClusterOrder) -> Vec<Clustering> {
    let mut current: Vec<Cluster> = brg
        .arcs()
        .iter()
        .enumerate()
        .map(|(i, a)| Cluster {
            arcs: vec![i],
            bandwidth: a.bandwidth,
            off_chip: a.channel.off_chip,
        })
        .collect();
    let mut levels = vec![Clustering {
        clusters: current.clone(),
    }];
    let mut step = 0u64;
    while let Some((i, j)) = pick_merge(&current, order, step) {
        let b = current.remove(j.max(i));
        let a = current.remove(j.min(i));
        let mut arcs = a.arcs;
        arcs.extend(b.arcs);
        arcs.sort_unstable();
        current.push(Cluster {
            arcs,
            bandwidth: a.bandwidth + b.bandwidth,
            off_chip: a.off_chip,
        });
        // Keep a canonical presentation order: on-chip first, then by first
        // member arc.
        current.sort_by_key(|c| (c.off_chip, c.arcs[0]));
        levels.push(Clustering {
            clusters: current.clone(),
        });
        step += 1;
    }
    levels
}

/// Picks the pair of same-side clusters to merge, per the order rule.
fn pick_merge(clusters: &[Cluster], order: ClusterOrder, step: u64) -> Option<(usize, usize)> {
    let mut candidates: Vec<(usize, usize)> = Vec::new();
    for i in 0..clusters.len() {
        for j in (i + 1)..clusters.len() {
            if clusters[i].off_chip == clusters[j].off_chip {
                candidates.push((i, j));
            }
        }
    }
    if candidates.is_empty() {
        return None;
    }
    let key = |&(i, j): &(usize, usize)| clusters[i].bandwidth + clusters[j].bandwidth;
    match order {
        ClusterOrder::LowestFirst => candidates
            .iter()
            .min_by(|a, b| key(a).total_cmp(&key(b)))
            .copied(),
        ClusterOrder::HighestFirst => candidates
            .iter()
            .max_by(|a, b| key(a).total_cmp(&key(b)))
            .copied(),
        ClusterOrder::Random(seed) => {
            // splitmix64 over (seed, step) for a deterministic pick.
            let mut x = seed ^ step.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            x ^= x >> 31;
            Some(candidates[(x % candidates.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mce_appmodel::{benchmarks, DsId};
    use mce_memlib::{CacheConfig, MemModuleKind, MemoryArchitecture};

    const N: usize = 20_000;

    fn li_dma_brg() -> Brg {
        let w = benchmarks::li();
        let mem = MemoryArchitecture::builder("dma")
            .module("L1", MemModuleKind::Cache(CacheConfig::kilobytes(4)))
            .module(
                "dma",
                MemModuleKind::SelfIndirectDma {
                    depth: 16,
                    element_bytes: 8,
                },
            )
            .module("sp", MemModuleKind::Sram { bytes: 4096 })
            .map(DsId::new(0), 1) // cons_heap -> dma
            .map(DsId::new(2), 2) // eval_stack -> sram
            .map_rest_to(0)
            .build(&w)
            .unwrap();
        Brg::profile(&w, &mem, N)
    }

    #[test]
    fn level_zero_is_all_separate() {
        let brg = li_dma_brg();
        let levels = cluster_levels(&brg, ClusterOrder::LowestFirst);
        assert_eq!(levels[0].len(), brg.arcs().len());
        assert!(levels[0].clusters.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn final_level_one_cluster_per_side() {
        let brg = li_dma_brg();
        let levels = cluster_levels(&brg, ClusterOrder::LowestFirst);
        let last = levels.last().unwrap();
        let on: Vec<_> = last.clusters.iter().filter(|c| !c.off_chip).collect();
        let off: Vec<_> = last.clusters.iter().filter(|c| c.off_chip).collect();
        assert_eq!(on.len(), 1);
        assert_eq!(off.len(), 1);
    }

    #[test]
    fn level_count_formula() {
        let brg = li_dma_brg();
        let levels = cluster_levels(&brg, ClusterOrder::LowestFirst);
        // n arcs, 2 sides -> n - 2 merges -> n - 1 levels.
        assert_eq!(levels.len(), brg.arcs().len() - 1);
    }

    #[test]
    fn every_level_partitions_all_arcs() {
        let brg = li_dma_brg();
        for level in cluster_levels(&brg, ClusterOrder::LowestFirst) {
            let mut seen: Vec<usize> = level.clusters.iter().flat_map(|c| c.arcs.clone()).collect();
            seen.sort_unstable();
            let expect: Vec<usize> = (0..brg.arcs().len()).collect();
            assert_eq!(seen, expect, "level {level}");
        }
    }

    #[test]
    fn merges_never_cross_chip_boundary() {
        let brg = li_dma_brg();
        for level in cluster_levels(&brg, ClusterOrder::LowestFirst) {
            for c in &level.clusters {
                for &a in &c.arcs {
                    assert_eq!(brg.arcs()[a].channel.off_chip, c.off_chip);
                }
            }
        }
    }

    #[test]
    fn lowest_first_merges_coldest_channels() {
        let brg = li_dma_brg();
        let levels = cluster_levels(&brg, ClusterOrder::LowestFirst);
        // After the first merge, the merged pair must be the two coldest
        // same-side arcs.
        let merged = levels[1]
            .clusters
            .iter()
            .find(|c| c.len() == 2)
            .expect("one pair merged");
        let side_arcs: Vec<(usize, f64)> = brg
            .arcs()
            .iter()
            .enumerate()
            .filter(|(_, a)| a.channel.off_chip == merged.off_chip)
            .map(|(i, a)| (i, a.bandwidth))
            .collect();
        let mut sorted = side_arcs.clone();
        sorted.sort_by(|a, b| a.1.total_cmp(&b.1));
        let coldest: Vec<usize> = sorted.iter().take(2).map(|(i, _)| *i).collect();
        let mut expect = coldest.clone();
        expect.sort_unstable();
        assert_eq!(merged.arcs, expect);
    }

    #[test]
    fn cumulative_bandwidth_preserved() {
        let brg = li_dma_brg();
        let total: f64 = brg.arcs().iter().map(|a| a.bandwidth).sum();
        for level in cluster_levels(&brg, ClusterOrder::LowestFirst) {
            let sum: f64 = level.clusters.iter().map(|c| c.bandwidth).sum();
            assert!((sum - total).abs() < 1e-9, "level sum {sum} vs {total}");
        }
    }

    #[test]
    fn orders_differ() {
        let brg = li_dma_brg();
        let low = cluster_levels(&brg, ClusterOrder::LowestFirst);
        let high = cluster_levels(&brg, ClusterOrder::HighestFirst);
        assert_eq!(low.len(), high.len());
        assert_ne!(
            low[1], high[1],
            "different merge orders pick different pairs"
        );
    }

    #[test]
    fn random_order_is_deterministic() {
        let brg = li_dma_brg();
        let a = cluster_levels(&brg, ClusterOrder::Random(7));
        let b = cluster_levels(&brg, ClusterOrder::Random(7));
        assert_eq!(a, b);
    }
}
