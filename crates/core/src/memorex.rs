//! The end-to-end MemorEx flow (the paper's Figure 1).
//!
//! `C application → APEX (memory-modules exploration) → selected memory
//! configurations → ConEx (connectivity exploration) → selected combined
//! memory + connectivity configurations`.

use crate::engine::EvalEngine;
use crate::explore::{ConexConfig, ConexExplorer, ConexResult};
use mce_apex::{ApexConfig, ApexExplorer, ApexResult};
use mce_appmodel::Workload;
use mce_budget::Bounds;
use mce_error::MceError;
use mce_sim::Preset;
use serde::{Deserialize, Serialize};

/// The combined memory-system exploration environment.
#[derive(Debug, Clone)]
pub struct MemorEx {
    apex: ApexExplorer,
    conex: ConexExplorer,
}

/// Results of both stages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemorExResult {
    /// The memory-modules exploration (Figure 3).
    pub apex: ApexResult,
    /// The connectivity exploration over the selected memory architectures
    /// (Figures 4 and 6, Tables 1 and 2).
    pub conex: ConexResult,
}

impl MemorEx {
    /// Creates the pipeline from the two stage configurations.
    pub fn new(apex: ApexConfig, conex: ConexConfig) -> Self {
        MemorEx {
            apex: ApexExplorer::new(apex),
            conex: ConexExplorer::new(conex),
        }
    }

    /// The pipeline with both stages at the same [`Preset`].
    pub fn preset(preset: Preset) -> Self {
        Self::new(ApexConfig::preset(preset), ConexConfig::preset(preset))
    }

    /// Quick preset for tests and examples.
    #[deprecated(note = "use `MemorEx::preset(Preset::Fast)`")]
    pub fn fast() -> Self {
        Self::preset(Preset::Fast)
    }

    /// The experiment preset.
    #[deprecated(note = "use `MemorEx::preset(Preset::Paper)`")]
    pub fn paper() -> Self {
        Self::preset(Preset::Paper)
    }

    /// Enables frontier-provenance capture on the ConEx stage — see
    /// [`ConexExplorer::with_explain`]. Results are bit-identical with
    /// it on or off; only [`ConexResult::provenance`] gains content.
    ///
    /// [`ConexResult::provenance`]: crate::explore::ConexResult::provenance
    #[must_use]
    pub fn with_explain(mut self, explain: bool) -> Self {
        self.conex = self.conex.with_explain(explain);
        self
    }

    /// The ConEx explorer (to run scenario selections etc.).
    pub fn conex(&self) -> &ConexExplorer {
        &self.conex
    }

    /// Runs APEX then ConEx on `workload`.
    ///
    /// # Errors
    ///
    /// Returns [`MceError::WorkerPanic`] when an evaluation panics twice
    /// (parallel pass and serial retry).
    pub fn run(&self, workload: &Workload) -> Result<MemorExResult, MceError> {
        self.run_bounded(workload, Bounds::none())
    }

    /// [`MemorEx::run`] under [`Bounds`]: the token is checked between
    /// the APEX and ConEx stages, and ConEx checks it per memory
    /// architecture (plus inside every simulation). A tripped bound
    /// yields a truncated but valid [`ConexResult`] — see
    /// [`ConexResult::stop_reason`](crate::explore::ConexResult::stop_reason).
    ///
    /// # Errors
    ///
    /// Returns [`MceError::WorkerPanic`] when an evaluation panics twice
    /// (parallel pass and serial retry).
    pub fn run_bounded(
        &self,
        workload: &Workload,
        bounds: Bounds,
    ) -> Result<MemorExResult, MceError> {
        let apex = self.apex.explore(workload);
        let mem_archs = apex.selected();
        let engine = EvalEngine::new(workload, self.conex.config().trace_len).with_bounds(bounds);
        let conex = self.conex.explore_with_engine(&engine, mem_archs)?;
        Ok(MemorExResult { apex, conex })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mce_appmodel::benchmarks;

    #[test]
    fn end_to_end_vocoder() {
        let w = benchmarks::vocoder();
        let result = MemorEx::preset(Preset::Fast).run(&w).unwrap();
        assert!(!result.apex.selected().is_empty());
        assert!(!result.conex.simulated().is_empty());
        assert!(!result.conex.pareto_cost_latency().is_empty());
    }

    #[test]
    fn conex_extends_apex_cost_with_connectivity() {
        let w = benchmarks::vocoder();
        let result = MemorEx::preset(Preset::Fast).run(&w).unwrap();
        // Every combined design costs at least its memory architecture.
        for p in result.conex.simulated() {
            assert!(p.metrics.cost_gates >= p.system.mem().gate_cost());
        }
    }

    #[test]
    fn exploration_improves_over_worst_connectivity() {
        // The headline claim: connectivity choice matters. Among the fully
        // simulated designs, the best latency should clearly beat the worst
        // (same memory architectures, different connectivity).
        let w = benchmarks::compress();
        let result = MemorEx::preset(Preset::Fast).run(&w).unwrap();
        let lats: Vec<f64> = result
            .conex
            .simulated()
            .iter()
            .map(|p| p.metrics.latency_cycles)
            .collect();
        let best = lats.iter().cloned().fold(f64::MAX, f64::min);
        let worst = lats.iter().cloned().fold(f64::MIN, f64::max);
        assert!(worst > 1.3 * best, "best {best} worst {worst}");
    }
}
