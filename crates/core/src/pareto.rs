//! Pareto dominance, fronts, and coverage metrics.
//!
//! All three metrics are minimized. "A design is on the pareto curve if
//! there is no other design which is better in both cost and performance"
//! (paper, Section 6 footnote) — generalized here to any axis pair and to
//! the full 3-D space. The coverage and average-distance metrics reproduce
//! the paper's Table 2 methodology: compare the exploration's findings
//! against the true front from full search, counting exact matches and the
//! percentile deviation of the closest substitute for each missed point.

use crate::design_point::Metrics;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A metric axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Axis {
    /// Gate cost.
    Cost,
    /// Average memory latency.
    Latency,
    /// Average energy per access.
    Energy,
}

impl Axis {
    /// All three axes.
    pub const ALL: [Axis; 3] = [Axis::Cost, Axis::Latency, Axis::Energy];

    /// Extracts this axis's value from a metrics triple.
    pub fn value(self, m: &Metrics) -> f64 {
        match self {
            Axis::Cost => m.cost_gates as f64,
            Axis::Latency => m.latency_cycles,
            Axis::Energy => m.energy_nj,
        }
    }
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Axis::Cost => "cost",
            Axis::Latency => "latency",
            Axis::Energy => "energy",
        })
    }
}

/// True if `a` dominates `b` on `axes`: no worse everywhere and strictly
/// better somewhere.
pub fn dominates(a: &Metrics, b: &Metrics, axes: &[Axis]) -> bool {
    let mut strictly_better = false;
    for &ax in axes {
        let (va, vb) = (ax.value(a), ax.value(b));
        if va > vb {
            return false;
        }
        if va < vb {
            strictly_better = true;
        }
    }
    strictly_better
}

/// A pareto front over a set of metric triples.
///
/// ```
/// use mce_conex::{Metrics, ParetoFront, Axis};
/// let points = vec![
///     Metrics::new(100, 10.0, 5.0),
///     Metrics::new(200, 5.0, 5.0),
///     Metrics::new(300, 9.0, 5.0), // dominated by the 200-gate point
/// ];
/// let front = ParetoFront::of(&points, &[Axis::Cost, Axis::Latency]);
/// assert_eq!(front.indices(), &[0, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParetoFront {
    indices: Vec<usize>,
}

impl ParetoFront {
    /// Computes the front of `points` on `axes` (O(n²) dominance check —
    /// exploration sets are small).
    ///
    /// Duplicate-metric points: the first occurrence is kept.
    pub fn of(points: &[Metrics], axes: &[Axis]) -> Self {
        let mut indices = Vec::new();
        'outer: for (i, p) in points.iter().enumerate() {
            for (j, q) in points.iter().enumerate() {
                if i != j && (dominates(q, p, axes) || (j < i && metrics_eq(q, p, axes))) {
                    continue 'outer;
                }
            }
            indices.push(i);
        }
        // Sort by the first axis for presentation.
        if let Some(&first) = axes.first() {
            indices.sort_by(|&a, &b| first.value(&points[a]).total_cmp(&first.value(&points[b])));
        }
        ParetoFront { indices }
    }

    /// Indices (into the original slice) of the front, sorted by the first
    /// axis.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Number of points on the front.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// True if the front is empty (only for empty input).
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// The front's metric values, selected from `points`.
    ///
    /// # Panics
    ///
    /// Panics if `points` is not the slice the front was computed over.
    pub fn select<'a>(&self, points: &'a [Metrics]) -> Vec<&'a Metrics> {
        self.indices.iter().map(|&i| &points[i]).collect()
    }
}

fn metrics_eq(a: &Metrics, b: &Metrics, axes: &[Axis]) -> bool {
    axes.iter().all(|&ax| ax.value(a) == ax.value(b))
}

/// A scalar "how much trade-off space is covered" proxy: the 2-D
/// hypervolume dominated by the pareto front of `points` on `axes`
/// (both minimized), measured against a reference point at 1.05× the
/// per-axis maximum over `points` and normalized by the reference
/// rectangle's area, so the value lands in `[0, 1)`.
///
/// This is deliberately *not* the exact multi-objective hypervolume
/// indicator — the reference point is data-derived, so values are only
/// comparable between snapshots of the same growing point set. That is
/// exactly what run reports need: one deterministic number per
/// frontier-evolution sample that grows as the front pushes toward the
/// origin.
pub fn hypervolume_proxy(points: &[Metrics], axes: [Axis; 2]) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    let axis_max = |ax: Axis| points.iter().map(|m| ax.value(m)).fold(f64::MIN, f64::max);
    let ref_x = axis_max(axes[0]) * 1.05;
    let ref_y = axis_max(axes[1]) * 1.05;
    if !(ref_x > 0.0 && ref_y > 0.0) {
        return 0.0;
    }
    // The front is sorted ascending on axes[0], so its axes[1] values are
    // non-increasing; each point contributes the horizontal strip between
    // its own y and the previous (higher) y, out to the reference x.
    let front = ParetoFront::of(points, &axes);
    let mut prev_y = ref_y;
    let mut hv = 0.0;
    for &i in front.indices() {
        let (x, y) = (axes[0].value(&points[i]), axes[1].value(&points[i]));
        if y < prev_y {
            hv += (ref_x - x) * (prev_y - y);
            prev_y = y;
        }
    }
    hv / (ref_x * ref_y)
}

/// The Table 2 comparison: how well an exploration's points cover a
/// reference (full-search) pareto front.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoverageReport {
    /// Fraction of reference pareto points exactly matched (within
    /// `tolerance` relative error on every axis), in percent.
    pub coverage_pct: f64,
    /// Average percentile cost deviation of the closest substitute for the
    /// missed points (0 when all covered).
    pub avg_cost_dist_pct: f64,
    /// Average percentile latency deviation for missed points.
    pub avg_perf_dist_pct: f64,
    /// Average percentile energy deviation for missed points.
    pub avg_energy_dist_pct: f64,
}

impl CoverageReport {
    /// Compares `found` points against the `reference` pareto points.
    ///
    /// A reference point counts as covered if some found point matches it
    /// within `tolerance` relative error on all three axes. For each missed
    /// reference point, the closest found point (by summed relative error)
    /// provides the per-axis percentile distances, averaged over the missed
    /// points — "even though a design point on the pareto curve has not
    /// been found, another design with very close characteristics is
    /// provided".
    ///
    /// # Panics
    ///
    /// Panics if `reference` is empty or `found` is empty.
    pub fn compare(reference: &[Metrics], found: &[Metrics], tolerance: f64) -> Self {
        assert!(!reference.is_empty(), "reference front must be non-empty");
        assert!(!found.is_empty(), "found set must be non-empty");
        let mut covered = 0usize;
        let mut dist_sums = [0.0f64; 3];
        let mut missed = 0usize;
        for r in reference {
            let is_covered = found.iter().any(|f| {
                Axis::ALL
                    .iter()
                    .all(|&ax| rel_err(ax.value(f), ax.value(r)) <= tolerance)
            });
            if is_covered {
                covered += 1;
                continue;
            }
            missed += 1;
            let closest = found
                .iter()
                .min_by(|a, b| {
                    let sa: f64 = Axis::ALL
                        .iter()
                        .map(|&ax| rel_err(ax.value(a), ax.value(r)))
                        .sum();
                    let sb: f64 = Axis::ALL
                        .iter()
                        .map(|&ax| rel_err(ax.value(b), ax.value(r)))
                        .sum();
                    sa.total_cmp(&sb)
                })
                .expect("found set is non-empty");
            for (k, &ax) in Axis::ALL.iter().enumerate() {
                dist_sums[k] += rel_err(ax.value(closest), ax.value(r)) * 100.0;
            }
        }
        let denom = missed.max(1) as f64;
        CoverageReport {
            coverage_pct: covered as f64 / reference.len() as f64 * 100.0,
            avg_cost_dist_pct: dist_sums[0] / denom,
            avg_perf_dist_pct: dist_sums[1] / denom,
            avg_energy_dist_pct: dist_sums[2] / denom,
        }
    }
}

fn rel_err(found: f64, reference: f64) -> f64 {
    if reference == 0.0 {
        if found == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (found - reference).abs() / reference.abs()
    }
}

impl fmt::Display for CoverageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "coverage {:.0}%, avg dist cost {:.2}% / perf {:.2}% / energy {:.2}%",
            self.coverage_pct,
            self.avg_cost_dist_pct,
            self.avg_perf_dist_pct,
            self.avg_energy_dist_pct
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(c: u64, l: f64, e: f64) -> Metrics {
        Metrics::new(c, l, e)
    }

    #[test]
    fn dominance_basics() {
        let axes = [Axis::Cost, Axis::Latency];
        assert!(dominates(&m(1, 1.0, 9.0), &m(2, 2.0, 1.0), &axes));
        assert!(!dominates(&m(1, 3.0, 0.0), &m(2, 2.0, 0.0), &axes));
        assert!(
            !dominates(&m(1, 1.0, 0.0), &m(1, 1.0, 0.0), &axes),
            "equal never dominates"
        );
        // Equal on one axis, better on the other.
        assert!(dominates(&m(1, 1.0, 0.0), &m(1, 2.0, 0.0), &axes));
    }

    #[test]
    fn front_filters_dominated() {
        let pts = vec![m(100, 10.0, 1.0), m(200, 5.0, 1.0), m(150, 12.0, 1.0)];
        let f = ParetoFront::of(&pts, &[Axis::Cost, Axis::Latency]);
        assert_eq!(f.indices(), &[0, 1]);
    }

    #[test]
    fn front_sorted_by_first_axis() {
        let pts = vec![m(300, 1.0, 1.0), m(100, 3.0, 1.0), m(200, 2.0, 1.0)];
        let f = ParetoFront::of(&pts, &[Axis::Cost, Axis::Latency]);
        assert_eq!(f.indices(), &[1, 2, 0]);
    }

    #[test]
    fn duplicates_kept_once() {
        let pts = vec![m(100, 1.0, 1.0), m(100, 1.0, 1.0)];
        let f = ParetoFront::of(&pts, &[Axis::Cost, Axis::Latency]);
        assert_eq!(f.len(), 1);
        assert_eq!(f.indices(), &[0]);
    }

    #[test]
    fn three_d_front_differs_from_two_d() {
        // Point 2 is dominated in (cost, latency) but unique best in energy.
        let pts = vec![m(100, 10.0, 5.0), m(200, 5.0, 5.0), m(250, 9.0, 1.0)];
        let f2 = ParetoFront::of(&pts, &[Axis::Cost, Axis::Latency]);
        let f3 = ParetoFront::of(&pts, &Axis::ALL);
        assert_eq!(f2.len(), 2);
        assert_eq!(f3.len(), 3);
    }

    #[test]
    fn empty_input_empty_front() {
        let f = ParetoFront::of(&[], &Axis::ALL);
        assert!(f.is_empty());
    }

    #[test]
    fn single_point_is_front() {
        let pts = vec![m(1, 1.0, 1.0)];
        let f = ParetoFront::of(&pts, &Axis::ALL);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn full_coverage_when_identical() {
        let reference = vec![m(100, 10.0, 5.0), m(200, 5.0, 6.0)];
        let r = CoverageReport::compare(&reference, &reference, 0.001);
        assert_eq!(r.coverage_pct, 100.0);
        assert_eq!(r.avg_cost_dist_pct, 0.0);
    }

    #[test]
    fn partial_coverage_reports_distance() {
        let reference = vec![m(100, 10.0, 5.0), m(200, 5.0, 6.0)];
        let found = vec![m(100, 10.0, 5.0), m(210, 5.2, 6.1)];
        let r = CoverageReport::compare(&reference, &found, 0.001);
        assert_eq!(r.coverage_pct, 50.0);
        assert!(
            (r.avg_cost_dist_pct - 5.0).abs() < 0.01,
            "{}",
            r.avg_cost_dist_pct
        );
        assert!(
            (r.avg_perf_dist_pct - 4.0).abs() < 0.01,
            "{}",
            r.avg_perf_dist_pct
        );
    }

    #[test]
    fn tolerance_widens_coverage() {
        let reference = vec![m(100, 10.0, 5.0)];
        let found = vec![m(104, 10.2, 5.1)];
        let tight = CoverageReport::compare(&reference, &found, 0.001);
        let loose = CoverageReport::compare(&reference, &found, 0.05);
        assert_eq!(tight.coverage_pct, 0.0);
        assert_eq!(loose.coverage_pct, 100.0);
    }

    #[test]
    fn select_returns_front_metrics() {
        let pts = vec![m(300, 1.0, 1.0), m(100, 3.0, 1.0)];
        let f = ParetoFront::of(&pts, &[Axis::Cost, Axis::Latency]);
        let sel = f.select(&pts);
        assert_eq!(sel.len(), 2);
        assert_eq!(sel[0].cost_gates, 100);
    }

    #[test]
    fn axis_display_and_value() {
        let p = m(10, 2.0, 3.0);
        assert_eq!(Axis::Cost.value(&p), 10.0);
        assert_eq!(Axis::Latency.value(&p), 2.0);
        assert_eq!(Axis::Energy.value(&p), 3.0);
        assert_eq!(Axis::Energy.to_string(), "energy");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_reference_rejected() {
        let _ = CoverageReport::compare(&[], &[m(1, 1.0, 1.0)], 0.01);
    }

    #[test]
    fn hypervolume_proxy_basics() {
        let axes = [Axis::Cost, Axis::Latency];
        assert_eq!(hypervolume_proxy(&[], axes), 0.0);
        // A single point at the axis maxima dominates exactly the corner
        // rectangle between itself and the 1.05× reference point:
        // (0.05/1.05)² of the normalized area.
        let one = hypervolume_proxy(&[m(100, 10.0, 1.0)], axes);
        let expect = (0.05f64 / 1.05) * (0.05 / 1.05);
        assert!((one - expect).abs() < 1e-12, "{one} vs {expect}");
        // Degenerate all-zero axis: no volume.
        assert_eq!(hypervolume_proxy(&[m(0, 0.0, 1.0)], axes), 0.0);
    }

    #[test]
    fn hypervolume_proxy_grows_with_better_points() {
        let axes = [Axis::Cost, Axis::Latency];
        let base = vec![m(100, 10.0, 1.0), m(200, 5.0, 1.0)];
        let hv_base = hypervolume_proxy(&base, axes);
        // Adding a point that pushes the front toward the origin can only
        // grow the dominated share (reference point is unchanged because
        // the maxima are unchanged).
        let mut better = base.clone();
        better.push(m(50, 7.0, 1.0));
        let hv_better = hypervolume_proxy(&better, axes);
        assert!(hv_better > hv_base, "{hv_better} vs {hv_base}");
        // A dominated point inside the existing maxima changes nothing:
        // (150, 10.0) is dominated by (100, 10.0) and leaves both axis
        // maxima — and hence the reference point — untouched.
        let mut padded = base.clone();
        padded.push(m(150, 10.0, 1.0));
        assert_eq!(hypervolume_proxy(&padded, axes), hv_base);
        assert!(hv_base > 0.0 && hv_base < 1.0);
    }
}
