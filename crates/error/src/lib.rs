//! # mce-error — the workspace-wide error type
//!
//! Every fallible loading/parsing path in the exploration stack returns
//! [`MceError`], so callers match on one enum instead of a zoo of
//! per-crate error types or — worse — panics on malformed input. The
//! facade crate re-exports it as `memory_conex::MceError`.
//!
//! The crate is dependency-free on purpose: it sits below `appmodel`,
//! `connlib` and `core` in the workspace graph, so it can only use the
//! standard library.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;
use std::io;

/// The unified error type of the exploration stack.
#[derive(Debug)]
pub enum MceError {
    /// An I/O failure, with the operation that was attempted.
    Io {
        /// What was being done (e.g. `reading trace file \`t.csv\``).
        context: String,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// A malformed line in an access-trace file.
    TraceParse {
        /// 1-based line number of the first bad line.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// Malformed JSON (workload files, connectivity libraries, cache
    /// spills).
    Json {
        /// What was being parsed.
        context: String,
        /// The parser's message.
        reason: String,
    },
    /// A structurally invalid connectivity library.
    Library {
        /// Which invariant failed.
        reason: String,
    },
    /// Invalid input to a builder or session (e.g. a session run without
    /// a workload).
    InvalidInput {
        /// What was missing or inconsistent.
        reason: String,
    },
}

impl MceError {
    /// Wraps an I/O error with context.
    pub fn io(context: impl Into<String>, source: io::Error) -> Self {
        MceError::Io {
            context: context.into(),
            source,
        }
    }

    /// A JSON parse/serialize failure with context.
    pub fn json(context: impl Into<String>, reason: impl fmt::Display) -> Self {
        MceError::Json {
            context: context.into(),
            reason: reason.to_string(),
        }
    }

    /// A connectivity-library validation failure.
    pub fn library(reason: impl Into<String>) -> Self {
        MceError::Library {
            reason: reason.into(),
        }
    }

    /// An invalid-input failure.
    pub fn invalid_input(reason: impl Into<String>) -> Self {
        MceError::InvalidInput {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for MceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MceError::Io { context, source } => write!(f, "{context}: {source}"),
            MceError::TraceParse { line, reason } => write!(f, "trace line {line}: {reason}"),
            MceError::Json { context, reason } => write!(f, "{context}: invalid JSON: {reason}"),
            MceError::Library { reason } => write!(f, "invalid connectivity library: {reason}"),
            MceError::InvalidInput { reason } => write!(f, "invalid input: {reason}"),
        }
    }
}

impl Error for MceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MceError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for MceError {
    fn from(source: io::Error) -> Self {
        MceError::Io {
            context: "I/O error".to_owned(),
            source,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = MceError::io(
            "reading `x.csv`",
            io::Error::new(io::ErrorKind::NotFound, "gone"),
        );
        let s = e.to_string();
        assert!(s.contains("reading `x.csv`"), "{s}");
        assert!(s.contains("gone"), "{s}");
    }

    #[test]
    fn trace_parse_names_the_line() {
        let e = MceError::TraceParse {
            line: 7,
            reason: "bad kind `X`".into(),
        };
        let s = e.to_string();
        assert!(s.contains("line 7"), "{s}");
        assert!(s.contains("bad kind"), "{s}");
    }

    #[test]
    fn io_source_is_chained() {
        let e = MceError::from(io::Error::new(io::ErrorKind::Other, "root"));
        assert!(e.source().is_some());
    }

    #[test]
    fn library_and_input_render() {
        assert!(MceError::library("no components")
            .to_string()
            .contains("no components"));
        assert!(MceError::invalid_input("missing workload")
            .to_string()
            .contains("missing workload"));
    }
}
