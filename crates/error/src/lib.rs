//! # mce-error — the workspace-wide error type
//!
//! Every fallible loading/parsing path in the exploration stack returns
//! [`MceError`], so callers match on one enum instead of a zoo of
//! per-crate error types or — worse — panics on malformed input. The
//! facade crate re-exports it as `memory_conex::MceError`.
//!
//! The crate is dependency-free on purpose: it sits below `appmodel`,
//! `connlib` and `core` in the workspace graph, so it can only use the
//! standard library.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;
use std::io;

/// The unified error type of the exploration stack.
#[derive(Debug)]
pub enum MceError {
    /// An I/O failure, with the operation that was attempted.
    Io {
        /// What was being done (e.g. `reading trace file \`t.csv\``).
        context: String,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// A malformed line in an access-trace file.
    TraceParse {
        /// 1-based line number of the first bad line.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// Malformed JSON (workload files, connectivity libraries, cache
    /// spills).
    Json {
        /// What was being parsed.
        context: String,
        /// The parser's message.
        reason: String,
    },
    /// A structurally invalid connectivity library.
    Library {
        /// Which invariant failed.
        reason: String,
    },
    /// Invalid input to a builder or session (e.g. a session run without
    /// a workload).
    InvalidInput {
        /// What was missing or inconsistent.
        reason: String,
    },
    /// A rejected command-line argument (out-of-range, unparseable, or a
    /// missing value), with a one-line usage hint.
    InvalidArg {
        /// The flag that was rejected (e.g. `--threads`).
        flag: String,
        /// Why its value was rejected.
        reason: String,
        /// A one-line hint for correct usage.
        hint: String,
    },
    /// One or more worker closures panicked and the serial retry failed
    /// too. A single panic never surfaces here — the parallel map retries
    /// the item serially first; this is the "failed twice" verdict.
    WorkerPanic {
        /// The parallel region the panic escaped from.
        region: String,
        /// How many items still failed after the serial retry.
        failed_items: usize,
        /// The first panic's payload, when it was a string.
        first_panic: String,
    },
    /// A checkpoint file that cannot be used: corrupt bytes (digest
    /// mismatch), an unknown schema, or a config/workload that does not
    /// match the run being resumed.
    Checkpoint {
        /// Why the checkpoint was rejected.
        reason: String,
    },
    /// A schema-versioned artifact (run report, live-status file,
    /// archive index) whose `schema` field is newer than this build
    /// understands, or missing entirely. Older schemas load; newer ones
    /// fail here rather than being silently misread.
    SchemaVersion {
        /// What kind of artifact carried the bad version (e.g.
        /// `run report`).
        artifact: String,
        /// The version found in the file (`none` when absent).
        found: String,
        /// The newest version this build supports.
        supported: u64,
    },
}

impl MceError {
    /// Wraps an I/O error with context.
    pub fn io(context: impl Into<String>, source: io::Error) -> Self {
        MceError::Io {
            context: context.into(),
            source,
        }
    }

    /// A JSON parse/serialize failure with context.
    pub fn json(context: impl Into<String>, reason: impl fmt::Display) -> Self {
        MceError::Json {
            context: context.into(),
            reason: reason.to_string(),
        }
    }

    /// A connectivity-library validation failure.
    pub fn library(reason: impl Into<String>) -> Self {
        MceError::Library {
            reason: reason.into(),
        }
    }

    /// An invalid-input failure.
    pub fn invalid_input(reason: impl Into<String>) -> Self {
        MceError::InvalidInput {
            reason: reason.into(),
        }
    }

    /// A rejected command-line argument with a usage hint.
    pub fn invalid_arg(
        flag: impl Into<String>,
        reason: impl Into<String>,
        hint: impl Into<String>,
    ) -> Self {
        MceError::InvalidArg {
            flag: flag.into(),
            reason: reason.into(),
            hint: hint.into(),
        }
    }

    /// A twice-failed worker panic in the named parallel region.
    pub fn worker_panic(
        region: impl Into<String>,
        failed_items: usize,
        first_panic: impl Into<String>,
    ) -> Self {
        MceError::WorkerPanic {
            region: region.into(),
            failed_items,
            first_panic: first_panic.into(),
        }
    }

    /// An unusable-checkpoint failure.
    pub fn checkpoint(reason: impl Into<String>) -> Self {
        MceError::Checkpoint {
            reason: reason.into(),
        }
    }

    /// An unsupported-schema-version failure for the named artifact.
    pub fn schema_version(
        artifact: impl Into<String>,
        found: impl Into<String>,
        supported: u64,
    ) -> Self {
        MceError::SchemaVersion {
            artifact: artifact.into(),
            found: found.into(),
            supported,
        }
    }
}

impl fmt::Display for MceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MceError::Io { context, source } => write!(f, "{context}: {source}"),
            MceError::TraceParse { line, reason } => write!(f, "trace line {line}: {reason}"),
            MceError::Json { context, reason } => write!(f, "{context}: invalid JSON: {reason}"),
            MceError::Library { reason } => write!(f, "invalid connectivity library: {reason}"),
            MceError::InvalidInput { reason } => write!(f, "invalid input: {reason}"),
            MceError::InvalidArg { flag, reason, hint } => {
                write!(f, "invalid argument: {flag}: {reason} (usage: {hint})")
            }
            MceError::WorkerPanic {
                region,
                failed_items,
                first_panic,
            } => write!(
                f,
                "worker panic in `{region}`: {failed_items} item(s) failed twice; \
                 first panic: {first_panic}"
            ),
            MceError::Checkpoint { reason } => write!(f, "unusable checkpoint: {reason}"),
            MceError::SchemaVersion {
                artifact,
                found,
                supported,
            } => write!(
                f,
                "unsupported {artifact} schema version {found} \
                 (this build supports up to {supported})"
            ),
        }
    }
}

impl Error for MceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MceError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for MceError {
    fn from(source: io::Error) -> Self {
        MceError::Io {
            context: "I/O error".to_owned(),
            source,
        }
    }
}

/// Writes `bytes` to `path` atomically: the content lands in
/// `<path>.tmp` first and is renamed over the destination only once
/// fully written, so a crash mid-write never leaves a truncated or
/// half-written file behind — the previous version (or no file at all)
/// survives intact. The temp file lives in the destination's directory,
/// keeping the rename on one filesystem.
///
/// # Errors
///
/// Returns [`MceError::Io`] when the temp file cannot be written or the
/// rename fails; the temp file is cleaned up on failure.
pub fn atomic_write(path: impl AsRef<std::path::Path>, bytes: &[u8]) -> Result<(), MceError> {
    let path = path.as_ref();
    let mut tmp_name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| std::ffi::OsString::from("out"));
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    let attempt = (|| -> io::Result<()> {
        #[cfg(feature = "fault-injection")]
        mce_faultinject::on_write(path)?;
        std::fs::write(&tmp, bytes)?;
        std::fs::rename(&tmp, path)
    })();
    attempt.map_err(|e| {
        std::fs::remove_file(&tmp).ok();
        MceError::io(format!("writing `{}` atomically", path.display()), e)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = MceError::io(
            "reading `x.csv`",
            io::Error::new(io::ErrorKind::NotFound, "gone"),
        );
        let s = e.to_string();
        assert!(s.contains("reading `x.csv`"), "{s}");
        assert!(s.contains("gone"), "{s}");
    }

    #[test]
    fn trace_parse_names_the_line() {
        let e = MceError::TraceParse {
            line: 7,
            reason: "bad kind `X`".into(),
        };
        let s = e.to_string();
        assert!(s.contains("line 7"), "{s}");
        assert!(s.contains("bad kind"), "{s}");
    }

    #[test]
    fn io_source_is_chained() {
        let e = MceError::from(io::Error::other("root"));
        assert!(e.source().is_some());
    }

    #[test]
    fn library_and_input_render() {
        assert!(MceError::library("no components")
            .to_string()
            .contains("no components"));
        assert!(MceError::invalid_input("missing workload")
            .to_string()
            .contains("missing workload"));
    }

    #[test]
    fn invalid_arg_renders_flag_reason_and_hint() {
        let s = MceError::invalid_arg("--threads", "must be >= 1", "--threads N").to_string();
        assert!(s.contains("--threads"), "{s}");
        assert!(s.contains("must be >= 1"), "{s}");
        assert!(s.contains("usage: --threads N"), "{s}");
    }

    #[test]
    fn worker_panic_and_checkpoint_render() {
        let s = MceError::worker_panic("conex.estimate", 2, "boom").to_string();
        assert!(s.contains("conex.estimate"), "{s}");
        assert!(s.contains("2 item(s)"), "{s}");
        assert!(s.contains("boom"), "{s}");
        assert!(MceError::checkpoint("digest mismatch")
            .to_string()
            .contains("digest mismatch"));
    }

    #[test]
    fn schema_version_names_artifact_and_versions() {
        let s = MceError::schema_version("run report", "9", 1).to_string();
        assert!(s.contains("run report"), "{s}");
        assert!(s.contains('9'), "{s}");
        assert!(s.contains("up to 1"), "{s}");
    }

    #[test]
    fn atomic_write_round_trips_and_replaces() {
        let path = std::env::temp_dir().join(format!("mce_atomic_{}.txt", std::process::id()));
        atomic_write(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        // No temp file left behind.
        let tmp = path.with_file_name(format!(
            "{}.tmp",
            path.file_name().unwrap().to_string_lossy()
        ));
        assert!(!tmp.exists());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn atomic_write_to_bad_directory_is_io_error() {
        let err = atomic_write("/nonexistent/dir/file.txt", b"x").unwrap_err();
        assert!(matches!(err, MceError::Io { .. }), "{err}");
    }
}
