//! # mce-error — the workspace-wide error type
//!
//! Every fallible loading/parsing path in the exploration stack returns
//! [`MceError`], so callers match on one enum instead of a zoo of
//! per-crate error types or — worse — panics on malformed input. The
//! facade crate re-exports it as `memory_conex::MceError`.
//!
//! The crate is dependency-free on purpose: it sits below `appmodel`,
//! `connlib` and `core` in the workspace graph, so it can only use the
//! standard library.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;
use std::io;

/// The unified error type of the exploration stack.
#[derive(Debug)]
pub enum MceError {
    /// An I/O failure, with the operation that was attempted.
    Io {
        /// What was being done (e.g. `reading trace file \`t.csv\``).
        context: String,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// A malformed line in an access-trace file.
    TraceParse {
        /// 1-based line number of the first bad line.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// Malformed JSON (workload files, connectivity libraries, cache
    /// spills).
    Json {
        /// What was being parsed.
        context: String,
        /// The parser's message.
        reason: String,
    },
    /// A structurally invalid connectivity library.
    Library {
        /// Which invariant failed.
        reason: String,
    },
    /// Invalid input to a builder or session (e.g. a session run without
    /// a workload).
    InvalidInput {
        /// What was missing or inconsistent.
        reason: String,
    },
    /// A rejected command-line argument (out-of-range, unparseable, or a
    /// missing value), with a one-line usage hint.
    InvalidArg {
        /// The flag that was rejected (e.g. `--threads`).
        flag: String,
        /// Why its value was rejected.
        reason: String,
        /// A one-line hint for correct usage.
        hint: String,
    },
    /// One or more worker closures panicked and the serial retry failed
    /// too. A single panic never surfaces here — the parallel map retries
    /// the item serially first; this is the "failed twice" verdict.
    WorkerPanic {
        /// The parallel region the panic escaped from.
        region: String,
        /// How many items still failed after the serial retry.
        failed_items: usize,
        /// The first panic's payload, when it was a string.
        first_panic: String,
    },
    /// A checkpoint file that cannot be used: corrupt bytes (digest
    /// mismatch), an unknown schema, or a config/workload that does not
    /// match the run being resumed.
    Checkpoint {
        /// Why the checkpoint was rejected.
        reason: String,
    },
    /// A schema-versioned artifact (run report, live-status file,
    /// archive index) whose `schema` field is newer than this build
    /// understands, or missing entirely. Older schemas load; newer ones
    /// fail here rather than being silently misread.
    SchemaVersion {
        /// What kind of artifact carried the bad version (e.g.
        /// `run report`).
        artifact: String,
        /// The version found in the file (`none` when absent).
        found: String,
        /// The newest version this build supports.
        supported: u64,
    },
}

impl MceError {
    /// Wraps an I/O error with context.
    pub fn io(context: impl Into<String>, source: io::Error) -> Self {
        MceError::Io {
            context: context.into(),
            source,
        }
    }

    /// A JSON parse/serialize failure with context.
    pub fn json(context: impl Into<String>, reason: impl fmt::Display) -> Self {
        MceError::Json {
            context: context.into(),
            reason: reason.to_string(),
        }
    }

    /// A connectivity-library validation failure.
    pub fn library(reason: impl Into<String>) -> Self {
        MceError::Library {
            reason: reason.into(),
        }
    }

    /// An invalid-input failure.
    pub fn invalid_input(reason: impl Into<String>) -> Self {
        MceError::InvalidInput {
            reason: reason.into(),
        }
    }

    /// A rejected command-line argument with a usage hint.
    pub fn invalid_arg(
        flag: impl Into<String>,
        reason: impl Into<String>,
        hint: impl Into<String>,
    ) -> Self {
        MceError::InvalidArg {
            flag: flag.into(),
            reason: reason.into(),
            hint: hint.into(),
        }
    }

    /// A twice-failed worker panic in the named parallel region.
    pub fn worker_panic(
        region: impl Into<String>,
        failed_items: usize,
        first_panic: impl Into<String>,
    ) -> Self {
        MceError::WorkerPanic {
            region: region.into(),
            failed_items,
            first_panic: first_panic.into(),
        }
    }

    /// An unusable-checkpoint failure.
    pub fn checkpoint(reason: impl Into<String>) -> Self {
        MceError::Checkpoint {
            reason: reason.into(),
        }
    }

    /// An unsupported-schema-version failure for the named artifact.
    pub fn schema_version(
        artifact: impl Into<String>,
        found: impl Into<String>,
        supported: u64,
    ) -> Self {
        MceError::SchemaVersion {
            artifact: artifact.into(),
            found: found.into(),
            supported,
        }
    }
}

impl fmt::Display for MceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MceError::Io { context, source } => write!(f, "{context}: {source}"),
            MceError::TraceParse { line, reason } => write!(f, "trace line {line}: {reason}"),
            MceError::Json { context, reason } => write!(f, "{context}: invalid JSON: {reason}"),
            MceError::Library { reason } => write!(f, "invalid connectivity library: {reason}"),
            MceError::InvalidInput { reason } => write!(f, "invalid input: {reason}"),
            MceError::InvalidArg { flag, reason, hint } => {
                write!(f, "invalid argument: {flag}: {reason} (usage: {hint})")
            }
            MceError::WorkerPanic {
                region,
                failed_items,
                first_panic,
            } => write!(
                f,
                "worker panic in `{region}`: {failed_items} item(s) failed twice; \
                 first panic: {first_panic}"
            ),
            MceError::Checkpoint { reason } => write!(f, "unusable checkpoint: {reason}"),
            MceError::SchemaVersion {
                artifact,
                found,
                supported,
            } => write!(
                f,
                "unsupported {artifact} schema version {found} \
                 (this build supports up to {supported})"
            ),
        }
    }
}

impl Error for MceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MceError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for MceError {
    fn from(source: io::Error) -> Self {
        MceError::Io {
            context: "I/O error".to_owned(),
            source,
        }
    }
}

/// Sequence number distinguishing concurrent [`atomic_write`] calls to
/// the same destination from different threads of one process (the live
/// publisher thread and the main thread both rewrite the status file).
static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Writes `bytes` to `path` atomically: the content lands in a
/// `<path>.<pid>.<seq>.tmp` sibling first, is fsynced, and is renamed
/// over the destination only once durable, so a crash mid-write never
/// leaves a truncated or half-written file behind — the previous version
/// (or no file at all) survives intact. The temp file lives in the
/// destination's directory, keeping the rename on one filesystem.
///
/// The temp name embeds the writer's pid and a process-wide sequence
/// number, so two processes (or threads) rewriting the same path — swarm
/// heartbeats, shared status files — never clobber each other's
/// in-flight temp file. A writer SIGKILLed between write and rename
/// leaks its uniquely-named temp; [`sweep_stale_tmps`] reclaims those at
/// the next writer's startup by checking whether the embedded pid is
/// still alive.
///
/// # Errors
///
/// Returns [`MceError::Io`] when the temp file cannot be written or the
/// rename fails; the temp file is cleaned up on failure.
pub fn atomic_write(path: impl AsRef<std::path::Path>, bytes: &[u8]) -> Result<(), MceError> {
    let path = path.as_ref();
    let mut tmp_name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| std::ffi::OsString::from("out"));
    tmp_name.push(format!(
        ".{}.{}.tmp",
        std::process::id(),
        TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    let tmp = path.with_file_name(tmp_name);
    let attempt = (|| -> io::Result<()> {
        #[cfg(feature = "fault-injection")]
        mce_faultinject::on_write(path)?;
        let mut file = std::fs::File::create(&tmp)?;
        io::Write::write_all(&mut file, bytes)?;
        // Durability before visibility: the rename must never expose a
        // name whose bytes are still only in the page cache.
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp, path)
    })();
    attempt.map_err(|e| {
        std::fs::remove_file(&tmp).ok();
        MceError::io(format!("writing `{}` atomically", path.display()), e)
    })
}

/// Removes temp files leaked next to `target` by [`atomic_write`] calls
/// that died between write and rename, returning how many were swept.
/// Call at writer startup — before the first checkpoint, archive, live
/// status or heartbeat write — never concurrently with live writers of
/// *other* processes' files.
///
/// A sibling `<name>.<pid>.<seq>.tmp` is stale when `<pid>` is not this
/// process and is no longer alive; liveness is read from `/proc`, and on
/// systems without it every foreign pid is conservatively treated as
/// alive. Legacy `<name>.tmp` leftovers (the pre-pid format, with no
/// recorded owner) are always swept. Errors are deliberately swallowed:
/// sweeping is an optimization, never a correctness requirement.
pub fn sweep_stale_tmps(target: impl AsRef<std::path::Path>) -> usize {
    let target = target.as_ref();
    let Some(name) = target.file_name().and_then(|n| n.to_str()) else {
        return 0;
    };
    let dir = match target.parent() {
        Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    let Ok(entries) = std::fs::read_dir(&dir) else {
        return 0;
    };
    let prefix = format!("{name}.");
    let mut swept = 0;
    for entry in entries.flatten() {
        let file_name = entry.file_name();
        let Some(file_name) = file_name.to_str() else {
            continue;
        };
        let Some(rest) = file_name.strip_prefix(&prefix) else {
            continue;
        };
        let stale = if rest == "tmp" {
            true // legacy fixed-name temp: ownerless, always stale
        } else {
            let Some(mid) = rest.strip_suffix(".tmp") else {
                continue;
            };
            let Some((pid, seq)) = mid.split_once('.') else {
                continue;
            };
            if seq.is_empty() || !seq.bytes().all(|b| b.is_ascii_digit()) {
                continue;
            }
            match pid.parse::<u32>() {
                Ok(pid) if pid != std::process::id() => !pid_alive(pid),
                _ => false,
            }
        };
        if stale && std::fs::remove_file(entry.path()).is_ok() {
            swept += 1;
        }
    }
    swept
}

/// Whether `pid` is a live process. Without `/proc` (non-Linux) this
/// cannot be answered from safe std, so the answer is a conservative
/// "alive" — a stale temp is then merely kept, never a live one removed.
fn pid_alive(pid: u32) -> bool {
    if !std::path::Path::new("/proc").is_dir() {
        return true;
    }
    std::path::Path::new(&format!("/proc/{pid}")).exists()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = MceError::io(
            "reading `x.csv`",
            io::Error::new(io::ErrorKind::NotFound, "gone"),
        );
        let s = e.to_string();
        assert!(s.contains("reading `x.csv`"), "{s}");
        assert!(s.contains("gone"), "{s}");
    }

    #[test]
    fn trace_parse_names_the_line() {
        let e = MceError::TraceParse {
            line: 7,
            reason: "bad kind `X`".into(),
        };
        let s = e.to_string();
        assert!(s.contains("line 7"), "{s}");
        assert!(s.contains("bad kind"), "{s}");
    }

    #[test]
    fn io_source_is_chained() {
        let e = MceError::from(io::Error::other("root"));
        assert!(e.source().is_some());
    }

    #[test]
    fn library_and_input_render() {
        assert!(MceError::library("no components")
            .to_string()
            .contains("no components"));
        assert!(MceError::invalid_input("missing workload")
            .to_string()
            .contains("missing workload"));
    }

    #[test]
    fn invalid_arg_renders_flag_reason_and_hint() {
        let s = MceError::invalid_arg("--threads", "must be >= 1", "--threads N").to_string();
        assert!(s.contains("--threads"), "{s}");
        assert!(s.contains("must be >= 1"), "{s}");
        assert!(s.contains("usage: --threads N"), "{s}");
    }

    #[test]
    fn worker_panic_and_checkpoint_render() {
        let s = MceError::worker_panic("conex.estimate", 2, "boom").to_string();
        assert!(s.contains("conex.estimate"), "{s}");
        assert!(s.contains("2 item(s)"), "{s}");
        assert!(s.contains("boom"), "{s}");
        assert!(MceError::checkpoint("digest mismatch")
            .to_string()
            .contains("digest mismatch"));
    }

    #[test]
    fn schema_version_names_artifact_and_versions() {
        let s = MceError::schema_version("run report", "9", 1).to_string();
        assert!(s.contains("run report"), "{s}");
        assert!(s.contains('9'), "{s}");
        assert!(s.contains("up to 1"), "{s}");
    }

    #[test]
    fn atomic_write_round_trips_and_replaces() {
        let dir = std::env::temp_dir().join(format!("mce_atomic_rt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.txt");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        // No temp file of any spelling left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_writers_never_tear_the_destination() {
        let dir = std::env::temp_dir().join(format!("mce_atomic_race_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shared.json");
        std::thread::scope(|s| {
            for t in 0u8..4 {
                let path = &path;
                s.spawn(move || {
                    let payload = vec![b'a' + t; 4096];
                    for _ in 0..25 {
                        atomic_write(path, &payload).unwrap();
                    }
                });
            }
        });
        // Every observed state is some writer's complete payload.
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes.len(), 4096);
        assert!(bytes.windows(2).all(|w| w[0] == w[1]), "torn write");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sweep_removes_dead_owner_and_legacy_tmps_only() {
        let dir = std::env::temp_dir().join(format!("mce_sweep_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let target = dir.join("state.json");
        std::fs::write(&target, b"real").unwrap();
        // A pid far beyond pid_max: certainly dead on any Linux.
        let dead = dir.join("state.json.4294967295.7.tmp");
        let legacy = dir.join("state.json.tmp");
        let mine = dir.join(format!("state.json.{}.0.tmp", std::process::id()));
        let unrelated = dir.join("other.json.4294967295.7.tmp");
        for f in [&dead, &legacy, &mine, &unrelated] {
            std::fs::write(f, b"junk").unwrap();
        }
        let swept = sweep_stale_tmps(&target);
        if std::path::Path::new("/proc").is_dir() {
            assert_eq!(swept, 2, "dead-owner and legacy temps");
            assert!(!dead.exists() && !legacy.exists());
        } else {
            assert_eq!(swept, 1, "only the ownerless legacy temp");
        }
        assert!(mine.exists(), "a live owner's temp must survive");
        assert!(unrelated.exists(), "other destinations are untouched");
        assert!(target.exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn atomic_write_to_bad_directory_is_io_error() {
        let err = atomic_write("/nonexistent/dir/file.txt", b"x").unwrap_err();
        assert!(matches!(err, MceError::Io { .. }), "{err}");
    }
}
