//! Bounded exploration: cooperative cancellation, deadlines, candidate
//! watchdogs and logical evaluation budgets.
//!
//! Exploration runs are cut short along two very different axes, and this
//! crate keeps them strictly apart:
//!
//! * **Logical budgets** ([`EvalBudget`], `--max-evals` / `--max-archs`)
//!   count *committed* work units in the engine's canonical (serial probe)
//!   order. They are consumed on the calling thread only, so a budgeted
//!   run truncates at exactly the same candidate regardless of thread
//!   count or cache hit pattern — budgeted results are bit-identical and
//!   resumable.
//! * **Wall-clock bounds** ([`CancelToken`] deadlines, SIGINT, and the
//!   per-candidate [`Watchdog`]) depend on elapsed time and therefore on
//!   the machine. Their effects are confined to *where* a run stops (a
//!   safe point: a memory-architecture boundary) and to `degraded`
//!   annotations — never to the value of any committed evaluation.
//!
//! Cancellation is cooperative throughout: a [`CancelToken`] is a cheap
//! atomic flag that simulation loops poll at block-batch boundaries and
//! the explorer polls at candidate/architecture boundaries. Nothing is
//! ever killed mid-evaluation; a hung evaluation is reclaimed by the
//! [`Watchdog`] flagging its lane, after which the evaluation's own
//! cancellation checks (or the fault-injection hang loop) observe the
//! flag and bail out.
//!
//! This crate is `std`-only. It contains the workspace's only `unsafe`
//! block: the minimal `signal(2)` shim behind
//! [`install_termination_handlers`] (std already links libc on the
//! platforms we run on, so no new dependency is needed for Ctrl-C or
//! SIGTERM handling). SIGTERM is folded into the same flag as SIGINT:
//! under a process manager a `kill -TERM` produces exactly the Ctrl-C
//! behaviour — checkpoint at a safe point, valid partial report, exit 0.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Why a run (or token) was cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// The global `--deadline` elapsed.
    Deadline,
    /// SIGINT (Ctrl-C) was received.
    Interrupt,
}

impl CancelReason {
    /// Stable lower-case label used in status lines and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            CancelReason::Deadline => "deadline",
            CancelReason::Interrupt => "interrupt",
        }
    }
}

impl fmt::Display for CancelReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

const REASON_NONE: u8 = 0;
const REASON_DEADLINE: u8 = 1;
const REASON_INTERRUPT: u8 = 2;

struct TokenInner {
    cancelled: AtomicBool,
    reason: AtomicU8,
    deadline: Option<Instant>,
    watch_interrupt: bool,
}

/// A cheap, cloneable cooperative-cancellation token.
///
/// The hot path ([`CancelToken::is_cancelled`]) is a single relaxed
/// atomic load once the token has tripped; before that it additionally
/// compares against the optional deadline and the process-wide SIGINT
/// flag, latching the first reason observed so later polls stay cheap
/// and [`CancelToken::reason`] is stable.
///
/// Clones share state: cancelling one cancels all.
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

impl CancelToken {
    /// A token that can only be cancelled explicitly (never by time or
    /// signal). This is the default used by unbounded runs; its checks
    /// are a single relaxed load.
    pub fn never() -> Self {
        CancelToken {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                reason: AtomicU8::new(REASON_NONE),
                deadline: None,
                watch_interrupt: false,
            }),
        }
    }

    /// A token that trips once `deadline` elapses (measured from now)
    /// and, when `watch_interrupt` is set, when the process-wide SIGINT
    /// flag (see [`install_termination_handlers`]) is raised.
    pub fn bounded(deadline: Option<Duration>, watch_interrupt: bool) -> Self {
        CancelToken {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                reason: AtomicU8::new(REASON_NONE),
                deadline: deadline.map(|d| Instant::now() + d),
                watch_interrupt,
            }),
        }
    }

    /// Polls the token. Latches (and keeps) the first reason observed.
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        if self.inner.watch_interrupt && interrupted() {
            self.cancel(CancelReason::Interrupt);
            return true;
        }
        if let Some(deadline) = self.inner.deadline {
            if Instant::now() >= deadline {
                self.cancel(CancelReason::Deadline);
                return true;
            }
        }
        false
    }

    /// Trips the token with `reason`. The first reason wins; later calls
    /// only keep the flag set.
    pub fn cancel(&self, reason: CancelReason) {
        let code = match reason {
            CancelReason::Deadline => REASON_DEADLINE,
            CancelReason::Interrupt => REASON_INTERRUPT,
        };
        let _ = self.inner.reason.compare_exchange(
            REASON_NONE,
            code,
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// The latched reason, if the token has tripped.
    pub fn reason(&self) -> Option<CancelReason> {
        match self.inner.reason.load(Ordering::Relaxed) {
            REASON_DEADLINE => Some(CancelReason::Deadline),
            REASON_INTERRUPT => Some(CancelReason::Interrupt),
            _ => None,
        }
    }

    /// Whether this token can ever trip on its own (deadline or SIGINT).
    /// Tokens for which this is false let callers skip bookkeeping that
    /// only matters when a run may be cut short.
    pub fn is_armed(&self) -> bool {
        self.inner.deadline.is_some() || self.inner.watch_interrupt
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::never()
    }
}

impl fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CancelToken")
            .field("cancelled", &self.inner.cancelled.load(Ordering::Relaxed))
            .field("reason", &self.reason())
            .field("deadline", &self.inner.deadline.is_some())
            .field("watch_interrupt", &self.inner.watch_interrupt)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// SIGINT / SIGTERM

static SIGINT_FLAG: AtomicBool = AtomicBool::new(false);

/// Whether a termination signal (SIGINT or SIGTERM) has been received
/// since [`install_termination_handlers`] (or [`raise_interrupt`]) was
/// called.
pub fn interrupted() -> bool {
    SIGINT_FLAG.load(Ordering::Relaxed)
}

/// Sets the process-wide interrupt flag, exactly as the signal handler
/// would. For tests and for embedders with their own signal handling.
pub fn raise_interrupt() {
    SIGINT_FLAG.store(true, Ordering::Relaxed);
}

/// Clears the interrupt flag (between runs in one process, or in tests).
pub fn clear_interrupt() {
    SIGINT_FLAG.store(false, Ordering::Relaxed);
}

/// Installs SIGINT *and* SIGTERM handlers that set the flag behind
/// [`interrupted`]. Both signals mean the same thing to a run — stop at
/// the next safe point, checkpoint, write a valid partial report, exit
/// 0 — so a process manager's `kill -TERM` is as lossless as Ctrl-C.
///
/// The handler is a single store to a static `AtomicBool` — the only
/// async-signal-safe action taken — and the run observes it at the next
/// cooperative check. Returns `false` on platforms without `signal(2)`
/// (the flag then only ever trips via [`raise_interrupt`]).
#[cfg(unix)]
pub fn install_termination_handlers() -> bool {
    // The one unsafe block in the workspace: registering handlers via
    // the C `signal` function std already links. No libc crate needed.
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    extern "C" fn on_signal(_sig: i32) {
        SIGINT_FLAG.store(true, Ordering::Relaxed);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
    true
}

/// Installs SIGINT/SIGTERM handlers (no-op off Unix; returns `false`).
#[cfg(not(unix))]
pub fn install_termination_handlers() -> bool {
    false
}

// ---------------------------------------------------------------------------
// Logical budgets

const UNLIMITED: u64 = u64::MAX;

/// A deterministic logical evaluation budget (`--max-evals`).
///
/// Units are taken serially, in the engine's canonical probe order —
/// one per *feasible candidate slot*, whether it is answered by a cache
/// hit, coalesced with a twin, or simulated. Consumption is therefore
/// identical across thread counts and with the cache on or off, which is
/// what makes budget-truncated runs bit-identical and resumable.
pub struct EvalBudget {
    remaining: AtomicU64,
}

impl EvalBudget {
    /// A budget that never runs out.
    pub fn unlimited() -> Self {
        EvalBudget {
            remaining: AtomicU64::new(UNLIMITED),
        }
    }

    /// A budget of exactly `n` evaluations.
    pub fn limited(n: u64) -> Self {
        EvalBudget {
            remaining: AtomicU64::new(n.min(UNLIMITED - 1)),
        }
    }

    /// Takes one unit. Returns `false` (without consuming anything) when
    /// the budget is exhausted.
    pub fn take(&self) -> bool {
        let mut cur = self.remaining.load(Ordering::Relaxed);
        loop {
            if cur == UNLIMITED {
                return true;
            }
            if cur == 0 {
                return false;
            }
            match self.remaining.compare_exchange_weak(
                cur,
                cur - 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Remaining units, or `None` for an unlimited budget.
    pub fn remaining(&self) -> Option<u64> {
        match self.remaining.load(Ordering::Relaxed) {
            UNLIMITED => None,
            n => Some(n),
        }
    }

    /// Whether the next [`EvalBudget::take`] would fail.
    pub fn exhausted(&self) -> bool {
        self.remaining.load(Ordering::Relaxed) == 0
    }
}

impl fmt::Debug for EvalBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.remaining() {
            None => f.write_str("EvalBudget(unlimited)"),
            Some(n) => write!(f, "EvalBudget({n})"),
        }
    }
}

// ---------------------------------------------------------------------------
// Candidate watchdog

struct LaneState {
    /// Microseconds (since the watchdog's epoch) at which the lane
    /// expires; 0 means idle.
    deadline_us: AtomicU64,
    expired: AtomicBool,
}

struct WatchdogShared {
    epoch: Instant,
    timeout: Duration,
    stop: AtomicBool,
    lanes: Mutex<Vec<Arc<LaneState>>>,
}

impl WatchdogShared {
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }
}

/// Guards one in-flight evaluation under a [`Watchdog`].
///
/// Dropping the guard (the evaluation finished, however it finished)
/// retires the lane; the lane's slot is reused by later evaluations.
pub struct LaneGuard {
    lane: Arc<LaneState>,
    epoch: Instant,
}

impl LaneGuard {
    /// Whether this evaluation is over its per-candidate timeout.
    ///
    /// Checks the watchdog thread's flag (a relaxed load) and, while the
    /// flag is clear, the lane's own deadline — so a cooperative poll
    /// observes expiry promptly even between watchdog scans. The
    /// background thread exists for the lanes that *cannot* poll: it
    /// keeps flagging wedged lanes so their expiry is already latched
    /// whenever they next become observable.
    pub fn expired(&self) -> bool {
        if self.lane.expired.load(Ordering::Relaxed) {
            return true;
        }
        let deadline = self.lane.deadline_us.load(Ordering::Relaxed);
        if deadline != 0 && self.epoch.elapsed().as_micros() as u64 >= deadline {
            self.lane.expired.store(true, Ordering::Relaxed);
            return true;
        }
        false
    }
}

impl Drop for LaneGuard {
    fn drop(&mut self) {
        self.lane.deadline_us.store(0, Ordering::Relaxed);
        self.lane.expired.store(false, Ordering::Relaxed);
    }
}

/// A background thread enforcing `--candidate-timeout` over the worker
/// lanes of a parallel evaluation batch.
///
/// Workers register each evaluation via [`Watchdog::watch`]; the thread
/// periodically scans the lanes and flags any that have been running
/// longer than the timeout. Reclamation stays cooperative: the flagged
/// evaluation notices via [`LaneGuard::expired`] at its next cancellation
/// check and returns early, and the engine substitutes a degraded result.
pub struct Watchdog {
    shared: Arc<WatchdogShared>,
    handle: Option<JoinHandle<()>>,
}

impl Watchdog {
    /// Starts the watchdog thread with the given per-candidate timeout.
    pub fn start(timeout: Duration) -> Self {
        let shared = Arc::new(WatchdogShared {
            epoch: Instant::now(),
            timeout,
            stop: AtomicBool::new(false),
            lanes: Mutex::new(Vec::new()),
        });
        let poll = (timeout / 4).clamp(Duration::from_millis(1), Duration::from_millis(50));
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("mce-watchdog".into())
            .spawn(move || {
                while !thread_shared.stop.load(Ordering::Relaxed) {
                    let now = thread_shared.now_us();
                    for lane in thread_shared.lanes.lock().unwrap().iter() {
                        let deadline = lane.deadline_us.load(Ordering::Relaxed);
                        if deadline != 0 && now >= deadline {
                            lane.expired.store(true, Ordering::Relaxed);
                        }
                    }
                    std::thread::sleep(poll);
                }
            })
            .expect("spawn watchdog thread");
        Watchdog {
            shared,
            handle: Some(handle),
        }
    }

    /// The configured per-candidate timeout.
    pub fn timeout(&self) -> Duration {
        self.shared.timeout
    }

    /// Registers the calling worker's current evaluation. The returned
    /// guard must live for the duration of the evaluation.
    pub fn watch(&self) -> LaneGuard {
        let deadline = self
            .shared
            .now_us()
            .saturating_add(self.shared.timeout.as_micros() as u64)
            .max(1);
        let mut lanes = self.shared.lanes.lock().unwrap();
        // Reuse a retired lane (only the registry holds it) so the vector
        // stays bounded by the peak number of concurrent evaluations.
        for lane in lanes.iter() {
            if Arc::strong_count(lane) == 1 && lane.deadline_us.load(Ordering::Relaxed) == 0 {
                lane.expired.store(false, Ordering::Relaxed);
                lane.deadline_us.store(deadline, Ordering::Relaxed);
                return LaneGuard {
                    lane: Arc::clone(lane),
                    epoch: self.shared.epoch,
                };
            }
        }
        let lane = Arc::new(LaneState {
            deadline_us: AtomicU64::new(deadline),
            expired: AtomicBool::new(false),
        });
        lanes.push(Arc::clone(&lane));
        LaneGuard {
            lane,
            epoch: self.shared.epoch,
        }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl fmt::Debug for Watchdog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Watchdog")
            .field("timeout", &self.shared.timeout)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Bounds: everything the engine needs, bundled

/// Why a bounded run stopped before finishing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The logical `--max-evals` budget ran out.
    MaxEvals,
    /// The logical `--max-archs` budget ran out.
    MaxArchs,
    /// The wall-clock `--deadline` elapsed.
    Deadline,
    /// SIGINT (Ctrl-C).
    Interrupt,
}

impl StopReason {
    /// Stable lower-case label used in status lines and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            StopReason::MaxEvals => "max-evals",
            StopReason::MaxArchs => "max-archs",
            StopReason::Deadline => "deadline",
            StopReason::Interrupt => "interrupt",
        }
    }

    /// Whether this stop is a pure function of the run's inputs (logical
    /// budgets) rather than of elapsed time.
    pub fn is_deterministic(self) -> bool {
        matches!(self, StopReason::MaxEvals | StopReason::MaxArchs)
    }
}

impl From<CancelReason> for StopReason {
    fn from(reason: CancelReason) -> Self {
        match reason {
            CancelReason::Deadline => StopReason::Deadline,
            CancelReason::Interrupt => StopReason::Interrupt,
        }
    }
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The bundle of bounds an evaluation pipeline runs under. Cloneable and
/// cheap to pass around; all members share state across clones.
#[derive(Debug, Clone, Default)]
pub struct Bounds {
    /// Global cooperative cancellation (deadline and/or SIGINT).
    pub token: CancelToken,
    /// Logical evaluation budget, shared across phases and resume replay.
    pub budget: Option<Arc<EvalBudget>>,
    /// Cap on Phase-I memory architectures.
    pub max_archs: Option<usize>,
    /// Per-candidate wall-clock watchdog.
    pub watchdog: Option<Arc<Watchdog>>,
}

impl Bounds {
    /// Bounds that never constrain anything (the default).
    pub fn none() -> Self {
        Bounds::default()
    }

    /// Whether any bound is set at all. Unbounded pipelines skip the
    /// bookkeeping this crate adds.
    pub fn is_active(&self) -> bool {
        self.token.is_armed()
            || self.budget.is_some()
            || self.max_archs.is_some()
            || self.watchdog.is_some()
    }

    /// Takes one unit of the logical budget (always succeeds when no
    /// budget is set).
    pub fn take_eval(&self) -> bool {
        self.budget.as_ref().is_none_or(|b| b.take())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_token_stays_clear_until_cancelled() {
        let t = CancelToken::never();
        assert!(!t.is_cancelled());
        assert!(!t.is_armed());
        assert_eq!(t.reason(), None);
        t.cancel(CancelReason::Deadline);
        assert!(t.is_cancelled());
        assert_eq!(t.reason(), Some(CancelReason::Deadline));
        // First reason wins.
        t.cancel(CancelReason::Interrupt);
        assert_eq!(t.reason(), Some(CancelReason::Deadline));
    }

    #[test]
    fn clones_share_state() {
        let a = CancelToken::never();
        let b = a.clone();
        b.cancel(CancelReason::Interrupt);
        assert!(a.is_cancelled());
        assert_eq!(a.reason(), Some(CancelReason::Interrupt));
    }

    #[test]
    fn deadline_token_trips_after_elapsing() {
        let t = CancelToken::bounded(Some(Duration::from_millis(5)), false);
        assert!(t.is_armed());
        let start = Instant::now();
        while !t.is_cancelled() {
            assert!(start.elapsed() < Duration::from_secs(5), "never tripped");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(t.reason(), Some(CancelReason::Deadline));
    }

    #[test]
    fn interrupt_flag_trips_watching_tokens_only() {
        clear_interrupt();
        let watching = CancelToken::bounded(None, true);
        let ignoring = CancelToken::never();
        assert!(!watching.is_cancelled());
        raise_interrupt();
        assert!(watching.is_cancelled());
        assert_eq!(watching.reason(), Some(CancelReason::Interrupt));
        assert!(!ignoring.is_cancelled());
        clear_interrupt();
    }

    #[test]
    fn budget_counts_down_and_stops() {
        let b = EvalBudget::limited(3);
        assert_eq!(b.remaining(), Some(3));
        assert!(b.take() && b.take() && b.take());
        assert!(!b.take());
        assert!(b.exhausted());
        assert_eq!(b.remaining(), Some(0));

        let u = EvalBudget::unlimited();
        for _ in 0..1000 {
            assert!(u.take());
        }
        assert_eq!(u.remaining(), None);
        assert!(!u.exhausted());
    }

    #[test]
    fn watchdog_flags_overrunning_lane_and_reuses_slots() {
        let w = Watchdog::start(Duration::from_millis(10));
        let lane = w.watch();
        assert!(!lane.expired());
        let start = Instant::now();
        while !lane.expired() {
            assert!(start.elapsed() < Duration::from_secs(5), "never expired");
            std::thread::sleep(Duration::from_millis(1));
        }
        drop(lane);
        // A fresh registration reuses the retired slot and starts clear.
        let lane2 = w.watch();
        assert!(!lane2.expired());
        assert_eq!(w.shared.lanes.lock().unwrap().len(), 1);
    }

    #[test]
    fn fast_evaluations_never_expire() {
        let w = Watchdog::start(Duration::from_secs(3600));
        for _ in 0..100 {
            let lane = w.watch();
            assert!(!lane.expired());
        }
    }

    #[test]
    fn bounds_default_is_inactive() {
        let b = Bounds::none();
        assert!(!b.is_active());
        assert!(b.take_eval());
        let bounded = Bounds {
            budget: Some(Arc::new(EvalBudget::limited(1))),
            ..Bounds::none()
        };
        assert!(bounded.is_active());
        assert!(bounded.take_eval());
        assert!(!bounded.take_eval());
    }

    #[test]
    fn stop_reason_labels_and_determinism() {
        assert_eq!(StopReason::MaxEvals.as_str(), "max-evals");
        assert!(StopReason::MaxEvals.is_deterministic());
        assert!(StopReason::MaxArchs.is_deterministic());
        assert!(!StopReason::Deadline.is_deterministic());
        assert!(!StopReason::Interrupt.is_deterministic());
        assert_eq!(
            StopReason::from(CancelReason::Interrupt),
            StopReason::Interrupt
        );
    }
}
