//! Event sinks: where recorded events go.
//!
//! * [`MemorySink`] — buffers events for tests and programmatic inspection.
//! * [`JsonLinesSink`] — streams one JSON object per event to any writer.
//! * [`ChromeTraceSink`] — buffers events and renders them in the Chrome
//!   trace-event format, openable in `chrome://tracing` or
//!   [Perfetto](https://ui.perfetto.dev): phase spans on lane 0, one lane
//!   per worker thread, counters as counter tracks.
//! * [`ProgressReporter`] — rate-limited human-readable progress lines
//!   (with throughput and ETA) plus messages, on stderr.
//! * [`MultiSink`] — fans every event out to several sinks.
//! * [`NullSink`] — discards events; installed when only the recorder's
//!   counter/gauge/histogram registries are wanted (e.g. `--report-out`
//!   without any trace sink).

use crate::event::{escape_json, Event, EventKind};
use std::collections::BTreeSet;
use std::io::Write;
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// A destination for recorded events. Implementations must be cheap and
/// non-blocking enough to sit on the exploration's coordinating thread.
pub trait Sink: Send + Sync {
    /// Receives one event. Events arrive in `seq` order per thread; see
    /// [`Event::schedule_dependent`] for which events may interleave.
    fn record(&self, event: &Event);
}

// ---------------------------------------------------------------------------
// MemorySink
// ---------------------------------------------------------------------------

/// Buffers every event in memory; the test and inspection sink.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the buffered events, leaving the sink empty.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut self.events.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// A copy of the buffered events.
    pub fn snapshot(&self) -> Vec<Event> {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }
}

impl Sink for MemorySink {
    fn record(&self, event: &Event) {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(event.clone());
    }
}

// ---------------------------------------------------------------------------
// JsonLinesSink
// ---------------------------------------------------------------------------

/// Streams every event as one JSON object per line to a writer.
pub struct JsonLinesSink {
    writer: Mutex<Box<dyn Write + Send>>,
}

impl JsonLinesSink {
    /// Wraps `writer`; every recorded event becomes one line.
    pub fn new(writer: Box<dyn Write + Send>) -> Self {
        JsonLinesSink {
            writer: Mutex::new(writer),
        }
    }

    /// Flushes the underlying writer.
    pub fn flush(&self) -> std::io::Result<()> {
        self.writer
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .flush()
    }
}

impl Sink for JsonLinesSink {
    fn record(&self, event: &Event) {
        let mut w = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        // Log-sink principle: never panic the exploration over a full disk.
        let _ = writeln!(w, "{}", event.to_json_line());
    }
}

// ---------------------------------------------------------------------------
// ChromeTraceSink
// ---------------------------------------------------------------------------

/// Buffers events and renders the Chrome trace-event JSON format.
#[derive(Debug, Default)]
pub struct ChromeTraceSink {
    events: Mutex<Vec<Event>>,
}

impl ChromeTraceSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Renders everything recorded so far as a Chrome trace JSON document
    /// (`{"traceEvents": [...]}`), with phase spans on lane 0, worker
    /// spans on their own lanes, and counters/gauges as counter tracks.
    pub fn to_chrome_json(&self) -> String {
        let events = self
            .events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        render_chrome_trace(&events)
    }

    /// Writes the rendered trace to `path` atomically (temp file in the
    /// same directory, then rename), so a crash mid-write never leaves a
    /// truncated trace behind.
    pub fn write_to_file(&self, path: &std::path::Path) -> std::io::Result<()> {
        let mut tmp_name = path
            .file_name()
            .map(|n| n.to_os_string())
            .unwrap_or_else(|| std::ffi::OsString::from("trace"));
        tmp_name.push(".tmp");
        let tmp = path.with_file_name(tmp_name);
        let write =
            std::fs::write(&tmp, self.to_chrome_json()).and_then(|()| std::fs::rename(&tmp, path));
        if write.is_err() {
            std::fs::remove_file(&tmp).ok();
        }
        write
    }
}

impl Sink for ChromeTraceSink {
    fn record(&self, event: &Event) {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(event.clone());
    }
}

/// Renders a slice of events in the Chrome trace-event format.
///
/// Mapping: [`EventKind::SpanBegin`]/[`EventKind::SpanEnd`] become `B`/`E`
/// duration events on thread 0; [`EventKind::Worker`] becomes a complete
/// (`X`) event on its lane; counters and gauges become `C` counter events;
/// messages become instant (`i`) events; progress ticks are elided (they
/// exist for live reporting, not for the flame chart).
pub fn render_chrome_trace(events: &[Event]) -> String {
    let mut rows: Vec<String> = Vec::new();
    let mut lanes: BTreeSet<u32> = BTreeSet::new();
    lanes.insert(0);
    for ev in events {
        match &ev.kind {
            EventKind::SpanBegin { name } => rows.push(format!(
                "{{\"name\":\"{name}\",\"cat\":\"phase\",\"ph\":\"B\",\
                 \"ts\":{},\"pid\":1,\"tid\":0}}",
                ev.t_us
            )),
            EventKind::SpanEnd { name, .. } => rows.push(format!(
                "{{\"name\":\"{name}\",\"cat\":\"phase\",\"ph\":\"E\",\
                 \"ts\":{},\"pid\":1,\"tid\":0}}",
                ev.t_us
            )),
            EventKind::Worker {
                name,
                lane,
                start_us,
                dur_us,
                busy_us,
                items,
            } => {
                lanes.insert(*lane);
                rows.push(format!(
                    "{{\"name\":\"{name}\",\"cat\":\"worker\",\"ph\":\"X\",\
                     \"ts\":{start_us},\"dur\":{dur_us},\"pid\":1,\"tid\":{lane},\
                     \"args\":{{\"items\":{items},\"busy_us\":{busy_us}}}}}"
                ));
            }
            EventKind::Counter { name, value } | EventKind::Gauge { name, value } => {
                rows.push(format!(
                    "{{\"name\":\"{name}\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\
                     \"args\":{{\"value\":{value}}}}}",
                    ev.t_us
                ));
            }
            EventKind::Histogram {
                name,
                count,
                p50,
                p90,
                p99,
                ..
            } => {
                rows.push(format!(
                    "{{\"name\":\"{name}\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\
                     \"args\":{{\"count\":{count},\"p50\":{p50},\"p90\":{p90},\"p99\":{p99}}}}}",
                    ev.t_us
                ));
            }
            EventKind::Progress { .. } => {}
            EventKind::Message { level, text } => rows.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"{level}\",\"ph\":\"i\",\
                 \"ts\":{},\"pid\":1,\"tid\":0,\"s\":\"g\"}}",
                escape_json(text),
                ev.t_us
            )),
        }
    }
    // Name the lanes so Perfetto shows "main" / "worker-N" instead of bare
    // thread ids.
    for lane in lanes {
        let name = if lane == 0 {
            "main".to_owned()
        } else {
            format!("worker-{lane}")
        };
        rows.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{lane},\
             \"args\":{{\"name\":\"{name}\"}}}}"
        ));
    }
    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(&rows.join(",\n"));
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

// ---------------------------------------------------------------------------
// ProgressReporter
// ---------------------------------------------------------------------------

/// Per-region throughput state for ETA computation.
#[derive(Debug)]
struct ProgressState {
    name: &'static str,
    started: Instant,
    last_print: Option<Instant>,
}

/// Prints rate-limited progress lines (`done/total`, rate, ETA) and
/// messages to stderr. Stdout stays untouched, reserved for
/// machine-readable command output.
pub struct ProgressReporter {
    min_interval: Duration,
    state: Mutex<Vec<ProgressState>>,
}

impl Default for ProgressReporter {
    fn default() -> Self {
        Self::new(Duration::from_millis(200))
    }
}

impl ProgressReporter {
    /// Creates a reporter printing at most one line per region per
    /// `min_interval` (completion lines always print).
    pub fn new(min_interval: Duration) -> Self {
        ProgressReporter {
            min_interval,
            state: Mutex::new(Vec::new()),
        }
    }

    fn print_progress(&self, name: &'static str, done: u64, total: u64) {
        let now = Instant::now();
        let (elapsed, should_print) = {
            let mut states = self.state.lock().unwrap_or_else(PoisonError::into_inner);
            let state = match states.iter_mut().find(|s| s.name == name) {
                Some(s) => s,
                None => {
                    states.push(ProgressState {
                        name,
                        started: now,
                        last_print: None,
                    });
                    states.last_mut().expect("just pushed")
                }
            };
            let due = done >= total
                || state
                    .last_print
                    .map(|t| now.duration_since(t) >= self.min_interval)
                    .unwrap_or(true);
            if due {
                state.last_print = Some(now);
            }
            (now.duration_since(state.started), due)
        };
        if !should_print {
            return;
        }
        let secs = elapsed.as_secs_f64();
        let rate = if secs > 0.0 { done as f64 / secs } else { 0.0 };
        let eta = if rate > 0.0 && total >= done {
            (total - done) as f64 / rate
        } else {
            0.0
        };
        let pct = if total > 0 {
            done as f64 / total as f64 * 100.0
        } else {
            100.0
        };
        eprintln!("[{name}] {done}/{total} ({pct:.0}%)  {rate:.0}/s  eta {eta:.1}s");
    }
}

impl Sink for ProgressReporter {
    fn record(&self, event: &Event) {
        match &event.kind {
            EventKind::Progress { name, done, total } => {
                self.print_progress(name, *done, *total);
            }
            EventKind::Message { level, text } => {
                eprintln!("[{level}] {text}");
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// NullSink
// ---------------------------------------------------------------------------

/// Discards every event. Installing it still turns the recorder on, so the
/// counter, gauge and histogram registries accumulate — the cheapest way to
/// collect run metrics (for a run-report summary) without buffering or
/// writing a trace.
#[derive(Debug, Default)]
pub struct NullSink;

impl NullSink {
    /// Creates the sink.
    pub fn new() -> Self {
        NullSink
    }
}

impl Sink for NullSink {
    fn record(&self, _event: &Event) {}
}

// ---------------------------------------------------------------------------
// MultiSink
// ---------------------------------------------------------------------------

/// Fans every event out to several sinks in order.
pub struct MultiSink {
    sinks: Vec<std::sync::Arc<dyn Sink>>,
}

impl MultiSink {
    /// Creates a fan-out over `sinks`.
    pub fn new(sinks: Vec<std::sync::Arc<dyn Sink>>) -> Self {
        MultiSink { sinks }
    }
}

impl Sink for MultiSink {
    fn record(&self, event: &Event) {
        for sink in &self.sinks {
            sink.record(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Level;
    use std::sync::Arc;

    fn sample_events() -> Vec<Event> {
        let kinds = vec![
            EventKind::SpanBegin { name: "explore" },
            EventKind::SpanBegin { name: "estimate" },
            EventKind::Worker {
                name: "estimate",
                lane: 1,
                start_us: 10,
                dur_us: 90,
                busy_us: 80,
                items: 42,
            },
            EventKind::Worker {
                name: "estimate",
                lane: 2,
                start_us: 12,
                dur_us: 88,
                busy_us: 70,
                items: 38,
            },
            EventKind::Counter {
                name: "conex.candidates_enumerated",
                value: 80,
            },
            EventKind::Gauge {
                name: "sim.posted_backlog_highwater",
                value: 512,
            },
            EventKind::Progress {
                name: "estimate",
                done: 40,
                total: 80,
            },
            EventKind::Message {
                level: Level::Info,
                text: "phase \"estimate\" done".to_owned(),
            },
            EventKind::SpanEnd {
                name: "estimate",
                dur_us: 100,
            },
            EventKind::SpanEnd {
                name: "explore",
                dur_us: 200,
            },
        ];
        kinds
            .into_iter()
            .enumerate()
            .map(|(i, kind)| Event {
                seq: i as u64,
                t_us: 10 * i as u64,
                kind,
            })
            .collect()
    }

    fn trace_events(json: &str) -> Vec<crate::json::Value> {
        let parsed = crate::json::parse(json).expect("chrome trace must parse");
        parsed
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents array")
            .to_vec()
    }

    fn ph(e: &crate::json::Value) -> String {
        e.get("ph").and_then(|v| v.as_str()).unwrap().to_owned()
    }

    #[test]
    fn chrome_trace_is_valid_json_with_expected_phases() {
        let events = trace_events(&render_chrome_trace(&sample_events()));
        let phases: Vec<String> = events.iter().map(ph).collect();
        for expected in ["B", "E", "X", "C", "M"] {
            assert!(
                phases.iter().any(|p| p == expected),
                "missing ph {expected}"
            );
        }
        // Worker lanes land on their own tids, named for Perfetto.
        let tids: BTreeSet<u64> = events
            .iter()
            .filter(|e| ph(e) == "X")
            .map(|e| e.get("tid").and_then(|v| v.as_u64()).unwrap())
            .collect();
        assert_eq!(tids, BTreeSet::from([1, 2]));
        let names: Vec<String> = events
            .iter()
            .filter(|e| ph(e) == "M")
            .map(|e| {
                e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(|v| v.as_str())
                    .unwrap()
                    .to_owned()
            })
            .collect();
        for lane in ["main", "worker-1", "worker-2"] {
            assert!(names.iter().any(|n| n == lane), "missing lane {lane}");
        }
    }

    #[test]
    fn chrome_trace_balances_begin_end() {
        let events = trace_events(&render_chrome_trace(&sample_events()));
        let begins = events.iter().filter(|e| ph(e) == "B").count();
        let ends = events.iter().filter(|e| ph(e) == "E").count();
        assert_eq!(begins, ends);
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sink = JsonLinesSink::new(Box::new(SharedBuf(buf.clone())));
        for ev in sample_events() {
            sink.record(&ev);
        }
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), sample_events().len());
        for line in lines {
            crate::json::parse(line).unwrap_or_else(|e| panic!("bad line {line}: {e}"));
        }
    }

    #[test]
    fn memory_sink_take_empties() {
        let sink = MemorySink::new();
        for ev in sample_events() {
            sink.record(&ev);
        }
        assert_eq!(sink.snapshot().len(), sample_events().len());
        assert_eq!(sink.take().len(), sample_events().len());
        assert!(sink.take().is_empty());
    }

    #[test]
    fn multi_sink_fans_out() {
        let a = Arc::new(MemorySink::new());
        let b = Arc::new(MemorySink::new());
        let multi = MultiSink::new(vec![a.clone(), b.clone()]);
        for ev in sample_events() {
            multi.record(&ev);
        }
        assert_eq!(a.take().len(), b.take().len());
    }

    #[test]
    fn progress_reporter_rate_limits() {
        // Zero interval prints everything; a huge interval prints only the
        // first tick and the completion tick. We can't capture stderr here,
        // so exercise the state machine via print_progress directly and
        // assert it doesn't panic across edge cases.
        let r = ProgressReporter::new(Duration::from_secs(3600));
        r.print_progress("x", 0, 0); // total 0 edge case
        r.print_progress("x", 1, 100);
        r.print_progress("x", 2, 100);
        r.print_progress("x", 100, 100); // completion always prints
    }
}
