//! A minimal JSON parser, used to validate the traces this crate emits.
//!
//! The observability layer is deliberately zero-dependency, so it carries
//! its own strict JSON reader instead of pulling in `serde_json`. It
//! parses the full JSON grammar into a small [`Value`] tree — enough to
//! check that a Chrome trace or a JSON-lines log is well-formed and to
//! inspect its structure in tests. It is a validator, not a performance
//! parser; use it on traces, not on hot paths.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object. `BTreeMap` keeps key iteration deterministic.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The value under `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an integer, if this is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }
}

/// A parse failure, with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses `input` as one JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates are accepted as replacement chars —
                            // this is a validator, not a transcoder.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(b) => {
                    // Consume one multi-byte UTF-8 scalar. Validate only the
                    // 2-4 byte sequence, not the whole remaining input — the
                    // latter makes string parsing quadratic.
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (self.pos + len).min(self.bytes.len());
                    let ch = std::str::from_utf8(&self.bytes[self.pos..end])
                        .map_err(|_| self.err("invalid UTF-8"))?
                        .chars()
                        .next()
                        .expect("peek saw a byte");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" 42 ").unwrap(), Value::Number(42.0));
        assert_eq!(parse("-1.5e2").unwrap(), Value::Number(-150.0));
        assert_eq!(
            parse("\"a\\nb\"").unwrap(),
            Value::String("a\nb".to_owned())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,{"b":"c"},null],"d":{}}"#).unwrap();
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[1].get("b").unwrap().as_str(), Some("c"));
        assert_eq!(v.get("d"), Some(&Value::Object(BTreeMap::new())));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\" 1}",
            "[1 2]",
            "\"\u{1}\"",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(
            parse("\"\\u0041\\u00e9\"").unwrap(),
            Value::String("Aé".to_owned())
        );
    }

    #[test]
    fn as_u64_accepts_only_whole_numbers() {
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("7.5").unwrap().as_u64(), None);
        assert_eq!(parse("-7").unwrap().as_u64(), None);
    }
}
