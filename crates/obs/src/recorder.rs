//! The global recorder: a process-wide sink slot plus the counter/gauge
//! registry, designed so the disabled path costs one relaxed atomic load.
//!
//! No sink installed (the default) means every instrumentation call —
//! [`span`], [`counter_add`], [`progress`] — short-circuits on
//! [`tracing_enabled`] before touching any lock, formatting anything or
//! reading the clock. Installing a sink with [`install`] resets the
//! sequence counter, the epoch and the counter registry, so each run's
//! event log starts from a clean slate.

use crate::event::{Event, EventKind, Level};
use crate::hist::{HistRegistry, Histogram, HistogramSummary};
use crate::sink::Sink;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError, RwLock};
use std::time::Instant;

/// The installed sink plus the timestamp origin of its run.
struct Installed {
    sink: Arc<dyn Sink>,
    epoch: Instant,
}

/// Process-wide recorder state.
struct Global {
    enabled: AtomicBool,
    level: AtomicU8,
    seq: AtomicU64,
    installed: RwLock<Option<Installed>>,
    counters: Mutex<BTreeMap<&'static str, u64>>,
    gauges: Mutex<BTreeMap<&'static str, u64>>,
    hists: HistRegistry,
}

fn global() -> &'static Global {
    static GLOBAL: OnceLock<Global> = OnceLock::new();
    GLOBAL.get_or_init(|| Global {
        enabled: AtomicBool::new(false),
        level: AtomicU8::new(level_to_u8(Level::Info)),
        seq: AtomicU64::new(0),
        installed: RwLock::new(None),
        counters: Mutex::new(BTreeMap::new()),
        gauges: Mutex::new(BTreeMap::new()),
        hists: HistRegistry::new(),
    })
}

fn level_to_u8(level: Level) -> u8 {
    match level {
        Level::Info => 0,
        Level::Debug => 1,
    }
}

/// Installs `sink` as the process-wide event sink, replacing any previous
/// one. Resets sequence numbers, the timestamp epoch and all counters and
/// gauges, so the new sink observes a fresh run.
pub fn install(sink: Arc<dyn Sink>) {
    let g = global();
    {
        let mut slot = g.installed.write().unwrap_or_else(PoisonError::into_inner);
        g.seq.store(0, Ordering::SeqCst);
        reset_counters();
        *slot = Some(Installed {
            sink,
            epoch: Instant::now(),
        });
    }
    g.enabled.store(true, Ordering::SeqCst);
}

/// Removes the installed sink (instrumentation returns to the no-op fast
/// path) and returns it, so callers can flush file-backed sinks.
pub fn uninstall() -> Option<Arc<dyn Sink>> {
    let g = global();
    g.enabled.store(false, Ordering::SeqCst);
    let mut slot = g.installed.write().unwrap_or_else(PoisonError::into_inner);
    slot.take().map(|i| i.sink)
}

/// True when a sink is installed. The disabled path of every
/// instrumentation call is exactly this one relaxed atomic load.
#[inline]
pub fn tracing_enabled() -> bool {
    global().enabled.load(Ordering::Relaxed)
}

/// Sets the message verbosity threshold ([`Level::Debug`] passes both
/// levels, [`Level::Info`] drops debug messages).
pub fn set_level(level: Level) {
    global().level.store(level_to_u8(level), Ordering::Relaxed);
}

/// True when messages at `level` pass the current verbosity threshold.
pub fn level_enabled(level: Level) -> bool {
    level_to_u8(level) <= global().level.load(Ordering::Relaxed)
}

/// Reads the `MCE_LOG` environment variable (`off`, `info` or `debug`) and
/// applies it as the message verbosity. Unset or unrecognized values keep
/// the default ([`Level::Info`]). Returns the applied level, or `None` for
/// `off`.
pub fn init_level_from_env() -> Option<Level> {
    match std::env::var("MCE_LOG").ok().as_deref() {
        Some("debug") => {
            set_level(Level::Debug);
            Some(Level::Debug)
        }
        Some("off") => None,
        _ => {
            set_level(Level::Info);
            Some(Level::Info)
        }
    }
}

/// Microseconds since the current sink was installed (0 when disabled).
pub fn now_us() -> u64 {
    let g = global();
    if !g.enabled.load(Ordering::Relaxed) {
        return 0;
    }
    let slot = g.installed.read().unwrap_or_else(PoisonError::into_inner);
    slot.as_ref()
        .map(|i| i.epoch.elapsed().as_micros() as u64)
        .unwrap_or(0)
}

/// Stamps `kind` with the next sequence number and the current timestamp
/// and hands it to the installed sink. No-op when disabled.
pub fn emit(kind: EventKind) {
    let g = global();
    if !g.enabled.load(Ordering::Relaxed) {
        return;
    }
    let slot = g.installed.read().unwrap_or_else(PoisonError::into_inner);
    if let Some(installed) = slot.as_ref() {
        let event = Event {
            seq: g.seq.fetch_add(1, Ordering::Relaxed),
            t_us: installed.epoch.elapsed().as_micros() as u64,
            kind,
        };
        installed.sink.record(&event);
    }
}

/// A phase-scoped timer: emits [`EventKind::SpanBegin`] on creation and
/// [`EventKind::SpanEnd`] (with the measured duration) on drop.
///
/// Spans nest lexically — create them on the coordinating thread in the
/// order the phases run, and drop order closes them innermost-first.
#[must_use = "a span records its duration when dropped"]
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
}

impl SpanGuard {
    /// The span's name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let dur_us = start.elapsed().as_micros() as u64;
            // Span durations also feed the histogram registry under the
            // span's name, so per-phase wall time (count + total + tail
            // quantiles across repeated phases) is available to run
            // reports without replaying the event stream.
            histogram_record(self.name, dur_us);
            emit(EventKind::SpanEnd {
                name: self.name,
                dur_us,
            });
        }
    }
}

/// Opens a phase span named `name`. When tracing is disabled this is a
/// no-op guard that never reads the clock.
pub fn span(name: &'static str) -> SpanGuard {
    if !tracing_enabled() {
        return SpanGuard { name, start: None };
    }
    emit(EventKind::SpanBegin { name });
    SpanGuard {
        name,
        start: Some(Instant::now()),
    }
}

/// Adds `delta` to the named counter's running total. Totals are
/// commutative, so worker threads may call this concurrently; the totals
/// reported by [`snapshot_counters`] at phase boundaries are deterministic.
/// A `delta` of 0 still registers the counter, so zero-valued funnel
/// stages show up in snapshots rather than silently disappearing.
pub fn counter_add(name: &'static str, delta: u64) {
    if !tracing_enabled() {
        return;
    }
    let mut counters = global()
        .counters
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    *counters.entry(name).or_insert(0) += delta;
}

/// Raises the named gauge to `value` if it exceeds the current high-water
/// mark.
pub fn gauge_max(name: &'static str, value: u64) {
    if !tracing_enabled() {
        return;
    }
    let mut gauges = global()
        .gauges
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    let entry = gauges.entry(name).or_insert(0);
    *entry = (*entry).max(value);
}

/// Interns a runtime string as a `&'static str` so restored registry
/// names (which arrive from checkpoint files, not string literals) can
/// live in the same registries as literal names. Each unique name leaks
/// once; repeats reuse the interned copy, so the leak is bounded by the
/// (small, fixed) set of counter/gauge names.
fn intern(name: &str) -> &'static str {
    static INTERNED: OnceLock<Mutex<std::collections::BTreeSet<&'static str>>> = OnceLock::new();
    let mut set = INTERNED
        .get_or_init(|| Mutex::new(std::collections::BTreeSet::new()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    if let Some(existing) = set.get(name) {
        return existing;
    }
    let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
    set.insert(leaked);
    leaked
}

/// Sets the named counter to an absolute `value`, replacing any current
/// total. Used when resuming from a checkpoint: restored totals pick up
/// exactly where the interrupted run's registry left off, so subsequent
/// [`counter_add`] calls produce the same final totals an uninterrupted
/// run would have. No-op when tracing is disabled (matching
/// [`counter_add`]).
pub fn counter_restore(name: &str, value: u64) {
    if !tracing_enabled() {
        return;
    }
    let name = intern(name);
    let mut counters = global()
        .counters
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    counters.insert(name, value);
}

/// Sets the named gauge's high-water mark to an absolute `value` (the
/// checkpoint-resume counterpart of [`gauge_max`]). Later `gauge_max`
/// calls still only raise it. No-op when tracing is disabled.
pub fn gauge_restore(name: &str, value: u64) {
    if !tracing_enabled() {
        return;
    }
    let name = intern(name);
    let mut gauges = global()
        .gauges
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    gauges.insert(name, value);
}

/// Records `value` into the named histogram (see [`crate::hist`] for the
/// deterministic bucket layout). Worker threads may call this
/// concurrently: the registry is lock-striped by name, and bucket totals
/// are commutative, so the histograms read at phase boundaries hold the
/// same counts for any thread count.
pub fn histogram_record(name: &'static str, value: u64) {
    if !tracing_enabled() {
        return;
    }
    global().hists.record(name, value);
}

/// A scoped timer: measures the wall time from creation to drop and
/// records it (in microseconds) into the named histogram. The cheap
/// per-item counterpart of [`span`] — it touches the histogram registry
/// only, emitting no events, so it can wrap per-candidate work inside
/// parallel regions.
#[must_use = "a time scope records its duration when dropped"]
pub struct TimeScope {
    name: &'static str,
    start: Option<Instant>,
}

impl Drop for TimeScope {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            histogram_record(self.name, start.elapsed().as_micros() as u64);
        }
    }
}

/// Opens a scoped timer recording into the named histogram on drop. When
/// tracing is disabled this never reads the clock — the cost is one
/// relaxed atomic load.
pub fn time_scope(name: &'static str) -> TimeScope {
    if !tracing_enabled() {
        return TimeScope { name, start: None };
    }
    TimeScope {
        name,
        start: Some(Instant::now()),
    }
}

/// The named histogram's summary, if it has recorded samples.
pub fn histogram_summary(name: &str) -> Option<HistogramSummary> {
    global().hists.get(name).map(|h| h.summary())
}

/// Every histogram recorded so far, in name order.
pub fn histograms_snapshot() -> Vec<(&'static str, Histogram)> {
    global().hists.snapshot()
}

/// Every counter's current total, in name order.
pub fn counters_snapshot() -> Vec<(&'static str, u64)> {
    global()
        .counters
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
        .map(|(&k, &v)| (k, v))
        .collect()
}

/// Every gauge's current high-water mark, in name order.
pub fn gauges_snapshot() -> Vec<(&'static str, u64)> {
    global()
        .gauges
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
        .map(|(&k, &v)| (k, v))
        .collect()
}

/// The named counter's current total (0 when absent or disabled).
pub fn counter_value(name: &str) -> u64 {
    global()
        .counters
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .get(name)
        .copied()
        .unwrap_or(0)
}

/// The named gauge's current high-water mark (0 when absent or disabled).
pub fn gauge_value(name: &str) -> u64 {
    global()
        .gauges
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .get(name)
        .copied()
        .unwrap_or(0)
}

/// Clears all counters, gauges, histograms and time-series rings (done
/// automatically by [`install`]), so back-to-back sessions in one
/// process never report stale totals, peak values, latency samples or
/// sampled series from a previous run.
pub fn reset_counters() {
    let g = global();
    g.counters
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clear();
    g.gauges
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clear();
    g.hists.clear();
    crate::timeseries::clear();
}

/// Emits one [`EventKind::Counter`] event per counter, one
/// [`EventKind::Gauge`] per gauge and one [`EventKind::Histogram`] per
/// histogram, in name order per class. Call this from the coordinating
/// thread at phase boundaries (after workers have joined) so the snapshot
/// totals — and their event order — are deterministic. (Histogram *values*
/// are wall-clock measurements and therefore schedule-dependent; only
/// their presence and order are stable.)
pub fn snapshot_counters() {
    if !tracing_enabled() {
        return;
    }
    let counters: Vec<(&'static str, u64)> = {
        let c = global()
            .counters
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        c.iter().map(|(&k, &v)| (k, v)).collect()
    };
    for (name, value) in counters {
        emit(EventKind::Counter { name, value });
    }
    let gauges: Vec<(&'static str, u64)> = {
        let g = global()
            .gauges
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        g.iter().map(|(&k, &v)| (k, v)).collect()
    };
    for (name, value) in gauges {
        emit(EventKind::Gauge { name, value });
    }
    for (name, hist) in global().hists.snapshot() {
        let s = hist.summary();
        emit(EventKind::Histogram {
            name,
            count: s.count,
            sum: s.sum,
            min: s.min,
            max: s.max,
            p50: s.p50,
            p90: s.p90,
            p99: s.p99,
        });
    }
}

/// Emits a progress tick for a parallel region. Schedule-dependent: ticks
/// arrive in completion order, not item order.
pub fn progress(name: &'static str, done: u64, total: u64) {
    if !tracing_enabled() {
        return;
    }
    emit(EventKind::Progress { name, done, total });
}

/// Emits one worker-lane span (used by the parallel map after its workers
/// join; `lane` is 1-based, lane 0 being the coordinating thread).
pub fn worker_span(
    name: &'static str,
    lane: u32,
    start_us: u64,
    dur_us: u64,
    busy_us: u64,
    items: u64,
) {
    if !tracing_enabled() {
        return;
    }
    emit(EventKind::Worker {
        name,
        lane,
        start_us,
        dur_us,
        busy_us,
        items,
    });
}

/// Emits an info-level message; the closure runs only when a sink is
/// installed and info messages pass the verbosity threshold.
pub fn info(text: impl FnOnce() -> String) {
    message(Level::Info, text);
}

/// Emits a debug-level message; the closure runs only when a sink is
/// installed and `MCE_LOG=debug` (or [`set_level`]) enabled debug output.
pub fn debug(text: impl FnOnce() -> String) {
    message(Level::Debug, text);
}

/// Emits a message at `level`, lazily formatting it.
pub fn message(level: Level, text: impl FnOnce() -> String) {
    if !tracing_enabled() || !level_enabled(level) {
        return;
    }
    emit(EventKind::Message {
        level,
        text: text(),
    });
}

/// The recorder is process-global; every in-crate test module that
/// installs a sink serializes on this one lock.
#[cfg(test)]
pub(crate) static TEST_LOCK: Mutex<()> = Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemorySink;

    fn with_recorder<R>(f: impl FnOnce(Arc<MemorySink>) -> R) -> R {
        let _guard = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let sink = Arc::new(MemorySink::new());
        install(sink.clone());
        let r = f(sink.clone());
        uninstall();
        r
    }

    #[test]
    fn disabled_is_silent_and_cheap() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        uninstall();
        assert!(!tracing_enabled());
        let _span = span("nothing");
        counter_add("nothing", 5);
        progress("nothing", 1, 2);
        assert_eq!(counter_value("nothing"), 0);
        assert_eq!(now_us(), 0);
    }

    #[test]
    fn spans_nest_and_measure() {
        let events = with_recorder(|sink| {
            {
                let _outer = span("outer");
                std::thread::sleep(std::time::Duration::from_millis(2));
                {
                    let _inner = span("inner");
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
            }
            sink.take()
        });
        let ids: Vec<String> = events.iter().map(Event::identity).collect();
        assert_eq!(
            ids,
            vec![
                "span_begin:outer",
                "span_begin:inner",
                "span_end:inner",
                "span_end:outer"
            ]
        );
        let dur = |name: &str| {
            events
                .iter()
                .find_map(|e| match &e.kind {
                    EventKind::SpanEnd { name: n, dur_us } if *n == name => Some(*dur_us),
                    _ => None,
                })
                .unwrap()
        };
        assert!(dur("inner") >= 1_000, "inner {}", dur("inner"));
        assert!(
            dur("outer") >= dur("inner"),
            "outer {} inner {}",
            dur("outer"),
            dur("inner")
        );
    }

    #[test]
    fn sequence_numbers_are_monotonic_and_reset() {
        with_recorder(|sink| {
            emit(EventKind::SpanBegin { name: "a" });
            emit(EventKind::SpanBegin { name: "b" });
            let events = sink.take();
            assert_eq!(events[0].seq, 0);
            assert_eq!(events[1].seq, 1);
        });
        with_recorder(|sink| {
            emit(EventKind::SpanBegin { name: "c" });
            assert_eq!(sink.take()[0].seq, 0, "install resets the sequence");
        });
    }

    #[test]
    fn counters_accumulate_and_snapshot_in_name_order() {
        let events = with_recorder(|sink| {
            counter_add("b.second", 2);
            counter_add("a.first", 1);
            counter_add("a.first", 10);
            gauge_max("z.high", 5);
            gauge_max("z.high", 3);
            assert_eq!(counter_value("a.first"), 11);
            assert_eq!(gauge_value("z.high"), 5);
            snapshot_counters();
            sink.take()
        });
        let ids: Vec<String> = events.iter().map(Event::identity).collect();
        assert_eq!(
            ids,
            vec!["counter:a.first=11", "counter:b.second=2", "gauge:z.high=5"]
        );
    }

    #[test]
    fn message_level_filtering() {
        let events = with_recorder(|sink| {
            set_level(Level::Info);
            debug(|| "dropped".to_owned());
            info(|| "kept".to_owned());
            set_level(Level::Debug);
            debug(|| "kept too".to_owned());
            sink.take()
        });
        let ids: Vec<String> = events.iter().map(Event::identity).collect();
        assert_eq!(ids, vec!["message:info:kept", "message:debug:kept too"]);
    }

    #[test]
    fn time_scope_and_histogram_record_feed_the_registry() {
        with_recorder(|_| {
            histogram_record("h.direct", 7);
            histogram_record("h.direct", 9);
            {
                let _t = time_scope("h.scoped");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            let direct = histogram_summary("h.direct").expect("recorded");
            assert_eq!(direct.count, 2);
            assert_eq!(direct.sum, 16);
            assert_eq!((direct.min, direct.max), (7, 9));
            let scoped = histogram_summary("h.scoped").expect("recorded");
            assert_eq!(scoped.count, 1);
            assert!(scoped.sum >= 1_000, "2ms scope measured {}us", scoped.sum);
        });
    }

    #[test]
    fn spans_record_their_duration_as_a_histogram() {
        with_recorder(|_| {
            for _ in 0..3 {
                let _s = span("h.phase");
            }
            let s = histogram_summary("h.phase").expect("span durations recorded");
            assert_eq!(s.count, 3, "one sample per span opening");
        });
    }

    #[test]
    fn snapshot_emits_histograms_after_counters_and_gauges() {
        let events = with_recorder(|sink| {
            counter_add("a.count", 1);
            gauge_max("b.gauge", 2);
            histogram_record("c.hist", 10);
            snapshot_counters();
            sink.take()
        });
        let ids: Vec<String> = events.iter().map(Event::identity).collect();
        assert_eq!(
            ids,
            vec!["counter:a.count=1", "gauge:b.gauge=2", "hist:c.hist:n=1"]
        );
    }

    /// Regression test: a second back-to-back session in the same process
    /// must not see the previous session's counter totals, gauge peaks,
    /// histogram samples or time-series rings ([`install`] resets all
    /// four registries).
    #[test]
    fn install_resets_counters_gauges_and_histograms() {
        with_recorder(|_| {
            counter_add("s.count", 41);
            gauge_max("s.peak", 99);
            histogram_record("s.lat", 1234);
            crate::timeseries::logical_mark(1);
            crate::timeseries::wall_sample();
            assert_eq!(gauge_value("s.peak"), 99);
            assert!(!crate::timeseries::logical_series().is_empty());
        });
        with_recorder(|_| {
            assert_eq!(counter_value("s.count"), 0, "stale counter total");
            assert_eq!(gauge_value("s.peak"), 0, "stale gauge peak");
            assert!(
                histogram_summary("s.lat").is_none(),
                "stale histogram samples"
            );
            assert!(
                crate::timeseries::logical_series().is_empty(),
                "stale logical time-series rings"
            );
            assert!(
                crate::timeseries::wall_series().is_empty(),
                "stale wall time-series rings"
            );
            // A lower peak in the new session must win from scratch.
            gauge_max("s.peak", 5);
            assert_eq!(gauge_value("s.peak"), 5);
        });
    }

    #[test]
    fn disabled_histograms_record_nothing() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        uninstall();
        reset_counters();
        histogram_record("off.h", 5);
        let _t = time_scope("off.h");
        drop(_t);
        assert!(histogram_summary("off.h").is_none());
    }

    #[test]
    fn lazy_formatting_skipped_when_disabled() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        uninstall();
        let mut called = false;
        info(|| {
            called = true;
            String::new()
        });
        assert!(!called, "closure must not run without a sink");
    }
}
