//! Lock-striped, mergeable latency histograms.
//!
//! A [`Histogram`] counts `u64` samples (the recorder uses microseconds)
//! into a **deterministic fixed-bucket layout**: bucket 0 holds the value
//! 0 and bucket `i ≥ 1` holds the half-open power-of-two range
//! `[2^(i-1), 2^i)`. The layout never depends on the observed data, so two
//! histograms fed the same multiset of samples — in any order, from any
//! number of threads — hold identical bucket counts, and [`Histogram::merge`]
//! is associative and commutative. Quantiles ([`Histogram::quantile`])
//! interpolate linearly inside a bucket and clamp to the observed min/max,
//! which keeps them a pure function of the bucket counts.
//!
//! [`HistRegistry`] is the recorder-side store: a fixed set of mutex
//! stripes keyed by name hash, so worker threads recording into *different*
//! histograms rarely contend, while recording into the *same* histogram
//! stays a simple serialized bucket increment. The registry is wired into
//! the global recorder as [`histogram_record`](crate::histogram_record) /
//! [`time_scope`](crate::time_scope); this module is the pure data layer.

use std::collections::BTreeMap;
use std::sync::{Mutex, PoisonError};

/// Number of buckets: one zero bucket plus one per power of two of `u64`.
pub const BUCKET_COUNT: usize = 65;

/// The bucket a value falls into: 0 for the value 0, otherwise
/// `⌊log2(v)⌋ + 1` (so bucket `i` covers `[2^(i-1), 2^i)`).
#[inline]
pub fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Inclusive `(low, high)` value bounds of bucket `index`.
///
/// # Panics
///
/// Panics if `index >= BUCKET_COUNT`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < BUCKET_COUNT, "bucket {index} out of range");
    match index {
        0 => (0, 0),
        64 => (1 << 63, u64::MAX),
        i => (1 << (i - 1), (1 << i) - 1),
    }
}

/// Summary statistics of one histogram, as reported in events and run
/// reports. All fields are in the histogram's sample unit (microseconds
/// for the recorder's timers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples (saturating).
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Median estimate.
    pub p50: u64,
    /// 90th-percentile estimate.
    pub p90: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
}

/// A fixed-layout power-of-two histogram of `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; BUCKET_COUNT],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKET_COUNT],
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[bucket_index(value)] += 1;
    }

    /// Adds every sample of `other` into `self`. Element-wise bucket
    /// addition plus min/max/sum folding: associative and commutative, so
    /// per-thread histograms merge into the same totals in any order.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The per-bucket counts (fixed layout; see [`bucket_bounds`]).
    pub fn bucket_counts(&self) -> &[u64; BUCKET_COUNT] {
        &self.buckets
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) from the bucket
    /// counts: find the bucket holding the target rank, interpolate
    /// linearly inside it, and clamp to the observed min/max. A pure
    /// function of the bucket counts, so any two histograms with equal
    /// buckets report equal quantiles.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = q.clamp(0.0, 1.0) * (self.count - 1) as f64;
        let mut below = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if rank < (below + n) as f64 {
                let (lo, hi) = bucket_bounds(i);
                let frac = (rank - below as f64 + 0.5) / n as f64;
                let est = lo as f64 + frac.clamp(0.0, 1.0) * (hi - lo) as f64;
                return (est.round() as u64).clamp(self.min, self.max);
            }
            below += n;
        }
        self.max
    }

    /// The summary statistics (count, sum, min/max, p50/p90/p99).
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0 } else { self.min },
            max: self.max,
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

/// Stripes in a [`HistRegistry`]. A histogram's name picks its stripe, so
/// threads recording into different histograms usually take different
/// locks; the count is a fixed power of two to keep stripe selection a
/// mask.
const STRIPES: usize = 8;

/// FNV-1a over the name, reduced to a stripe index.
fn stripe_of(name: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h as usize) & (STRIPES - 1)
}

/// The recorder's named-histogram store: `STRIPES` mutex-guarded maps,
/// keyed by name hash.
#[derive(Debug)]
pub struct HistRegistry {
    stripes: [Mutex<BTreeMap<&'static str, Histogram>>; STRIPES],
}

impl Default for HistRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl HistRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        HistRegistry {
            stripes: std::array::from_fn(|_| Mutex::new(BTreeMap::new())),
        }
    }

    /// Records `value` into the named histogram (creating it on first
    /// use). Safe to call from worker threads; totals are commutative.
    pub fn record(&self, name: &'static str, value: u64) {
        let mut map = self.stripes[stripe_of(name)]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        map.entry(name).or_default().record(value);
    }

    /// A copy of the named histogram, if any samples were recorded.
    pub fn get(&self, name: &str) -> Option<Histogram> {
        self.stripes[stripe_of(name)]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(name)
            .cloned()
    }

    /// Every histogram, in name order (stripes hold disjoint names, so
    /// collecting them into one map is a plain union).
    pub fn snapshot(&self) -> Vec<(&'static str, Histogram)> {
        let mut all: BTreeMap<&'static str, Histogram> = BTreeMap::new();
        for stripe in &self.stripes {
            let map = stripe.lock().unwrap_or_else(PoisonError::into_inner);
            for (&name, hist) in map.iter() {
                all.insert(name, hist.clone());
            }
        }
        all.into_iter().collect()
    }

    /// Removes every histogram.
    pub fn clear(&self) {
        for stripe in &self.stripes {
            stripe
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..BUCKET_COUNT {
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= hi);
            assert_eq!(bucket_index(lo), i, "low bound of bucket {i}");
            assert_eq!(bucket_index(hi), i, "high bound of bucket {i}");
        }
    }

    #[test]
    fn empty_histogram_summary_is_zero() {
        let s = Histogram::new().summary();
        assert_eq!(
            s,
            HistogramSummary {
                count: 0,
                sum: 0,
                min: 0,
                max: 0,
                p50: 0,
                p90: 0,
                p99: 0
            }
        );
    }

    #[test]
    fn single_sample_quantiles_are_exact() {
        let mut h = Histogram::new();
        h.record(1234);
        let s = h.summary();
        assert_eq!((s.min, s.max), (1234, 1234));
        assert_eq!((s.p50, s.p90, s.p99), (1234, 1234, 1234));
    }

    #[test]
    fn quantiles_track_a_known_distribution() {
        // 1..=1000: every estimate must land within its sample's bucket
        // (a factor-of-2 band) and be monotone in q.
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 500_500);
        assert!(s.p50 >= 256 && s.p50 < 1024, "p50 {}", s.p50);
        assert!(s.p90 >= 512 && s.p90 <= 1000, "p90 {}", s.p90);
        assert!(s.p99 >= 512 && s.p99 <= 1000, "p99 {}", s.p99);
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let samples: Vec<u64> = (0..300).map(|i| (i * i * 37 + 11) % 10_000).collect();
        let hist_of = |vals: &[u64]| {
            let mut h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let whole = hist_of(&samples);
        let (a, b, c) = (
            hist_of(&samples[..100]),
            hist_of(&samples[100..200]),
            hist_of(&samples[200..]),
        );
        // (a + b) + c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a + (b + c), merged in a different order
        let mut bc = c.clone();
        bc.merge(&b);
        let mut right = bc;
        right.merge(&a);
        assert_eq!(left, whole);
        assert_eq!(right, whole);
        assert_eq!(left.summary(), right.summary());
    }

    #[test]
    fn registry_records_and_snapshots_in_name_order() {
        let reg = HistRegistry::new();
        reg.record("z.last", 5);
        reg.record("a.first", 1);
        reg.record("a.first", 3);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, ["a.first", "z.last"]);
        assert_eq!(reg.get("a.first").unwrap().count(), 2);
        reg.clear();
        assert!(reg.get("a.first").is_none());
        assert!(reg.snapshot().is_empty());
    }

    #[test]
    fn registry_is_deterministic_across_threads() {
        let samples: Vec<u64> = (0..4000).map(|i| (i * 7919 + 13) % 65_536).collect();
        let serial = {
            let reg = HistRegistry::new();
            for &v in &samples {
                reg.record("t", v);
            }
            reg.get("t").unwrap()
        };
        for threads in [2usize, 4, 7] {
            let reg = HistRegistry::new();
            std::thread::scope(|scope| {
                for chunk in samples.chunks(samples.len().div_ceil(threads)) {
                    let reg = &reg;
                    scope.spawn(move || {
                        for &v in chunk {
                            reg.record("t", v);
                        }
                    });
                }
            });
            let parallel = reg.get("t").unwrap();
            assert_eq!(serial, parallel, "threads={threads}");
            assert_eq!(serial.summary(), parallel.summary());
        }
    }
}
