//! Time-series registry: fixed-capacity ring buffers of periodic
//! registry snapshots, the substrate of live run monitoring (`mce
//! explore --live-status`, `mce top`, the OpenMetrics exporter).
//!
//! Every series is a bounded ring of `(at, value)` points. Two strictly
//! separated channels exist, because they sit on opposite sides of the
//! determinism contract:
//!
//! * The **logical channel** ([`logical_mark`]) snapshots the counter and
//!   gauge registries at *logical* sampling points — per-architecture
//!   boundaries of the Phase-I loop, identified by a caller-supplied tick
//!   (architectures done). Counter totals are deterministic at those
//!   boundaries, so the logical channel's contents are byte-identical
//!   across worker-thread counts and cache persistence. `budget.*`
//!   counters (watchdog timeouts, cancellations) are timing-dependent
//!   and are excluded here, mirroring the run report's quarantine.
//! * The **wall channel** ([`wall_sample`]) snapshots the same registries
//!   — plus one derived series per histogram — at *wall-clock* instants,
//!   stamped with microseconds since sink installation. A background
//!   [`Sampler`] drives it at a fixed interval. Wall samples are
//!   inherently nondeterministic (how far the run got after N
//!   milliseconds depends on the machine) and never feed anything
//!   deterministic.
//!
//! Sampling only ever *reads* the registries; like the rest of `mce-obs`
//! it cannot perturb exploration results, and with no sink installed
//! every entry point short-circuits on one relaxed atomic load.

use crate::hist::HistogramSummary;
use crate::recorder;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Duration;

/// Default per-series ring capacity: enough for four minutes of
/// one-second wall samples, or a few hundred Phase-I architectures,
/// while bounding live-status files to a few tens of kilobytes.
pub const DEFAULT_SERIES_CAPACITY: usize = 240;

/// One sampled point of a series: `at` is the logical tick
/// (architectures done) on the logical channel, or microseconds since
/// sink installation on the wall channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeriesPoint {
    /// Sample position: logical tick or `t_us`, depending on the channel.
    pub at: u64,
    /// The sampled registry value.
    pub value: u64,
}

/// The registry: name → bounded ring, one map per channel.
struct Registry {
    capacity: AtomicUsize,
    logical: Mutex<BTreeMap<&'static str, VecDeque<SeriesPoint>>>,
    wall: Mutex<BTreeMap<&'static str, VecDeque<SeriesPoint>>>,
    /// Derived per-histogram wall series need owned names
    /// (`<hist>.p90`); interning keeps them `&'static` like the rest.
    hist_names: Mutex<BTreeMap<String, &'static str>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        capacity: AtomicUsize::new(DEFAULT_SERIES_CAPACITY),
        logical: Mutex::new(BTreeMap::new()),
        wall: Mutex::new(BTreeMap::new()),
        hist_names: Mutex::new(BTreeMap::new()),
    })
}

/// Sets the per-series ring capacity (minimum 2, so every series keeps at
/// least a first and a latest point). Existing series are trimmed from
/// the front to the new bound.
pub fn set_series_capacity(capacity: usize) {
    let r = registry();
    let capacity = capacity.max(2);
    r.capacity.store(capacity, Ordering::SeqCst);
    for channel in [&r.logical, &r.wall] {
        let mut map = channel.lock().unwrap_or_else(PoisonError::into_inner);
        for ring in map.values_mut() {
            while ring.len() > capacity {
                ring.pop_front();
            }
        }
    }
}

/// The configured per-series ring capacity.
pub fn series_capacity() -> usize {
    registry().capacity.load(Ordering::SeqCst)
}

fn push(
    channel: &Mutex<BTreeMap<&'static str, VecDeque<SeriesPoint>>>,
    capacity: usize,
    name: &'static str,
    point: SeriesPoint,
) {
    let mut map = channel.lock().unwrap_or_else(PoisonError::into_inner);
    let ring = map.entry(name).or_default();
    if ring.len() >= capacity {
        ring.pop_front();
    }
    ring.push_back(point);
}

/// Records one logical sampling point: every counter (except the
/// timing-dependent `budget.*` family) and every gauge gets a
/// `(tick, value)` point appended to its logical series. Call from the
/// coordinating thread at a deterministic boundary — the Phase-I loop
/// calls it once per committed architecture with `tick = archs_done` —
/// so that two runs of the same exploration produce identical logical
/// channels regardless of thread count. No-op when tracing is disabled.
pub fn logical_mark(tick: u64) {
    if !recorder::tracing_enabled() {
        return;
    }
    let r = registry();
    let capacity = r.capacity.load(Ordering::SeqCst);
    for (name, value) in recorder::counters_snapshot() {
        if name.starts_with("budget.") {
            continue;
        }
        push(&r.logical, capacity, name, SeriesPoint { at: tick, value });
    }
    for (name, value) in recorder::gauges_snapshot() {
        push(&r.logical, capacity, name, SeriesPoint { at: tick, value });
    }
}

/// Records one wall-clock sample: every counter, every gauge, and one
/// derived `<histogram>.p90` series per histogram get a `(t_us, value)`
/// point appended to their wall series, where `t_us` is microseconds
/// since sink installation. Nondeterministic by construction — call it
/// from a [`Sampler`] (or anywhere); it only reads the registries.
/// No-op when tracing is disabled.
pub fn wall_sample() {
    if !recorder::tracing_enabled() {
        return;
    }
    let r = registry();
    let capacity = r.capacity.load(Ordering::SeqCst);
    let t_us = recorder::now_us();
    for (name, value) in recorder::counters_snapshot() {
        push(&r.wall, capacity, name, SeriesPoint { at: t_us, value });
    }
    for (name, value) in recorder::gauges_snapshot() {
        push(&r.wall, capacity, name, SeriesPoint { at: t_us, value });
    }
    for (name, hist) in recorder::histograms_snapshot() {
        let HistogramSummary { p90, .. } = hist.summary();
        let series = intern_hist_name(name);
        push(
            &r.wall,
            capacity,
            series,
            SeriesPoint {
                at: t_us,
                value: p90,
            },
        );
    }
}

/// Interns `<hist>.p90` once per histogram name; the leak is bounded by
/// the (small, fixed) set of histogram names, like the recorder's own
/// restore-name interning.
fn intern_hist_name(name: &'static str) -> &'static str {
    let mut names = registry()
        .hist_names
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    if let Some(&existing) = names.get(name) {
        return existing;
    }
    let leaked: &'static str = Box::leak(format!("{name}.p90").into_boxed_str());
    names.insert(name.to_owned(), leaked);
    leaked
}

fn snapshot(
    channel: &Mutex<BTreeMap<&'static str, VecDeque<SeriesPoint>>>,
) -> Vec<(&'static str, Vec<SeriesPoint>)> {
    channel
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
        .map(|(&name, ring)| (name, ring.iter().copied().collect()))
        .collect()
}

/// Every logical series recorded so far, in name order.
pub fn logical_series() -> Vec<(&'static str, Vec<SeriesPoint>)> {
    snapshot(&registry().logical)
}

/// Every wall-clock series recorded so far, in name order.
pub fn wall_series() -> Vec<(&'static str, Vec<SeriesPoint>)> {
    snapshot(&registry().wall)
}

/// Clears both channels (done automatically by
/// [`install`](crate::install), alongside the counter, gauge and
/// histogram registries), so back-to-back sessions never report stale
/// series. The configured capacity is kept.
pub fn clear() {
    let r = registry();
    r.logical
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clear();
    r.wall
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clear();
}

/// A lightweight background sampler: one thread calling [`wall_sample`]
/// (then an optional caller hook) at a fixed wall-clock interval, until
/// stopped or dropped.
///
/// The thread polls its stop flag every few milliseconds between
/// samples, so [`Sampler::stop`] returns promptly even for long
/// intervals. Sampling reads registries under short-lived locks and
/// never blocks instrumentation's fast path.
#[must_use = "a sampler stops sampling when dropped"]
pub struct Sampler {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Sampler {
    /// Starts sampling every `interval`.
    pub fn start(interval: Duration) -> Self {
        Sampler::start_with(interval, || {})
    }

    /// Starts sampling every `interval`, invoking `on_sample` after each
    /// [`wall_sample`] — the hook live-status publishers attach their
    /// file write to. The first sample fires after one interval, not
    /// immediately (callers wanting an initial data point take it
    /// synchronously before starting the sampler).
    pub fn start_with(interval: Duration, on_sample: impl Fn() + Send + 'static) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let handle = std::thread::Builder::new()
            .name("mce-obs-sampler".to_owned())
            .spawn(move || {
                const POLL: Duration = Duration::from_millis(5);
                loop {
                    let mut slept = Duration::ZERO;
                    while slept < interval {
                        if stop_flag.load(Ordering::Relaxed) {
                            return;
                        }
                        let step = POLL.min(interval - slept);
                        std::thread::sleep(step);
                        slept += step;
                    }
                    wall_sample();
                    on_sample();
                }
            })
            .expect("spawning the sampler thread");
        Sampler {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the sampler and joins its thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            handle.join().ok();
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{
        counter_add, gauge_max, histogram_record, install, uninstall, TEST_LOCK,
    };
    use crate::sink::MemorySink;

    fn with_recorder<R>(f: impl FnOnce() -> R) -> R {
        let _guard = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        install(Arc::new(MemorySink::new()));
        let r = f();
        uninstall();
        r
    }

    #[test]
    fn logical_marks_snapshot_counters_and_gauges_at_ticks() {
        let (logical, wall) = with_recorder(|| {
            counter_add("ts.count", 3);
            gauge_max("ts.peak", 9);
            logical_mark(1);
            counter_add("ts.count", 4);
            logical_mark(2);
            (logical_series(), wall_series())
        });
        assert!(wall.is_empty(), "no wall samples were taken");
        let series: BTreeMap<_, _> = logical.into_iter().collect();
        assert_eq!(
            series["ts.count"],
            vec![
                SeriesPoint { at: 1, value: 3 },
                SeriesPoint { at: 2, value: 7 }
            ]
        );
        assert_eq!(
            series["ts.peak"],
            vec![
                SeriesPoint { at: 1, value: 9 },
                SeriesPoint { at: 2, value: 9 }
            ]
        );
    }

    #[test]
    fn budget_counters_stay_out_of_the_logical_channel() {
        let (logical, wall) = with_recorder(|| {
            counter_add("budget.timeouts", 1);
            counter_add("ts.ok", 1);
            logical_mark(1);
            wall_sample();
            (logical_series(), wall_series())
        });
        assert!(
            logical.iter().all(|(name, _)| !name.starts_with("budget.")),
            "timing-dependent budget counters leaked into the logical channel: {logical:?}"
        );
        assert!(
            wall.iter().any(|(name, _)| *name == "budget.timeouts"),
            "the wall channel carries everything: {wall:?}"
        );
    }

    #[test]
    fn wall_samples_carry_histogram_p90_series() {
        let wall = with_recorder(|| {
            for v in [10, 20, 30] {
                histogram_record("ts.lat_us", v);
            }
            wall_sample();
            wall_series()
        });
        let (_, points) = wall
            .iter()
            .find(|(name, _)| *name == "ts.lat_us.p90")
            .expect("derived histogram series present");
        assert_eq!(points.len(), 1);
        assert!(points[0].value >= 10, "{points:?}");
    }

    #[test]
    fn rings_are_bounded_and_capacity_trims() {
        with_recorder(|| {
            set_series_capacity(4);
            counter_add("ts.ring", 1);
            for tick in 0..10 {
                logical_mark(tick);
            }
            let series: BTreeMap<_, _> = logical_series().into_iter().collect();
            let points = &series["ts.ring"];
            assert_eq!(points.len(), 4, "ring bounded at capacity");
            assert_eq!(points[0].at, 6, "oldest points evicted first");
            assert_eq!(points[3].at, 9);
            // Shrinking trims existing rings from the front.
            set_series_capacity(2);
            let series: BTreeMap<_, _> = logical_series().into_iter().collect();
            assert_eq!(series["ts.ring"].len(), 2);
            assert_eq!(series["ts.ring"][0].at, 8);
            set_series_capacity(DEFAULT_SERIES_CAPACITY);
        });
    }

    #[test]
    fn disabled_records_nothing() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        uninstall();
        clear();
        logical_mark(1);
        wall_sample();
        assert!(logical_series().is_empty());
        assert!(wall_series().is_empty());
    }

    #[test]
    fn sampler_takes_periodic_samples_and_stops() {
        with_recorder(|| {
            counter_add("ts.sampled", 1);
            let fired = Arc::new(AtomicBool::new(false));
            let fired_flag = fired.clone();
            let sampler = Sampler::start_with(Duration::from_millis(10), move || {
                fired_flag.store(true, Ordering::SeqCst);
            });
            // Wait for at least one sample without assuming scheduling.
            for _ in 0..200 {
                if fired.load(Ordering::SeqCst) {
                    break;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            sampler.stop();
            assert!(fired.load(Ordering::SeqCst), "the on_sample hook ran");
            let series: BTreeMap<_, _> = wall_series().into_iter().collect();
            assert!(
                series.get("ts.sampled").is_some_and(|p| !p.is_empty()),
                "the sampler recorded wall points: {series:?}"
            );
        });
    }
}
