//! The structured event model.
//!
//! Every observation the pipeline makes is one [`Event`]: a monotonic
//! sequence number, a microsecond timestamp relative to sink installation,
//! and a typed [`EventKind`] payload. Events split into two classes:
//!
//! * **deterministic** events — phase spans, counter/gauge snapshots and
//!   messages — are always emitted from the coordinating thread, so their
//!   non-timing fields appear in the same order regardless of worker-thread
//!   count or scheduling;
//! * **schedule-dependent** events ([`EventKind::Worker`] lanes and
//!   [`EventKind::Progress`] ticks) describe the parallel execution itself
//!   and naturally vary with the thread count.
//!
//! [`Event::schedule_dependent`] distinguishes the two, and
//! [`Event::identity`] renders the non-timing fields so tests can assert
//! that serial and parallel runs observe the same deterministic event
//! stream.

use std::fmt;

/// Verbosity of a [`EventKind::Message`] event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// High-signal messages a user running with `--progress` wants to see.
    Info,
    /// Detailed diagnostics, enabled with `MCE_LOG=debug`.
    Debug,
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Level::Info => "info",
            Level::Debug => "debug",
        })
    }
}

/// The typed payload of one observation.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A phase-scoped timer opened on the coordinating thread (lane 0).
    SpanBegin {
        /// Span name, e.g. `conex.estimate`.
        name: &'static str,
    },
    /// The matching close of a [`EventKind::SpanBegin`].
    SpanEnd {
        /// Span name, matching the begin event.
        name: &'static str,
        /// Wall-clock duration of the span in microseconds.
        dur_us: u64,
    },
    /// One worker thread's completed slice of a parallel region. Emitted
    /// after the workers join, in worker order, so the event *order* is
    /// deterministic even though the payload (and whether the event exists
    /// at all) depends on the thread count.
    Worker {
        /// Name of the parallel region, e.g. `conex.estimate`.
        name: &'static str,
        /// Worker lane (1-based; lane 0 is the coordinating thread).
        lane: u32,
        /// Start of the worker's span, microseconds since installation.
        start_us: u64,
        /// Wall-clock duration of the worker's span in microseconds.
        dur_us: u64,
        /// Time actually spent inside the mapped closure, microseconds.
        busy_us: u64,
        /// Items this worker processed.
        items: u64,
    },
    /// A named counter's running total at a snapshot point.
    Counter {
        /// Counter name, e.g. `conex.candidates_enumerated`.
        name: &'static str,
        /// The total accumulated so far.
        value: u64,
    },
    /// A named gauge's high-water mark at a snapshot point.
    Gauge {
        /// Gauge name, e.g. `sim.posted_backlog_highwater`.
        name: &'static str,
        /// The maximum observed so far.
        value: u64,
    },
    /// A named histogram's summary at a snapshot point. The sample values
    /// are wall-clock measurements, so the payload (and, for per-worker
    /// histograms, the count) is schedule-dependent; only the emission
    /// order — name order at each snapshot — is stable.
    Histogram {
        /// Histogram name, e.g. `conex.simulate.item_us`.
        name: &'static str,
        /// Number of recorded samples.
        count: u64,
        /// Sum of all samples.
        sum: u64,
        /// Smallest sample.
        min: u64,
        /// Largest sample.
        max: u64,
        /// Median estimate.
        p50: u64,
        /// 90th-percentile estimate.
        p90: u64,
        /// 99th-percentile estimate.
        p99: u64,
    },
    /// A rate-limited progress tick from inside a parallel region.
    Progress {
        /// Name of the region making progress.
        name: &'static str,
        /// Items completed so far.
        done: u64,
        /// Total items in the region.
        total: u64,
    },
    /// A freeform diagnostic line (replaces ad-hoc `eprintln!`s).
    Message {
        /// Verbosity class.
        level: Level,
        /// The message text.
        text: String,
    },
}

/// One recorded observation.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Monotonic sequence number, unique per sink installation.
    pub seq: u64,
    /// Microseconds since the sink was installed.
    pub t_us: u64,
    /// The payload.
    pub kind: EventKind,
}

impl Event {
    /// True for events whose existence or payload depends on worker-thread
    /// scheduling ([`EventKind::Worker`], [`EventKind::Progress`] and
    /// [`EventKind::Histogram`] — histogram payloads are wall-clock
    /// samples). Everything else is emitted from the coordinating thread
    /// in a schedule-independent order.
    pub fn schedule_dependent(&self) -> bool {
        matches!(
            self.kind,
            EventKind::Worker { .. } | EventKind::Progress { .. } | EventKind::Histogram { .. }
        )
    }

    /// The event's non-timing fields as a comparable string. Two runs of
    /// the same exploration produce identical identity sequences for their
    /// deterministic events, regardless of thread count.
    pub fn identity(&self) -> String {
        match &self.kind {
            EventKind::SpanBegin { name } => format!("span_begin:{name}"),
            EventKind::SpanEnd { name, .. } => format!("span_end:{name}"),
            EventKind::Worker {
                name, lane, items, ..
            } => {
                format!("worker:{name}:{lane}:{items}")
            }
            EventKind::Counter { name, value } => format!("counter:{name}={value}"),
            EventKind::Gauge { name, value } => format!("gauge:{name}={value}"),
            EventKind::Histogram { name, count, .. } => format!("hist:{name}:n={count}"),
            EventKind::Progress { name, done, total } => {
                format!("progress:{name}:{done}/{total}")
            }
            EventKind::Message { level, text } => format!("message:{level}:{text}"),
        }
    }

    /// Renders the event as one line of JSON (the machine-readable log
    /// format of [`JsonLinesSink`](crate::sink::JsonLinesSink)).
    pub fn to_json_line(&self) -> String {
        let mut s = format!("{{\"seq\":{},\"t_us\":{},", self.seq, self.t_us);
        match &self.kind {
            EventKind::SpanBegin { name } => {
                s.push_str(&format!("\"type\":\"span_begin\",\"name\":\"{name}\""));
            }
            EventKind::SpanEnd { name, dur_us } => {
                s.push_str(&format!(
                    "\"type\":\"span_end\",\"name\":\"{name}\",\"dur_us\":{dur_us}"
                ));
            }
            EventKind::Worker {
                name,
                lane,
                start_us,
                dur_us,
                busy_us,
                items,
            } => {
                s.push_str(&format!(
                    "\"type\":\"worker\",\"name\":\"{name}\",\"lane\":{lane},\
                     \"start_us\":{start_us},\"dur_us\":{dur_us},\
                     \"busy_us\":{busy_us},\"items\":{items}"
                ));
            }
            EventKind::Counter { name, value } => {
                s.push_str(&format!(
                    "\"type\":\"counter\",\"name\":\"{name}\",\"value\":{value}"
                ));
            }
            EventKind::Gauge { name, value } => {
                s.push_str(&format!(
                    "\"type\":\"gauge\",\"name\":\"{name}\",\"value\":{value}"
                ));
            }
            EventKind::Histogram {
                name,
                count,
                sum,
                min,
                max,
                p50,
                p90,
                p99,
            } => {
                s.push_str(&format!(
                    "\"type\":\"histogram\",\"name\":\"{name}\",\"count\":{count},\
                     \"sum\":{sum},\"min\":{min},\"max\":{max},\
                     \"p50\":{p50},\"p90\":{p90},\"p99\":{p99}"
                ));
            }
            EventKind::Progress { name, done, total } => {
                s.push_str(&format!(
                    "\"type\":\"progress\",\"name\":\"{name}\",\"done\":{done},\"total\":{total}"
                ));
            }
            EventKind::Message { level, text } => {
                s.push_str(&format!(
                    "\"type\":\"message\",\"level\":\"{level}\",\"text\":\"{}\"",
                    escape_json(text)
                ));
            }
        }
        s.push('}');
        s
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_ignores_timing_fields() {
        let a = Event {
            seq: 1,
            t_us: 100,
            kind: EventKind::SpanEnd {
                name: "x",
                dur_us: 5,
            },
        };
        let b = Event {
            seq: 9,
            t_us: 777,
            kind: EventKind::SpanEnd {
                name: "x",
                dur_us: 5000,
            },
        };
        assert_eq!(a.identity(), b.identity());
    }

    #[test]
    fn schedule_dependent_classes() {
        let mk = |kind| Event {
            seq: 0,
            t_us: 0,
            kind,
        };
        assert!(mk(EventKind::Worker {
            name: "w",
            lane: 1,
            start_us: 0,
            dur_us: 0,
            busy_us: 0,
            items: 0
        })
        .schedule_dependent());
        assert!(mk(EventKind::Progress {
            name: "p",
            done: 1,
            total: 2
        })
        .schedule_dependent());
        assert!(!mk(EventKind::SpanBegin { name: "s" }).schedule_dependent());
        assert!(!mk(EventKind::Counter {
            name: "c",
            value: 1
        })
        .schedule_dependent());
    }

    #[test]
    fn json_lines_are_valid_json() {
        let events = vec![
            EventKind::SpanBegin { name: "explore" },
            EventKind::SpanEnd {
                name: "explore",
                dur_us: 42,
            },
            EventKind::Counter {
                name: "c",
                value: 3,
            },
            EventKind::Message {
                level: Level::Debug,
                text: "quote \" backslash \\ newline \n done".to_owned(),
            },
        ];
        for (i, kind) in events.into_iter().enumerate() {
            let ev = Event {
                seq: i as u64,
                t_us: 10 * i as u64,
                kind,
            };
            let line = ev.to_json_line();
            let parsed = crate::json::parse(&line)
                .unwrap_or_else(|e| panic!("line {line} not valid JSON: {e}"));
            assert_eq!(parsed.get("seq").and_then(|v| v.as_u64()), Some(i as u64));
        }
    }

    #[test]
    fn escape_json_handles_control_chars() {
        assert_eq!(escape_json("a\"b"), "a\\\"b");
        assert_eq!(escape_json("a\u{1}b"), "a\\u0001b");
        assert_eq!(escape_json("plain"), "plain");
    }
}
