//! # mce-obs — structured tracing, counters and progress reporting
//!
//! The observability substrate of the exploration pipeline: a
//! zero-dependency structured-event layer that makes a whole `ConEx` run —
//! profile, BRG build, clustering, allocation enumeration, Phase-I
//! estimation, Phase-II full simulation — visible as spans, counters and
//! per-worker lanes, without perturbing results.
//!
//! ## Model
//!
//! * **Spans** ([`span`]) are phase-scoped timers opened on the
//!   coordinating thread; they nest lexically and emit begin/end events.
//! * **Counters** ([`counter_add`]) and **gauges** ([`gauge_max`]) are
//!   named atomic totals (funnel sizes, accesses replayed, stall cycles).
//!   Worker threads may bump them concurrently; [`snapshot_counters`]
//!   emits the totals as events at phase boundaries, where they are
//!   deterministic.
//! * **Histograms** ([`histogram_record`], [`time_scope`]) are
//!   lock-striped, mergeable latency distributions with a deterministic
//!   power-of-two bucket layout ([`hist`]): per-candidate simulate latency,
//!   cache-probe latency and per-worker occupancy get p50/p90/p99
//!   summaries, not just totals. Spans feed their durations in
//!   automatically, so every phase also has a duration histogram.
//! * **Worker lanes** ([`worker_span`]) and **progress ticks**
//!   ([`progress`]) describe parallel execution; they are the only
//!   [schedule-dependent](Event::schedule_dependent) events.
//! * **Time series** ([`timeseries`]) are fixed-capacity ring buffers of
//!   periodic registry snapshots — deterministic *logical* sampling
//!   points ([`logical_mark`]) kept strictly separate from wall-clock
//!   samples taken by a background [`Sampler`] — feeding live status
//!   files, `mce top` sparklines and the OpenMetrics exporter.
//!
//! Events go to a process-global [`Sink`] installed with [`install`]. With
//! no sink installed (the default), every instrumentation call
//! short-circuits on one relaxed atomic load — the pipeline's hot paths
//! pay effectively nothing, and results are bit-identical with tracing on
//! or off because instrumentation never branches the computation.
//!
//! ## Sinks
//!
//! * [`MemorySink`] — in-memory buffer (tests, programmatic inspection).
//! * [`JsonLinesSink`] — machine-readable JSON-lines event log.
//! * [`ChromeTraceSink`] — Chrome trace-event JSON; open the file in
//!   `chrome://tracing` or <https://ui.perfetto.dev> to see the run as a
//!   flame chart with per-worker lanes.
//! * [`ProgressReporter`] — human-readable progress lines (rate + ETA) on
//!   stderr.
//! * [`MultiSink`] — fan-out to several of the above.
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//!
//! let sink = Arc::new(mce_obs::MemorySink::new());
//! mce_obs::install(sink.clone());
//! {
//!     let _phase = mce_obs::span("demo.phase");
//!     mce_obs::counter_add("demo.items", 3);
//! }
//! mce_obs::snapshot_counters();
//! mce_obs::uninstall();
//!
//! let events = sink.take();
//! let ids: Vec<String> = events.iter().map(|e| e.identity()).collect();
//! assert_eq!(
//!     ids,
//!     [
//!         "span_begin:demo.phase",
//!         "span_end:demo.phase",
//!         "counter:demo.items=3",
//!         // The span fed its duration into the histogram registry.
//!         "hist:demo.phase:n=1",
//!     ]
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod hist;
pub mod json;
pub mod recorder;
pub mod sink;
pub mod timeseries;

pub use event::{escape_json, Event, EventKind, Level};
pub use hist::{Histogram, HistogramSummary};
pub use recorder::{
    counter_add, counter_restore, counter_value, counters_snapshot, debug, emit, gauge_max,
    gauge_restore, gauge_value, gauges_snapshot, histogram_record, histogram_summary,
    histograms_snapshot, info, init_level_from_env, install, level_enabled, message, now_us,
    progress, reset_counters, set_level, snapshot_counters, span, time_scope, tracing_enabled,
    uninstall, worker_span, SpanGuard, TimeScope,
};
pub use sink::{
    render_chrome_trace, ChromeTraceSink, JsonLinesSink, MemorySink, MultiSink, NullSink,
    ProgressReporter, Sink,
};
pub use timeseries::{
    logical_mark, logical_series, series_capacity, set_series_capacity, wall_sample, wall_series,
    Sampler, SeriesPoint, DEFAULT_SERIES_CAPACITY,
};
