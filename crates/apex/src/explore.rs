//! The APEX exploration loop: evaluate candidates in the cost / miss-ratio
//! space and select the pareto-like frontier (the paper's Figure 3).

use crate::candidates::{generate_candidates, CandidateConfig};
use crate::extract::classify;
use mce_appmodel::{TraceBlocks, Workload};
use mce_memlib::MemoryArchitecture;
use mce_obs as obs;
use mce_sim::{simulate_blocks, Preset, SystemConfig};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Configuration of an APEX run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ApexConfig {
    /// Trace length used for extraction and evaluation.
    pub trace_len: usize,
    /// Candidate generation knobs.
    pub candidates: CandidateConfig,
    /// Maximum architectures selected for the ConEx stage (the paper
    /// selects five for compress).
    pub max_selected: usize,
}

impl ApexConfig {
    /// The configuration for a [`Preset`]: [`Preset::Fast`] is small and
    /// quick for tests, [`Preset::Paper`] is the configuration used by
    /// the experiments.
    pub fn preset(preset: Preset) -> Self {
        match preset {
            Preset::Fast => ApexConfig {
                trace_len: 15_000,
                candidates: CandidateConfig::fast(),
                max_selected: 4,
            },
            Preset::Paper => ApexConfig {
                trace_len: 60_000,
                candidates: CandidateConfig::paper(),
                max_selected: 5,
            },
        }
    }

    /// Small and quick, for tests.
    #[deprecated(note = "use `ApexConfig::preset(Preset::Fast)`")]
    pub fn fast() -> Self {
        Self::preset(Preset::Fast)
    }

    /// The configuration used by the experiments.
    #[deprecated(note = "use `ApexConfig::preset(Preset::Paper)`")]
    pub fn paper() -> Self {
        Self::preset(Preset::Paper)
    }
}

/// One evaluated memory architecture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApexPoint {
    /// The architecture.
    pub arch: MemoryArchitecture,
    /// Memory-modules gate cost (Figure 3's X axis).
    pub cost_gates: u64,
    /// Overall miss ratio — accesses that had to go off-chip (Figure 3's Y
    /// axis).
    pub miss_ratio: f64,
    /// Average memory latency under the simple shared-bus connectivity.
    pub avg_latency_cycles: f64,
}

impl fmt::Display for ApexPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} gates, miss {:.3}, {:.2} cyc",
            self.arch.name(),
            self.cost_gates,
            self.miss_ratio,
            self.avg_latency_cycles
        )
    }
}

/// Result of an APEX exploration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApexResult {
    points: Vec<ApexPoint>,
    selected: Vec<usize>,
}

impl ApexResult {
    /// Every evaluated design point (the full Figure 3 scatter).
    pub fn points(&self) -> &[ApexPoint] {
        &self.points
    }

    /// The selected pareto architectures, cheapest first (Figure 3's
    /// labelled points 1..5).
    pub fn selected_points(&self) -> impl Iterator<Item = &ApexPoint> {
        self.selected.iter().map(|&i| &self.points[i])
    }

    /// The selected architectures, cloned for handing to ConEx.
    pub fn selected(&self) -> Vec<MemoryArchitecture> {
        self.selected_points().map(|p| p.arch.clone()).collect()
    }
}

/// The APEX explorer.
///
/// See the crate docs for the three stages; `explore` runs them end to end.
#[derive(Debug, Clone)]
pub struct ApexExplorer {
    config: ApexConfig,
}

impl ApexExplorer {
    /// Creates an explorer with the given configuration.
    pub fn new(config: ApexConfig) -> Self {
        ApexExplorer { config }
    }

    /// The configuration.
    pub fn config(&self) -> &ApexConfig {
        &self.config
    }

    /// Runs extraction, candidate generation, evaluation and selection.
    ///
    /// Compiles the trace once for the run; use
    /// [`ApexExplorer::explore_with_blocks`] to share an already-compiled
    /// trace (e.g. with a subsequent ConEx stage).
    pub fn explore(&self, workload: &Workload) -> ApexResult {
        let blocks = TraceBlocks::compile(workload, self.config.trace_len);
        self.explore_with_blocks(workload, &blocks)
    }

    /// [`ApexExplorer::explore`] over pre-compiled trace blocks, which
    /// must cover at least [`ApexConfig::trace_len`] accesses of
    /// `workload`. Bit-identical to [`ApexExplorer::explore`].
    pub fn explore_with_blocks(&self, workload: &Workload, blocks: &TraceBlocks) -> ApexResult {
        let _run = obs::span("apex.explore");
        obs::info(|| {
            format!(
                "apex: exploring memory architectures for `{}`",
                workload.name()
            )
        });
        let reports = {
            let _s = obs::span("apex.classify");
            classify(workload, self.config.trace_len)
        };
        let candidates = {
            let _s = obs::span("apex.generate");
            generate_candidates(workload, &reports, &self.config.candidates)
        };
        obs::counter_add("apex.candidates_generated", candidates.len() as u64);
        let mut points: Vec<ApexPoint> = {
            let _s = obs::span("apex.evaluate");
            candidates
                .into_iter()
                .filter_map(|arch| {
                    let _t = obs::time_scope("apex.candidate_eval_us");
                    let sys = SystemConfig::with_shared_bus(workload, arch.clone()).ok()?;
                    let stats = simulate_blocks(&sys, workload, blocks, self.config.trace_len);
                    Some(ApexPoint {
                        cost_gates: arch.gate_cost(),
                        miss_ratio: stats.miss_ratio(),
                        avg_latency_cycles: stats.avg_latency_cycles,
                        arch,
                    })
                })
                .collect()
        };
        obs::counter_add("apex.candidates_evaluated", points.len() as u64);
        let (pareto, selected) = {
            let _s = obs::span("apex.select");
            points.sort_by(|a, b| {
                a.cost_gates
                    .cmp(&b.cost_gates)
                    .then(a.miss_ratio.total_cmp(&b.miss_ratio))
            });
            let pareto = pareto_indices(&points);
            let selected = downsample(&pareto, self.config.max_selected);
            (pareto, selected)
        };
        obs::gauge_max("apex.pareto_front_size", pareto.len() as u64);
        obs::counter_add("apex.selected", selected.len() as u64);
        obs::snapshot_counters();
        ApexResult { points, selected }
    }
}

/// Indices of the cost/miss-ratio pareto frontier, assuming `points` sorted
/// by increasing cost. A design is on the frontier if no other design is
/// better (strictly, in at least one metric and not worse in the other).
fn pareto_indices(points: &[ApexPoint]) -> Vec<usize> {
    let mut out = Vec::new();
    let mut best_miss = f64::INFINITY;
    for (i, p) in points.iter().enumerate() {
        if p.miss_ratio < best_miss {
            best_miss = p.miss_ratio;
            out.push(i);
        }
    }
    out
}

/// Keeps at most `max` indices, always retaining the first and last, evenly
/// spread otherwise.
fn downsample(indices: &[usize], max: usize) -> Vec<usize> {
    if indices.len() <= max || max == 0 {
        return indices.to_vec();
    }
    if max == 1 {
        return vec![indices[0]];
    }
    (0..max)
        .map(|k| indices[k * (indices.len() - 1) / (max - 1)])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mce_appmodel::benchmarks;

    #[test]
    fn selected_are_pareto_and_sorted() {
        let w = benchmarks::compress();
        let result = ApexExplorer::new(ApexConfig::preset(Preset::Fast)).explore(&w);
        let sel: Vec<&ApexPoint> = result.selected_points().collect();
        assert!(!sel.is_empty());
        for pair in sel.windows(2) {
            assert!(pair[0].cost_gates <= pair[1].cost_gates, "sorted by cost");
            assert!(
                pair[0].miss_ratio >= pair[1].miss_ratio,
                "costlier selection must have lower miss ratio"
            );
        }
    }

    #[test]
    fn selection_respects_cap() {
        let w = benchmarks::li();
        let cfg = ApexConfig::preset(Preset::Fast);
        let cap = cfg.max_selected;
        let result = ApexExplorer::new(cfg).explore(&w);
        assert!(result.selected_points().count() <= cap);
    }

    #[test]
    fn augmented_architectures_beat_cache_only_on_compress() {
        // The point of APEX: pattern-specific modules cut the miss ratio
        // below what any same-cost cache manages.
        let w = benchmarks::compress();
        let result = ApexExplorer::new(ApexConfig::preset(Preset::Fast)).explore(&w);
        let best_selected = result
            .selected_points()
            .map(|p| p.miss_ratio)
            .fold(f64::INFINITY, f64::min);
        let best_cache_only = result
            .points()
            .iter()
            .filter(|p| p.arch.on_chip_modules().count() == 1)
            .map(|p| p.miss_ratio)
            .fold(f64::INFINITY, f64::min);
        assert!(
            best_selected <= best_cache_only,
            "selected {best_selected} vs cache-only {best_cache_only}"
        );
    }

    #[test]
    fn all_points_costed_and_finite() {
        let w = benchmarks::vocoder();
        let result = ApexExplorer::new(ApexConfig::preset(Preset::Fast)).explore(&w);
        for p in result.points() {
            assert!(p.cost_gates > 0);
            assert!(p.miss_ratio.is_finite());
            assert!((0.0..=1.0).contains(&p.miss_ratio));
            assert!(p.avg_latency_cycles >= 0.0);
        }
    }

    #[test]
    fn downsample_keeps_extremes() {
        let idx = vec![0, 1, 2, 3, 4, 5, 6, 7, 8, 9];
        let d = downsample(&idx, 4);
        assert_eq!(d.len(), 4);
        assert_eq!(d[0], 0);
        assert_eq!(*d.last().unwrap(), 9);
    }

    #[test]
    fn downsample_noop_when_small() {
        let idx = vec![2, 5];
        assert_eq!(downsample(&idx, 5), idx);
    }
}
