//! # mce-apex — Access Pattern-based Memory Exploration
//!
//! The substrate stage the paper builds on (its reference \[12\], Grun/Dutt/
//! Nicolau, ISSS 2001): starting from the application, APEX
//!
//! 1. **extracts** the most active access patterns exhibited by the
//!    application's data structures ([`extract`]),
//! 2. **generates** candidate memory-module architectures that match those
//!    patterns — cache-only baselines plus combinations of SRAMs, stream
//!    buffers and linked-list (self-indirect) DMAs ([`candidates`]), and
//! 3. **explores** the candidates in the cost / miss-ratio space under a
//!    simple connectivity model (one shared system bus), pruning to the
//!    pareto-like frontier and selecting the most promising architectures
//!    ([`explore`]) — the labelled points of the paper's Figure 3.
//!
//! The selected architectures are the input to the ConEx connectivity
//! exploration in `mce-conex`.
//!
//! ## Example
//!
//! ```
//! use mce_apex::{ApexConfig, ApexExplorer};
//! use mce_appmodel::benchmarks;
//! use mce_sim::Preset;
//!
//! let workload = benchmarks::vocoder();
//! let result = ApexExplorer::new(ApexConfig::preset(Preset::Fast)).explore(&workload);
//! assert!(!result.selected().is_empty());
//! // Selected architectures are pareto points: no one dominates another.
//! for a in result.selected_points() {
//!     for b in result.selected_points() {
//!         let dominates = a.cost_gates < b.cost_gates && a.miss_ratio < b.miss_ratio;
//!         assert!(!dominates);
//!     }
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod candidates;
pub mod explore;
pub mod extract;

pub use candidates::{generate_candidates, CandidateConfig};
pub use explore::{ApexConfig, ApexExplorer, ApexPoint, ApexResult};
pub use extract::{classify, PatternClass, PatternReport};
