//! Candidate memory-architecture generation.
//!
//! APEX generates cache-only baselines over a size sweep, plus augmented
//! architectures that give the hottest extracted patterns their own
//! pattern-specific modules: stream buffers for streams, self-indirect DMAs
//! for value-dependent traffic, SRAM scratchpads for small hot structures.
//! Augmentations are applied as subsets of the hottest-first option list so
//! the candidate set covers "cheap single fix" through "all fixes" without
//! exploding combinatorially.

use crate::extract::{PatternClass, PatternReport};
use mce_appmodel::{DsId, Workload};
use mce_memlib::{CacheConfig, MemModuleKind, MemoryArchitecture};
use serde::{Deserialize, Serialize};

/// Knobs for candidate generation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CandidateConfig {
    /// Cache sizes (KiB) for the cache-only baselines.
    pub baseline_cache_kib: Vec<u64>,
    /// Cache sizes (KiB) used as the base of augmented architectures.
    pub augmented_cache_kib: Vec<u64>,
    /// Maximum pattern-specific augmentation options considered (hottest
    /// first); subsets of this list are enumerated, so candidates grow as
    /// `2^max_augmentations`.
    pub max_augmentations: usize,
    /// `(L1 KiB, L2 KiB)` pairs for two-level baselines (the multi-level
    /// extension). Empty — the paper's single-level behaviour — by
    /// default.
    #[serde(default)]
    pub two_level_kib: Vec<(u64, u64)>,
}

impl CandidateConfig {
    /// A small sweep for tests and quick runs.
    pub fn fast() -> Self {
        CandidateConfig {
            baseline_cache_kib: vec![1, 4, 16],
            augmented_cache_kib: vec![4],
            max_augmentations: 3,
            two_level_kib: Vec::new(),
        }
    }

    /// The full sweep used by the experiments.
    pub fn paper() -> Self {
        CandidateConfig {
            baseline_cache_kib: vec![1, 2, 4, 8, 16, 32],
            augmented_cache_kib: vec![2, 4, 8],
            max_augmentations: 4,
            two_level_kib: Vec::new(),
        }
    }
}

/// One pattern-specific augmentation option: give `ds` its own module.
#[derive(Debug, Clone, PartialEq)]
struct Augmentation {
    ds: DsId,
    module: MemModuleKind,
    tag: String,
}

/// Derives the augmentation options from the extraction reports, hottest
/// first.
fn augmentations(workload: &Workload, reports: &[PatternReport], cap: usize) -> Vec<Augmentation> {
    let mut out = Vec::new();
    for r in reports {
        let ds = workload.data_structure(r.ds);
        let module = match r.class {
            PatternClass::Stream => {
                // Produced (write-dominated) streams get a FIFO drain queue;
                // consumed streams a prefetching stream buffer.
                if ds.write_fraction() >= 0.5 {
                    Some(MemModuleKind::Fifo {
                        entries: 4,
                        line_bytes: 32,
                    })
                } else {
                    Some(MemModuleKind::StreamBuffer {
                        entries: 4,
                        line_bytes: 32,
                    })
                }
            }
            PatternClass::SelfIndirect | PatternClass::Indexed => {
                Some(MemModuleKind::SelfIndirectDma {
                    depth: 16,
                    element_bytes: ds.element_size().min(64) as u32,
                })
            }
            PatternClass::HotLocal => Some(MemModuleKind::Sram {
                bytes: ds.footprint().next_power_of_two(),
            }),
            PatternClass::Irregular => None,
        };
        if let Some(module) = module {
            let tag_kind = match module {
                MemModuleKind::Fifo { .. } => "fifo",
                _ => short_tag(r.class),
            };
            out.push(Augmentation {
                ds: r.ds,
                module,
                tag: format!("{tag_kind}({})", ds.name()),
            });
            if out.len() == cap {
                break;
            }
        }
    }
    out
}

fn short_tag(class: PatternClass) -> &'static str {
    match class {
        PatternClass::Stream => "sb",
        PatternClass::SelfIndirect | PatternClass::Indexed => "dma",
        PatternClass::HotLocal => "sp",
        PatternClass::Irregular => "cache",
    }
}

/// Generates the candidate memory architectures for `workload` given the
/// extraction `reports`.
///
/// Invalid combinations (e.g. scratchpad overflow) are silently skipped —
/// the generator only proposes, the validator disposes.
pub fn generate_candidates(
    workload: &Workload,
    reports: &[PatternReport],
    config: &CandidateConfig,
) -> Vec<MemoryArchitecture> {
    let mut out = Vec::new();

    // Cache-only baselines (the paper's "traditional" configurations).
    for &kib in &config.baseline_cache_kib {
        out.push(MemoryArchitecture::cache_only(
            workload,
            CacheConfig::kilobytes(kib),
        ));
    }

    // Two-level baselines (extension): L1 backed by an L2.
    for &(l1, l2) in &config.two_level_kib {
        let arch = MemoryArchitecture::builder(format!("c{l1}k+l2_{l2}k"))
            .module("L1", MemModuleKind::Cache(CacheConfig::kilobytes(l1)))
            .module("L2", MemModuleKind::Cache(CacheConfig::kilobytes(l2)))
            .map_rest_to(0)
            .backed_by(0, 1)
            .build(workload);
        if let Ok(arch) = arch {
            out.push(arch);
        }
    }

    // Augmented architectures: every non-empty subset of the option list,
    // on each augmented cache size.
    let options = augmentations(workload, reports, config.max_augmentations);
    for &kib in &config.augmented_cache_kib {
        for mask in 1u32..(1 << options.len()) {
            let chosen: Vec<&Augmentation> = options
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, a)| a)
                .collect();
            let mut name = format!("c{kib}k");
            for a in &chosen {
                name.push('+');
                name.push_str(&a.tag);
            }
            let mut builder = MemoryArchitecture::builder(name)
                .module("L1", MemModuleKind::Cache(CacheConfig::kilobytes(kib)));
            for (j, a) in chosen.iter().enumerate() {
                builder = builder.module(format!("aug{j}"), a.module).map(a.ds, j + 1);
            }
            if let Ok(arch) = builder.map_rest_to(0).build(workload) {
                out.push(arch);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::classify;
    use mce_appmodel::benchmarks;

    const SAMPLE: usize = 30_000;

    #[test]
    fn baselines_present() {
        let w = benchmarks::compress();
        let reports = classify(&w, SAMPLE);
        let cands = generate_candidates(&w, &reports, &CandidateConfig::fast());
        let baselines = cands
            .iter()
            .filter(|a| a.on_chip_modules().count() == 1)
            .count();
        assert_eq!(baselines, 3, "one per baseline cache size");
    }

    #[test]
    fn all_candidates_validate() {
        for w in benchmarks::all() {
            let reports = classify(&w, SAMPLE);
            for cand in generate_candidates(&w, &reports, &CandidateConfig::paper()) {
                assert!(cand.validate(&w).is_ok(), "{}: {}", w.name(), cand.name());
            }
        }
    }

    #[test]
    fn compress_gets_a_dma_candidate() {
        let w = benchmarks::compress();
        let reports = classify(&w, SAMPLE);
        let cands = generate_candidates(&w, &reports, &CandidateConfig::paper());
        assert!(
            cands.iter().any(|a| a.describe().contains("DMA")),
            "compress needs linked-list DMA candidates"
        );
    }

    #[test]
    fn vocoder_gets_stream_buffer_or_sram_candidates() {
        let w = benchmarks::vocoder();
        let reports = classify(&w, SAMPLE);
        let cands = generate_candidates(&w, &reports, &CandidateConfig::paper());
        assert!(cands
            .iter()
            .any(|a| a.describe().contains("stream buffer") || a.describe().contains("SRAM")));
    }

    #[test]
    fn write_streams_get_fifo_not_stream_buffer() {
        // compress's output_stream is 100% writes: it must be offered a
        // FIFO drain queue, never a read-prefetching stream buffer.
        let w = benchmarks::compress();
        let reports = classify(&w, SAMPLE);
        let cands = generate_candidates(
            &w,
            &reports,
            &CandidateConfig {
                baseline_cache_kib: vec![4],
                augmented_cache_kib: vec![4],
                max_augmentations: 6,
                two_level_kib: Vec::new(),
            },
        );
        assert!(
            cands
                .iter()
                .any(|a| a.name().contains("fifo(output_stream)")),
            "no FIFO candidate for output_stream"
        );
        assert!(
            !cands.iter().any(|a| a.name().contains("sb(output_stream)")),
            "output_stream must not get a stream buffer"
        );
    }

    #[test]
    fn candidate_counts_match_formula() {
        let w = benchmarks::li();
        let reports = classify(&w, SAMPLE);
        let cfg = CandidateConfig::fast();
        let cands = generate_candidates(&w, &reports, &cfg);
        // 3 baselines + 1 cache size × (2^k - 1) subsets, k ≤ 3, minus any
        // invalid combos (none expected for li with fast()).
        assert!(cands.len() >= 3);
        assert!(cands.len() < 3 + (1 << cfg.max_augmentations));
    }

    #[test]
    fn two_level_baselines_generated_when_requested() {
        let w = benchmarks::compress();
        let reports = classify(&w, SAMPLE);
        let cfg = CandidateConfig {
            two_level_kib: vec![(1, 16), (2, 32)],
            ..CandidateConfig::fast()
        };
        let cands = generate_candidates(&w, &reports, &cfg);
        let two_level: Vec<_> = cands.iter().filter(|a| a.name().contains("l2_")).collect();
        assert_eq!(two_level.len(), 2);
        for a in &two_level {
            assert!(a.validate(&w).is_ok());
            assert!(a.backing_of(mce_memlib::ModuleId::new(0)).is_some());
        }
    }

    #[test]
    fn names_are_descriptive() {
        let w = benchmarks::compress();
        let reports = classify(&w, SAMPLE);
        let cands = generate_candidates(&w, &reports, &CandidateConfig::fast());
        let augmented = cands.iter().find(|a| a.name().contains('+'));
        let a = augmented.expect("some augmented candidate");
        assert!(a.name().starts_with('c'), "{}", a.name());
    }
}
