//! Access-pattern extraction.
//!
//! APEX classifies each data structure's dynamic behaviour so candidate
//! generation can match modules to patterns. Two sources of evidence are
//! combined, mirroring the original tool:
//!
//! * **Trace evidence** — stride regularity and working-set reuse measured
//!   on a trace sample. This identifies streams and cache-friendly loop
//!   traffic, and separates them from irregular traffic.
//! * **Source evidence** — the original APEX walked the C source, where
//!   *self-indirect* references (`a[a[i]]`, linked lists) are syntactically
//!   visible; an address trace alone cannot distinguish them from random
//!   traffic. Our workload models carry the declared [`AccessPattern`],
//!   standing in for that source-level analysis.

use mce_appmodel::{AccessPattern, AccessProfile, DsId, Workload};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

/// The pattern classes APEX matches memory modules to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PatternClass {
    /// Constant-stride stream — candidate for a stream buffer.
    Stream,
    /// Value-dependent chasing — candidate for a self-indirect DMA.
    SelfIndirect,
    /// Indexed `A[B[i]]` traffic — candidate for a self-indirect DMA.
    Indexed,
    /// Small, heavily reused working set — candidate for an SRAM scratchpad.
    HotLocal,
    /// Everything else — served by the cache.
    Irregular,
}

impl fmt::Display for PatternClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PatternClass::Stream => "stream",
            PatternClass::SelfIndirect => "self-indirect",
            PatternClass::Indexed => "indexed",
            PatternClass::HotLocal => "hot-local",
            PatternClass::Irregular => "irregular",
        })
    }
}

/// Per-data-structure extraction result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PatternReport {
    /// The data structure.
    pub ds: DsId,
    /// Its classified pattern.
    pub class: PatternClass,
    /// Fraction of dynamic accesses attributable to this structure.
    pub access_share: f64,
    /// Fraction of successor address deltas equal to the dominant stride
    /// (trace evidence).
    pub stride_regularity: f64,
    /// Distinct addresses touched divided by accesses (low = high reuse).
    pub reuse_factor: f64,
}

/// Footprint below which a heavily reused structure is an SRAM candidate.
const HOT_LOCAL_MAX_BYTES: u64 = 8 * 1024;
/// Stride regularity above which a structure is classified as a stream.
const STREAM_REGULARITY: f64 = 0.8;
/// Reuse factor below which traffic is considered cache/scratchpad friendly.
const HOT_REUSE: f64 = 0.3;

/// Classifies every data structure of `workload`, using a trace sample of
/// `sample_len` accesses.
///
/// Reports are ordered hottest-first (the "most active access patterns"
/// APEX attacks first).
pub fn classify(workload: &Workload, sample_len: usize) -> Vec<PatternReport> {
    let profile = AccessProfile::from_workload(workload, sample_len);
    let total = profile.total_accesses().max(1) as f64;

    // Trace evidence: dominant-stride share and reuse per structure.
    let mut last_addr: Vec<Option<u64>> = vec![None; workload.len()];
    let mut deltas: Vec<Vec<i64>> = vec![Vec::new(); workload.len()];
    let mut touched: Vec<HashSet<u64>> = vec![HashSet::new(); workload.len()];
    for acc in workload.trace(sample_len) {
        let i = acc.ds.index();
        let raw = acc.addr.raw();
        if let Some(prev) = last_addr[i] {
            deltas[i].push(raw as i64 - prev as i64);
        }
        last_addr[i] = Some(raw);
        touched[i].insert(raw);
    }

    let mut reports: Vec<PatternReport> = (0..workload.len())
        .map(|i| {
            let ds = DsId::new(i);
            let stats = profile.ds_stats(ds);
            let n = stats.accesses.max(1) as f64;
            let stride_regularity = dominant_delta_share(&deltas[i]);
            let reuse_factor = touched[i].len() as f64 / n;
            let declared = workload.data_structure(ds).pattern();
            let class = classify_one(
                declared,
                workload.data_structure(ds).footprint(),
                stride_regularity,
                reuse_factor,
            );
            PatternReport {
                ds,
                class,
                access_share: stats.accesses as f64 / total,
                stride_regularity,
                reuse_factor,
            }
        })
        .collect();
    reports.sort_by(|a, b| b.access_share.total_cmp(&a.access_share));
    reports
}

/// Share of the most common delta among successor deltas.
fn dominant_delta_share(deltas: &[i64]) -> f64 {
    if deltas.is_empty() {
        return 0.0;
    }
    let mut counts = std::collections::HashMap::new();
    for &d in deltas {
        *counts.entry(d).or_insert(0u64) += 1;
    }
    let max = counts.values().copied().max().unwrap_or(0);
    max as f64 / deltas.len() as f64
}

/// Combines trace and source evidence into a class.
fn classify_one(
    declared: AccessPattern,
    footprint: u64,
    stride_regularity: f64,
    reuse_factor: f64,
) -> PatternClass {
    // Source evidence identifies value-dependent traffic the trace cannot.
    if matches!(declared, AccessPattern::SelfIndirect) {
        return PatternClass::SelfIndirect;
    }
    if matches!(declared, AccessPattern::Indexed { .. }) {
        return PatternClass::Indexed;
    }
    // Trace evidence decides the regular classes. High reuse over a small
    // footprint wins over stride regularity: loop nests sweep with constant
    // stride too, but a scratchpad serves them strictly better than a
    // stream buffer would.
    if reuse_factor <= HOT_REUSE && footprint <= HOT_LOCAL_MAX_BYTES {
        PatternClass::HotLocal
    } else if stride_regularity >= STREAM_REGULARITY {
        PatternClass::Stream
    } else {
        PatternClass::Irregular
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mce_appmodel::benchmarks;

    const SAMPLE: usize = 30_000;

    fn report_for<'a>(reports: &'a [PatternReport], w: &Workload, name: &str) -> &'a PatternReport {
        let idx = w
            .data_structures()
            .iter()
            .position(|d| d.name() == name)
            .unwrap_or_else(|| panic!("no ds named {name}"));
        reports
            .iter()
            .find(|r| r.ds == DsId::new(idx))
            .expect("report exists")
    }

    #[test]
    fn compress_htab_is_self_indirect() {
        let w = benchmarks::compress();
        let reports = classify(&w, SAMPLE);
        assert_eq!(
            report_for(&reports, &w, "htab").class,
            PatternClass::SelfIndirect
        );
    }

    #[test]
    fn compress_input_is_stream() {
        let w = benchmarks::compress();
        let reports = classify(&w, SAMPLE);
        let r = report_for(&reports, &w, "input_stream");
        assert_eq!(r.class, PatternClass::Stream);
        assert!(r.stride_regularity > 0.8, "{}", r.stride_regularity);
    }

    #[test]
    fn compress_locals_are_hot_local() {
        let w = benchmarks::compress();
        let reports = classify(&w, SAMPLE);
        let r = report_for(&reports, &w, "locals");
        assert_eq!(r.class, PatternClass::HotLocal);
        assert!(r.reuse_factor < 0.3, "{}", r.reuse_factor);
    }

    #[test]
    fn li_heap_is_self_indirect_and_hottest() {
        let w = benchmarks::li();
        let reports = classify(&w, SAMPLE);
        assert_eq!(
            reports[0].class,
            PatternClass::SelfIndirect,
            "cons_heap leads"
        );
        assert!(reports[0].access_share > 0.3);
    }

    #[test]
    fn shares_sum_to_one() {
        let w = benchmarks::vocoder();
        let reports = classify(&w, SAMPLE);
        let sum: f64 = reports.iter().map(|r| r.access_share).sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
    }

    #[test]
    fn reports_sorted_hottest_first() {
        let w = benchmarks::compress();
        let reports = classify(&w, SAMPLE);
        for pair in reports.windows(2) {
            assert!(pair[0].access_share >= pair[1].access_share);
        }
    }

    #[test]
    fn vocoder_streams_detected() {
        let w = benchmarks::vocoder();
        let reports = classify(&w, SAMPLE);
        assert_eq!(
            report_for(&reports, &w, "speech_in").class,
            PatternClass::Stream
        );
        assert_eq!(
            report_for(&reports, &w, "frame_out").class,
            PatternClass::Stream
        );
    }

    #[test]
    fn class_display() {
        assert_eq!(PatternClass::SelfIndirect.to_string(), "self-indirect");
        assert_eq!(PatternClass::HotLocal.to_string(), "hot-local");
    }
}
