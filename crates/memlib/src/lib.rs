//! # mce-memlib — memory-module IP library
//!
//! Behavioural, cost and energy models for the memory modules the paper's
//! APEX/ConEx flow draws from its memory IP library: set-associative
//! **caches**, on-chip **SRAM** scratchpads, **stream buffers**,
//! **self-indirect (linked-list) DMA** modules, **FIFOs** and the off-chip
//! **DRAM**. A [`MemoryArchitecture`] combines a set of modules with a
//! data-structure→module mapping; the system simulator (`mce-sim`) drives the
//! behavioural models with a trace and the connectivity layer on top.
//!
//! The models are deliberately at the same granularity the paper used
//! (SIMPRESS-style cycle-level behavioural models, gate-count costs from
//! Catthoor-style area models, per-access energy): accurate *relative*
//! ordering is what drives the exploration, not absolute silicon numbers.
//!
//! ## Example
//!
//! ```
//! use mce_memlib::{CacheConfig, MemoryArchitecture};
//! use mce_appmodel::benchmarks;
//!
//! let workload = benchmarks::compress();
//! let arch = MemoryArchitecture::cache_only(&workload, CacheConfig::kilobytes(8));
//! assert!(arch.gate_cost() > 0);
//! assert!(arch.validate(&workload).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arch;
pub mod cache;
pub mod cost;
pub mod dma;
pub mod dram;
pub mod energy;
pub mod fifo;
pub mod module;
pub mod sram;
pub mod stream_buffer;

pub use arch::{ArchError, MemoryArchitecture, ModuleId};
pub use cache::{CacheConfig, CacheState, ReplacementPolicy, WriteMissPolicy, WritePolicy};
pub use dma::SelfIndirectDmaState;
pub use dram::{DramConfig, DramState};
pub use fifo::FifoState;
pub use module::{MemModule, MemModuleKind, ModuleModel, ModuleResponse};
pub use sram::SramState;
pub use stream_buffer::StreamBufferState;
