//! Off-chip DRAM model.
//!
//! Every architecture has exactly one off-chip DRAM backing store. The model
//! is a classic open-row SDRAM: accesses to the currently open row pay only
//! the column (CAS) latency; a row change pays precharge + activate first.
//! Burst transfers amortize column time over consecutive beats; the system
//! simulator adds the off-chip bus transfer time on top.

use crate::module::{ModuleModel, ModuleResponse};
use mce_appmodel::{AccessKind, Addr};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Static DRAM timing configuration (cycles are CPU cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DramConfig {
    /// Row size in bytes (one open page).
    pub row_bytes: u64,
    /// Precharge + activate penalty on a row change.
    pub row_miss_cycles: u32,
    /// Column access latency (open row).
    pub cas_cycles: u32,
    /// Bytes delivered per burst beat.
    pub burst_bytes: u32,
    /// Cycles per burst beat after the first.
    pub beat_cycles: u32,
}

impl DramConfig {
    /// A typical early-2000s embedded SDRAM part.
    pub const fn typical() -> Self {
        DramConfig {
            row_bytes: 2048,
            row_miss_cycles: 18,
            cas_cycles: 6,
            burst_bytes: 8,
            beat_cycles: 1,
        }
    }

    /// Latency in cycles to transfer `bytes` once the access has started
    /// (first word included).
    pub fn transfer_cycles(&self, bytes: u64) -> u32 {
        if bytes == 0 {
            return 0;
        }
        let beats = bytes.div_ceil(self.burst_bytes as u64) as u32;
        self.cas_cycles + beats.saturating_sub(1) * self.beat_cycles
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        Self::typical()
    }
}

impl fmt::Display for DramConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DRAM row={}B tRP+tRCD={} tCAS={}",
            self.row_bytes, self.row_miss_cycles, self.cas_cycles
        )
    }
}

/// Mutable state of the DRAM: the currently open row.
#[derive(Debug, Clone)]
pub struct DramState {
    config: DramConfig,
    open_row: Option<u64>,
    row_hits: u64,
    row_misses: u64,
}

impl DramState {
    /// Creates the DRAM model with all banks precharged.
    pub fn new(config: DramConfig) -> Self {
        DramState {
            config,
            open_row: None,
            row_hits: 0,
            row_misses: 0,
        }
    }

    /// The static configuration.
    pub fn config(&self) -> DramConfig {
        self.config
    }

    /// Row-buffer hit count.
    pub fn row_hits(&self) -> u64 {
        self.row_hits
    }

    /// Row-buffer miss count.
    pub fn row_misses(&self) -> u64 {
        self.row_misses
    }

    /// Latency of an access of `bytes` at `addr`, updating the open row.
    pub fn access_cycles(&mut self, addr: Addr, bytes: u64) -> u32 {
        let row = addr.block(self.config.row_bytes);
        let penalty = if self.open_row == Some(row) {
            self.row_hits += 1;
            0
        } else {
            self.row_misses += 1;
            self.open_row = Some(row);
            self.config.row_miss_cycles
        };
        penalty + self.config.transfer_cycles(bytes.max(1))
    }
}

impl ModuleModel for DramState {
    fn access(&mut self, addr: Addr, _kind: AccessKind, _tick: u64) -> ModuleResponse {
        // When the CPU talks to DRAM directly (no on-chip module mapped),
        // every access is a demand fetch of one burst.
        let bytes = self.config.burst_bytes as u64;
        let cycles = self.access_cycles(addr, bytes);
        ModuleResponse {
            hit: false,
            service_cycles: cycles,
            demand_fill_bytes: bytes,
            background_bytes: 0,
        }
    }

    fn reset(&mut self) {
        self.open_row = None;
        self.row_hits = 0;
        self.row_misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_row_is_cheaper() {
        let mut d = DramState::new(DramConfig::typical());
        let cold = d.access_cycles(Addr::new(0), 8);
        let warm = d.access_cycles(Addr::new(64), 8);
        assert!(warm < cold, "warm {warm} cold {cold}");
        assert_eq!(cold - warm, DramConfig::typical().row_miss_cycles);
    }

    #[test]
    fn row_change_pays_penalty() {
        let mut d = DramState::new(DramConfig::typical());
        d.access_cycles(Addr::new(0), 8);
        let other_row = d.access_cycles(Addr::new(4096), 8);
        assert_eq!(
            other_row,
            DramConfig::typical().row_miss_cycles + DramConfig::typical().transfer_cycles(8)
        );
        assert_eq!(d.row_misses(), 2);
        assert_eq!(d.row_hits(), 0);
    }

    #[test]
    fn burst_amortizes_beats() {
        let c = DramConfig::typical();
        assert_eq!(c.transfer_cycles(8), c.cas_cycles);
        assert_eq!(c.transfer_cycles(32), c.cas_cycles + 3 * c.beat_cycles);
        assert_eq!(c.transfer_cycles(0), 0);
    }

    #[test]
    fn module_model_interface() {
        let mut d = DramState::new(DramConfig::typical());
        let r = d.access(Addr::new(128), AccessKind::Read, 0);
        assert!(!r.hit);
        assert_eq!(r.demand_fill_bytes, 8);
        assert!(r.service_cycles >= DramConfig::typical().cas_cycles);
    }

    #[test]
    fn reset_closes_row() {
        let mut d = DramState::new(DramConfig::typical());
        d.access_cycles(Addr::new(0), 8);
        d.reset();
        let again = d.access_cycles(Addr::new(0), 8);
        assert!(
            again > DramConfig::typical().cas_cycles,
            "row must be closed after reset"
        );
    }
}
