//! Self-indirect (linked-list) DMA model.
//!
//! The paper's "DMA-like custom memory modules" bring "predictable,
//! well-known data structures (such as lists) closer to the CPU": because the
//! module understands the value→next-index dependency, it can walk the chain
//! ahead of the CPU even though the address sequence looks random to a cache.
//!
//! The behavioural model tracks how far ahead of the CPU the walk engine is.
//! Each CPU access to the structure consumes one prefetched element; between
//! accesses the engine fetches elements from DRAM at a fixed rate, bounded by
//! its buffer `depth`. If the CPU out-runs the engine (inter-access gap too
//! small for the DRAM round trip), the access becomes a demand miss — so the
//! latency benefit degrades gracefully with CPU intensity, as real hardware
//! would.

use crate::module::{ModuleModel, ModuleResponse};
use mce_appmodel::{AccessKind, Addr};

/// Buffer hit latency in cycles.
pub const DMA_HIT_CYCLES: u32 = 2;
/// CPU cycles the engine needs per element fetched (DRAM round trip,
/// pipelined).
pub const DMA_FETCH_CYCLES_PER_ELEMENT: u64 = 12;
/// Off-chip fetch granularity: the engine fetches the whole DRAM burst line
/// containing the element (like a cache fill), so its off-chip byte traffic
/// is comparable to a cache's — which is what keeps whole-system energy
/// nearly flat across architectures in the paper's Table 1.
pub const DMA_LINE_BYTES: u32 = 32;

/// Mutable state of a self-indirect DMA engine.
#[derive(Debug, Clone)]
pub struct SelfIndirectDmaState {
    depth: u32,
    element_bytes: u32,
    /// Elements currently buffered ahead of the CPU.
    buffered: u32,
    /// Fractional fetch progress in cycles toward the next element.
    fetch_progress: u64,
    last_tick: Option<u64>,
}

impl SelfIndirectDmaState {
    /// Creates a cold engine buffering up to `depth` elements of
    /// `element_bytes` each.
    ///
    /// # Panics
    ///
    /// Panics if `depth` or `element_bytes` is zero.
    pub fn new(depth: u32, element_bytes: u32) -> Self {
        assert!(depth > 0, "DMA depth must be non-zero");
        assert!(element_bytes > 0, "element size must be non-zero");
        SelfIndirectDmaState {
            depth,
            element_bytes,
            buffered: 0,
            fetch_progress: 0,
            last_tick: None,
        }
    }

    /// Elements currently prefetched ahead of the CPU.
    pub fn buffered(&self) -> u32 {
        self.buffered
    }

    /// Advances the walk engine by `cycles` of background fetching.
    fn run_engine(&mut self, cycles: u64) -> u64 {
        self.fetch_progress += cycles;
        let mut fetched = 0;
        while self.fetch_progress >= DMA_FETCH_CYCLES_PER_ELEMENT && self.buffered < self.depth {
            self.fetch_progress -= DMA_FETCH_CYCLES_PER_ELEMENT;
            self.buffered += 1;
            fetched += 1;
        }
        if self.buffered == self.depth {
            // Engine idles when full; don't bank progress.
            self.fetch_progress = 0;
        }
        fetched * DMA_LINE_BYTES.max(self.element_bytes) as u64
    }
}

impl ModuleModel for SelfIndirectDmaState {
    fn access(&mut self, _addr: Addr, kind: AccessKind, tick: u64) -> ModuleResponse {
        // Let the engine work for the cycles that elapsed since last access.
        let elapsed = match self.last_tick {
            Some(prev) => tick.saturating_sub(prev),
            None => 0,
        };
        self.last_tick = Some(tick);
        let background = self.run_engine(elapsed);

        if kind.is_write() {
            // Writes update the element in the buffer (write-through to DRAM
            // in the background) without consuming prefetch credit.
            return ModuleResponse::hit(DMA_HIT_CYCLES)
                .with_background(background + self.element_bytes as u64);
        }

        if self.buffered > 0 {
            self.buffered -= 1;
            ModuleResponse::hit(DMA_HIT_CYCLES).with_background(background)
        } else {
            // CPU out-ran the engine: demand fetch of this element.
            ModuleResponse::miss(
                DMA_HIT_CYCLES,
                DMA_LINE_BYTES.max(self.element_bytes) as u64,
            )
            .with_background(background)
        }
    }

    fn reset(&mut self) {
        self.buffered = 0;
        self.fetch_progress = 0;
        self.last_tick = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_misses() {
        let mut d = SelfIndirectDmaState::new(8, 8);
        let r = d.access(Addr::new(0), AccessKind::Read, 0);
        assert!(!r.hit);
        assert_eq!(r.demand_fill_bytes, DMA_LINE_BYTES as u64);
    }

    #[test]
    fn slow_cpu_gets_hits() {
        // Gap of 40 cycles >> 12 cycles/element: engine stays ahead.
        let mut d = SelfIndirectDmaState::new(8, 8);
        let mut hits = 0;
        for i in 0..100u64 {
            if d.access(Addr::new(i * 8), AccessKind::Read, i * 40).hit {
                hits += 1;
            }
        }
        assert!(hits >= 95, "hits {hits}");
    }

    #[test]
    fn fast_cpu_overruns_engine() {
        // Gap of 1 cycle << 12 cycles/element: nearly everything misses.
        let mut d = SelfIndirectDmaState::new(8, 8);
        let mut misses = 0;
        for i in 0..100u64 {
            if !d.access(Addr::new(i * 8), AccessKind::Read, i).hit {
                misses += 1;
            }
        }
        assert!(misses >= 85, "misses {misses}");
    }

    #[test]
    fn buffer_depth_bounds_prefetch() {
        let mut d = SelfIndirectDmaState::new(4, 8);
        // A very long idle period cannot buffer more than `depth` elements.
        d.access(Addr::new(0), AccessKind::Read, 0);
        d.access(Addr::new(8), AccessKind::Read, 1_000_000);
        assert!(d.buffered() <= 4);
    }

    #[test]
    fn writes_hit_and_propagate() {
        let mut d = SelfIndirectDmaState::new(4, 8);
        let r = d.access(Addr::new(0), AccessKind::Write, 0);
        assert!(r.hit);
        assert!(r.background_bytes >= 8);
    }

    #[test]
    fn background_traffic_accounts_prefetches() {
        let mut d = SelfIndirectDmaState::new(8, 8);
        d.access(Addr::new(0), AccessKind::Read, 0);
        // 120 idle cycles -> engine fetched 10 elements but capped at 8
        // (each element fetch moves one DMA_LINE_BYTES line off-chip).
        let r = d.access(Addr::new(8), AccessKind::Read, 120);
        assert!(
            r.background_bytes >= 7 * DMA_LINE_BYTES as u64,
            "bg {}",
            r.background_bytes
        );
    }

    #[test]
    fn reset_clears_engine() {
        let mut d = SelfIndirectDmaState::new(8, 8);
        d.access(Addr::new(0), AccessKind::Read, 0);
        d.access(Addr::new(8), AccessKind::Read, 500);
        d.reset();
        assert_eq!(d.buffered(), 0);
        assert!(!d.access(Addr::new(16), AccessKind::Read, 501).hit);
    }

    #[test]
    #[should_panic(expected = "depth")]
    fn zero_depth_rejected() {
        let _ = SelfIndirectDmaState::new(0, 8);
    }
}
