//! Per-access energy model for memory modules.
//!
//! The paper drives its exploration with the connectivity and memory
//! power/area estimation models of Catthoor et al. We use synthetic
//! constants in nanojoules with the same structure: a fixed per-request
//! term plus a per-byte transfer term, with the off-chip DRAM dominating —
//! which is what makes the paper's Table 1 energy column nearly flat while
//! latency varies by an order of magnitude ("the connectivity consumes a
//! small amount of power compared to the memory modules").

use crate::module::MemModuleKind;

/// Fixed per-access system energy (CPU load/store unit, clock tree, pad
/// ring) in nJ — sized for the paper's ~0.25 µm era, where this floor is
/// what keeps average energy per access nearly constant across memory
/// architectures (Table 1's flat energy column).
pub const CPU_INTERFACE_NJ: f64 = 4.0;
/// Fixed energy per DRAM request (row/column decode, sense amps), nJ.
pub const DRAM_REQUEST_NJ: f64 = 5.0;
/// Energy per byte moved to/from DRAM, nJ.
pub const DRAM_PER_BYTE_NJ: f64 = 0.12;
/// Extra energy when a DRAM request opens a new row, nJ.
pub const DRAM_ROW_MISS_NJ: f64 = 1.5;

/// On-chip access energy of one module, nJ per access.
///
/// Grows gently with storage size (longer bitlines), which is why richer
/// architectures in Table 1 spend slightly *more* energy per access even as
/// they are much faster.
pub fn module_access_nj(kind: MemModuleKind) -> f64 {
    match kind {
        MemModuleKind::Cache(cfg) => 0.20 + 0.015 * (cfg.size_bytes as f64 / 1024.0),
        MemModuleKind::Sram { bytes } => 0.10 + 0.010 * (bytes as f64 / 1024.0),
        MemModuleKind::StreamBuffer {
            entries,
            line_bytes,
        } => 0.12 + 0.002 * (entries as f64 * line_bytes as f64 / 64.0),
        MemModuleKind::SelfIndirectDma { .. } => 0.30,
        MemModuleKind::Fifo {
            entries,
            line_bytes,
        } => 0.10 + 0.002 * (entries as f64 * line_bytes as f64 / 64.0),
        MemModuleKind::OffChipDram(_) => 0.0, // counted via request/byte terms
    }
}

/// Energy of one DRAM transaction of `bytes`, nJ.
///
/// `row_miss` marks whether the transaction had to open a new row.
pub fn dram_transaction_nj(bytes: u64, row_miss: bool) -> f64 {
    DRAM_REQUEST_NJ
        + DRAM_PER_BYTE_NJ * bytes as f64
        + if row_miss { DRAM_ROW_MISS_NJ } else { 0.0 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use crate::dram::DramConfig;

    #[test]
    fn dram_dominates_on_chip() {
        let on_chip = module_access_nj(MemModuleKind::Cache(CacheConfig::kilobytes(8)));
        let off_chip = dram_transaction_nj(32, true);
        assert!(off_chip > 10.0 * on_chip, "off-chip must dominate");
    }

    #[test]
    fn bigger_storage_costs_more_energy() {
        let small = module_access_nj(MemModuleKind::Sram { bytes: 1024 });
        let big = module_access_nj(MemModuleKind::Sram { bytes: 16 * 1024 });
        assert!(big > small);
    }

    #[test]
    fn row_miss_adds_energy() {
        assert!(dram_transaction_nj(8, true) > dram_transaction_nj(8, false));
    }

    #[test]
    fn dram_module_itself_free_per_access() {
        assert_eq!(
            module_access_nj(MemModuleKind::OffChipDram(DramConfig::typical())),
            0.0
        );
    }

    #[test]
    fn per_byte_term_scales() {
        let small = dram_transaction_nj(8, false);
        let big = dram_transaction_nj(64, false);
        assert!((big - small - DRAM_PER_BYTE_NJ * 56.0).abs() < 1e-9);
    }
}
