//! Memory-module descriptors and the behavioural-model interface.

use crate::cache::{CacheConfig, CacheState};
use crate::dma::SelfIndirectDmaState;
use crate::dram::{DramConfig, DramState};
use crate::fifo::FifoState;
use crate::sram::SramState;
use crate::stream_buffer::StreamBufferState;
use mce_appmodel::{AccessKind, Addr};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind (and configuration) of a memory module in the IP library.
///
/// These are the module classes the paper's APEX stage mixes and matches:
/// caches for general locality, SRAM scratchpads for small hot structures,
/// stream buffers for stream accesses, DMA-like custom modules that bring
/// "predictable, well-known data structures (such as lists) closer to the
/// CPU", and the off-chip DRAM backing store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemModuleKind {
    /// A set-associative cache.
    Cache(CacheConfig),
    /// An on-chip SRAM scratchpad of `bytes` capacity: structures mapped to
    /// it always hit (the mapping is validated against the capacity).
    Sram {
        /// Capacity in bytes.
        bytes: u64,
    },
    /// A stream buffer with `entries` prefetch slots of `line_bytes` each.
    /// Serves strided stream traffic; hits once the stride is locked.
    StreamBuffer {
        /// Number of prefetch slots.
        entries: u32,
        /// Bytes per slot.
        line_bytes: u32,
    },
    /// A self-indirect (linked-list) DMA: walks value-dependent chains ahead
    /// of the CPU, hiding DRAM latency for traffic caches cannot predict.
    SelfIndirectDma {
        /// Elements the engine keeps prefetched ahead of the CPU.
        depth: u32,
        /// Element size in bytes it is configured for.
        element_bytes: u32,
    },
    /// A FIFO write queue draining produced output streams to DRAM in the
    /// background (the template's FIFO in Figure 2).
    Fifo {
        /// Capacity in lines.
        entries: u32,
        /// Bytes per line.
        line_bytes: u32,
    },
    /// The off-chip DRAM backing store. Every architecture has exactly one.
    OffChipDram(DramConfig),
}

impl MemModuleKind {
    /// True for modules that live on-chip (everything except the DRAM).
    pub const fn is_on_chip(self) -> bool {
        !matches!(self, MemModuleKind::OffChipDram(_))
    }

    /// A short class name used in architecture descriptions (Figure 6 style).
    pub const fn class_name(self) -> &'static str {
        match self {
            MemModuleKind::Cache(_) => "cache",
            MemModuleKind::Sram { .. } => "SRAM",
            MemModuleKind::StreamBuffer { .. } => "stream buffer",
            MemModuleKind::SelfIndirectDma { .. } => "linked-list DMA",
            MemModuleKind::Fifo { .. } => "FIFO",
            MemModuleKind::OffChipDram(_) => "off-chip DRAM",
        }
    }

    /// Instantiates the mutable behavioural model for simulation.
    pub fn instantiate(self) -> Box<dyn ModuleModel> {
        match self {
            MemModuleKind::Cache(cfg) => Box::new(CacheState::new(cfg)),
            MemModuleKind::Sram { .. } => Box::new(SramState::new()),
            MemModuleKind::StreamBuffer {
                entries,
                line_bytes,
            } => Box::new(StreamBufferState::new(entries, line_bytes)),
            MemModuleKind::SelfIndirectDma {
                depth,
                element_bytes,
            } => Box::new(SelfIndirectDmaState::new(depth, element_bytes)),
            MemModuleKind::Fifo {
                entries,
                line_bytes,
            } => Box::new(FifoState::new(entries, line_bytes)),
            MemModuleKind::OffChipDram(cfg) => Box::new(DramState::new(cfg)),
        }
    }
}

impl fmt::Display for MemModuleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemModuleKind::Cache(c) => write!(f, "{c}"),
            MemModuleKind::Sram { bytes } => write!(f, "SRAM {}K", bytes / 1024),
            MemModuleKind::StreamBuffer {
                entries,
                line_bytes,
            } => {
                write!(f, "stream buffer {entries}x{line_bytes}B")
            }
            MemModuleKind::SelfIndirectDma {
                depth,
                element_bytes,
            } => {
                write!(f, "linked-list DMA depth={depth} elem={element_bytes}B")
            }
            MemModuleKind::Fifo {
                entries,
                line_bytes,
            } => {
                write!(f, "FIFO {entries}x{line_bytes}B")
            }
            MemModuleKind::OffChipDram(c) => write!(f, "{c}"),
        }
    }
}

/// A named instance of a module kind within an architecture.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemModule {
    name: String,
    kind: MemModuleKind,
}

impl MemModule {
    /// Creates a named module.
    pub fn new(name: impl Into<String>, kind: MemModuleKind) -> Self {
        MemModule {
            name: name.into(),
            kind,
        }
    }

    /// The instance name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The module kind and configuration.
    pub const fn kind(&self) -> MemModuleKind {
        self.kind
    }
}

impl fmt::Display for MemModule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.name, self.kind)
    }
}

/// Outcome of one access against a module's behavioural model.
///
/// Latency composition happens in the system simulator: `service_cycles` is
/// the module-internal time; `demand_fill_bytes` must be fetched from DRAM
/// over the off-chip channel *before* the CPU is unblocked (a miss);
/// `background_bytes` is prefetch/writeback traffic that consumes off-chip
/// bandwidth and energy but does not stall the CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ModuleResponse {
    /// Served on-chip without waiting for DRAM.
    pub hit: bool,
    /// Module-internal service latency in cycles.
    pub service_cycles: u32,
    /// Bytes that must arrive from DRAM before the access completes.
    pub demand_fill_bytes: u64,
    /// Prefetch/writeback bytes moved to/from DRAM off the critical path.
    pub background_bytes: u64,
}

impl ModuleResponse {
    /// A plain on-chip hit with the given service latency.
    pub const fn hit(service_cycles: u32) -> Self {
        ModuleResponse {
            hit: true,
            service_cycles,
            demand_fill_bytes: 0,
            background_bytes: 0,
        }
    }

    /// A miss that demands `fill` bytes from DRAM.
    pub const fn miss(service_cycles: u32, fill: u64) -> Self {
        ModuleResponse {
            hit: false,
            service_cycles,
            demand_fill_bytes: fill,
            background_bytes: 0,
        }
    }

    /// Adds background (non-blocking) off-chip traffic to the response.
    pub const fn with_background(mut self, bytes: u64) -> Self {
        self.background_bytes = bytes;
        self
    }
}

/// Behavioural model of a memory module, driven access-by-access by the
/// system simulator.
///
/// Implementations are deterministic state machines; [`ModuleModel::reset`]
/// returns them to their post-construction state so a single architecture
/// can be re-simulated without re-instantiation.
pub trait ModuleModel: fmt::Debug + Send {
    /// Processes one access and reports how it was served.
    fn access(&mut self, addr: Addr, kind: AccessKind, tick: u64) -> ModuleResponse;

    /// Clears all dynamic state.
    fn reset(&mut self);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn on_chip_classification() {
        assert!(MemModuleKind::Sram { bytes: 1024 }.is_on_chip());
        assert!(MemModuleKind::Cache(CacheConfig::kilobytes(8)).is_on_chip());
        assert!(!MemModuleKind::OffChipDram(DramConfig::default()).is_on_chip());
    }

    #[test]
    fn class_names() {
        assert_eq!(
            MemModuleKind::SelfIndirectDma {
                depth: 4,
                element_bytes: 8
            }
            .class_name(),
            "linked-list DMA"
        );
        assert_eq!(
            MemModuleKind::StreamBuffer {
                entries: 4,
                line_bytes: 32
            }
            .class_name(),
            "stream buffer"
        );
    }

    #[test]
    fn instantiate_every_kind() {
        let kinds = [
            MemModuleKind::Cache(CacheConfig::kilobytes(4)),
            MemModuleKind::Sram { bytes: 2048 },
            MemModuleKind::StreamBuffer {
                entries: 4,
                line_bytes: 32,
            },
            MemModuleKind::SelfIndirectDma {
                depth: 4,
                element_bytes: 8,
            },
            MemModuleKind::Fifo {
                entries: 4,
                line_bytes: 32,
            },
            MemModuleKind::OffChipDram(DramConfig::default()),
        ];
        for k in kinds {
            let mut m = k.instantiate();
            let r = m.access(Addr::new(0), AccessKind::Read, 0);
            assert!(r.service_cycles > 0 || r.demand_fill_bytes > 0 || r.hit);
            m.reset();
        }
    }

    #[test]
    fn response_constructors() {
        let h = ModuleResponse::hit(1);
        assert!(h.hit);
        assert_eq!(h.demand_fill_bytes, 0);
        let m = ModuleResponse::miss(2, 32).with_background(16);
        assert!(!m.hit);
        assert_eq!(m.demand_fill_bytes, 32);
        assert_eq!(m.background_bytes, 16);
    }

    #[test]
    fn display_formats() {
        let m = MemModule::new("sp0", MemModuleKind::Sram { bytes: 4096 });
        assert_eq!(m.to_string(), "sp0 [SRAM 4K]");
    }
}
